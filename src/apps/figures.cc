#include "src/apps/figures.h"

#include <cstring>
#include <sstream>

namespace hemlock {

namespace {
constexpr uint32_t kFigMagic = 0x20474946;  // "FIG "
}

Result<FigObject*> Figure::NewObject() {
  ASSIGN_OR_RETURN(void* mem, alloc_->Alloc(sizeof(FigObject)));
  auto* obj = new (mem) FigObject();
  obj->next = header_->objects;
  header_->objects = obj;
  ++header_->object_count;
  return obj;
}

Result<FigObject*> Figure::AddPolyline(const std::vector<std::pair<int32_t, int32_t>>& pts,
                                       int32_t color, int32_t depth) {
  ASSIGN_OR_RETURN(FigObject * obj, NewObject());
  obj->kind = FigKind::kPolyline;
  obj->color = color;
  obj->depth = depth;
  FigPoint** tail = &obj->points;
  for (const auto& [x, y] : pts) {
    ASSIGN_OR_RETURN(void* mem, alloc_->Alloc(sizeof(FigPoint)));
    auto* p = new (mem) FigPoint{x, y, nullptr};
    *tail = p;
    tail = &p->next;
  }
  return obj;
}

Result<FigObject*> Figure::AddEllipse(int32_t cx, int32_t cy, int32_t rx, int32_t ry,
                                      int32_t color) {
  ASSIGN_OR_RETURN(FigObject * obj, NewObject());
  obj->kind = FigKind::kEllipse;
  obj->color = color;
  obj->cx = cx;
  obj->cy = cy;
  obj->rx = rx;
  obj->ry = ry;
  return obj;
}

Result<FigObject*> Figure::AddText(const std::string& text, int32_t x, int32_t y, int32_t color) {
  ASSIGN_OR_RETURN(FigObject * obj, NewObject());
  obj->kind = FigKind::kText;
  obj->color = color;
  obj->cx = x;
  obj->cy = y;
  std::strncpy(obj->text, text.c_str(), sizeof(obj->text) - 1);
  return obj;
}

Result<FigObject*> Figure::Duplicate(const FigObject* object) {
  ASSIGN_OR_RETURN(FigObject * copy, NewObject());
  FigObject* saved_next = copy->next;
  *copy = *object;
  copy->next = saved_next;
  copy->points = nullptr;
  FigPoint** tail = &copy->points;
  for (const FigPoint* p = object->points; p != nullptr; p = p->next) {
    ASSIGN_OR_RETURN(void* mem, alloc_->Alloc(sizeof(FigPoint)));
    auto* q = new (mem) FigPoint{p->x, p->y, nullptr};
    *tail = q;
    tail = &q->next;
  }
  return copy;
}

Status Figure::Remove(FigObject* object) {
  FigObject** cur = &header_->objects;
  while (*cur != nullptr && *cur != object) {
    cur = &(*cur)->next;
  }
  if (*cur == nullptr) {
    return NotFound("figure: object not in list");
  }
  *cur = object->next;
  FigPoint* p = object->points;
  while (p != nullptr) {
    FigPoint* next = p->next;
    RETURN_IF_ERROR(alloc_->Free(p));
    p = next;
  }
  RETURN_IF_ERROR(alloc_->Free(object));
  --header_->object_count;
  return OkStatus();
}

Status Figure::Clear() {
  while (header_->objects != nullptr) {
    RETURN_IF_ERROR(Remove(header_->objects));
  }
  return OkStatus();
}

uint32_t Figure::PointCount() const {
  uint32_t n = 0;
  for (const FigObject* obj = header_->objects; obj != nullptr; obj = obj->next) {
    for (const FigPoint* p = obj->points; p != nullptr; p = p->next) {
      ++n;
    }
  }
  return n;
}

uint64_t Figure::Checksum() const {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const FigObject* obj = header_->objects; obj != nullptr; obj = obj->next) {
    mix(static_cast<uint64_t>(obj->kind));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(obj->color)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(obj->cx)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(obj->cy)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(obj->rx)));
    mix(static_cast<uint64_t>(static_cast<uint32_t>(obj->ry)));
    for (const char* c = obj->text; *c != 0; ++c) {
      mix(static_cast<uint64_t>(*c));
    }
    for (const FigPoint* p = obj->points; p != nullptr; p = p->next) {
      mix(static_cast<uint64_t>(static_cast<uint32_t>(p->x)));
      mix(static_cast<uint64_t>(static_cast<uint32_t>(p->y)));
    }
  }
  return h;
}

LocalFigure::LocalFigure() : fig_(&header_, &alloc_) { header_.magic = kFigMagic; }

LocalFigure::~LocalFigure() { (void)fig_.Clear(); }

std::string SaveAscii(Figure& fig) {
  std::ostringstream out;
  out << "#FIG hemlock 1.0\n" << fig.ObjectCount() << "\n";
  for (const FigObject* obj = fig.header()->objects; obj != nullptr; obj = obj->next) {
    switch (obj->kind) {
      case FigKind::kPolyline: {
        uint32_t n = 0;
        for (const FigPoint* p = obj->points; p != nullptr; p = p->next) {
          ++n;
        }
        out << "polyline " << obj->color << " " << obj->depth << " " << n;
        for (const FigPoint* p = obj->points; p != nullptr; p = p->next) {
          out << " " << p->x << " " << p->y;
        }
        out << "\n";
        break;
      }
      case FigKind::kEllipse:
        out << "ellipse " << obj->color << " " << obj->cx << " " << obj->cy << " " << obj->rx
            << " " << obj->ry << "\n";
        break;
      case FigKind::kText:
        out << "text " << obj->color << " " << obj->cx << " " << obj->cy << " " << obj->text
            << "\n";
        break;
    }
  }
  return out.str();
}

Status LoadAscii(const std::string& text, Figure* fig) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  uint32_t count = 0;
  in >> count;
  for (uint32_t i = 0; i < count; ++i) {
    std::string kind;
    in >> kind;
    if (kind == "polyline") {
      int32_t color = 0;
      int32_t depth = 0;
      uint32_t n = 0;
      in >> color >> depth >> n;
      std::vector<std::pair<int32_t, int32_t>> pts(n);
      for (uint32_t j = 0; j < n; ++j) {
        in >> pts[j].first >> pts[j].second;
      }
      Result<FigObject*> obj = fig->AddPolyline(pts, color, depth);
      if (!obj.ok()) {
        return obj.status();
      }
    } else if (kind == "ellipse") {
      int32_t color = 0, cx = 0, cy = 0, rx = 0, ry = 0;
      in >> color >> cx >> cy >> rx >> ry;
      Result<FigObject*> obj = fig->AddEllipse(cx, cy, rx, ry, color);
      if (!obj.ok()) {
        return obj.status();
      }
    } else if (kind == "text") {
      int32_t color = 0, x = 0, y = 0;
      std::string body;
      in >> color >> x >> y >> body;
      Result<FigObject*> obj = fig->AddText(body, x, y, color);
      if (!obj.ok()) {
        return obj.status();
      }
    } else {
      return CorruptData("figure: unknown object kind '" + kind + "'");
    }
  }
  // The reader prepends, so object order is reversed relative to the writer; reverse
  // the list to restore it (checksums are order-dependent).
  FigObject* prev = nullptr;
  FigObject* cur = fig->header()->objects;
  uint32_t moved = 0;
  while (cur != nullptr && moved < count) {
    FigObject* next = cur->next;
    cur->next = prev;
    prev = cur;
    cur = next;
    ++moved;
  }
  // Splice the reversed run back in front of any pre-existing objects.
  FigObject* run_tail = fig->header()->objects;
  fig->header()->objects = prev;
  if (run_tail != nullptr) {
    run_tail->next = cur;
  }
  return OkStatus();
}

SegmentFigure::SegmentFigure(PosixHeap heap, FigureHeader* header)
    : heap_(std::make_unique<PosixHeap>(heap)),
      alloc_(std::make_unique<HeapFigAllocator>(heap_.get())),
      fig_(std::make_unique<Figure>(header, alloc_.get())) {}

Result<SegmentFigure> SegmentFigure::Create(PosixStore* store, const std::string& name,
                                            size_t bytes) {
  ASSIGN_OR_RETURN(PosixHeap heap, PosixHeap::Create(store, name, bytes));
  ASSIGN_OR_RETURN(void* mem, heap.Alloc(sizeof(FigureHeader)));
  auto* header = new (mem) FigureHeader();
  header->magic = kFigMagic;
  // The header is the first allocation, at a deterministic offset, so Attach finds it.
  return SegmentFigure(heap, header);
}

Result<SegmentFigure> SegmentFigure::Attach(PosixStore* store, const std::string& name) {
  ASSIGN_OR_RETURN(PosixHeap heap, PosixHeap::Attach(store, name));
  // The figure header is the segment's first allocation, at a small fixed offset;
  // scan for the magic just past the heap header (robust to layout tweaks).
  uint8_t* base = heap.base();
  FigureHeader* header = nullptr;
  for (size_t off = 0; off < 256; off += 8) {
    auto* candidate = reinterpret_cast<FigureHeader*>(base + off);
    if (candidate->magic == kFigMagic) {
      header = candidate;
      break;
    }
  }
  if (header == nullptr) {
    return CorruptData("figure: no figure header in segment '" + name + "'");
  }
  return SegmentFigure(heap, header);
}

Status GenerateFigure(Figure* fig, uint32_t objects, uint32_t points_per, uint32_t seed) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(rng >> 33);
  };
  for (uint32_t i = 0; i < objects; ++i) {
    switch (next() % 3) {
      case 0: {
        std::vector<std::pair<int32_t, int32_t>> pts;
        uint32_t n = 2 + next() % (points_per * 2);
        pts.reserve(n);
        for (uint32_t j = 0; j < n; ++j) {
          pts.emplace_back(static_cast<int32_t>(next() % 10000),
                           static_cast<int32_t>(next() % 10000));
        }
        Result<FigObject*> obj = fig->AddPolyline(pts, static_cast<int32_t>(next() % 16),
                                                  static_cast<int32_t>(next() % 100));
        if (!obj.ok()) {
          return obj.status();
        }
        break;
      }
      case 1: {
        Result<FigObject*> obj = fig->AddEllipse(
            static_cast<int32_t>(next() % 10000), static_cast<int32_t>(next() % 10000),
            static_cast<int32_t>(1 + next() % 500), static_cast<int32_t>(1 + next() % 500),
            static_cast<int32_t>(next() % 16));
        if (!obj.ok()) {
          return obj.status();
        }
        break;
      }
      default: {
        Result<FigObject*> obj =
            fig->AddText("label" + std::to_string(next() % 1000),
                         static_cast<int32_t>(next() % 10000),
                         static_cast<int32_t>(next() % 10000), static_cast<int32_t>(next() % 16));
        if (!obj.ok()) {
          return obj.status();
        }
        break;
      }
    }
  }
  return OkStatus();
}

}  // namespace hemlock
