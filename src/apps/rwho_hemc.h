// rwho as a *real* multi-process Hemlock deployment (paper §4 made live).
//
// The C++ ShmRwhoDb in rwho.h measures the data-structure designs; this variant runs
// the actual deployment shape on the simulated machine: one rwhod daemon process
// receives status packets and updates a shared-segment database, while N rwho client
// processes — spawned by the daemon itself with sys_spawn — query the database
// concurrently, all under the preemptive scheduler. Synchronization is the HemC
// hem_mutex from src/runtime/sync over a lock word in the shared segment, so the
// whole thing is also the canonical subject for the race detector: drop the lock and
// `hemrun --race` (or RunRwhoHemc with races enabled) flags the update/query pairs.
//
// Pieces (all HemC, compiled into the simulated world):
//   * the database module — a dynamic public segment holding the lock word, a done
//     flag, and parallel record arrays (host id, load*100, receive time);
//   * rwhod — spawns the clients, feeds packets through hem_mutex-protected updates,
//     raises the done flag, reaps the clients with sys_waitpid;
//   * rwho client — repeatedly snapshots the database under the lock until the done
//     flag is up, then prints the final up-host count.
#ifndef SRC_APPS_RWHO_HEMC_H_
#define SRC_APPS_RWHO_HEMC_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/scheduler.h"
#include "src/runtime/world.h"

namespace hemlock {

struct RwhoHemcConfig {
  int clients = 2;        // rwho processes the daemon spawns
  int hosts = 8;          // distinct hosts in the packet feed
  int packets = 64;       // packets rwhod processes before raising done
  bool locked = true;     // false: omit the hem_mutex (the planted racy variant)
  SchedParams sched;      // scheduling policy/seed/quantum for the run
  uint64_t max_steps = 200'000'000;
};

struct RwhoHemcOutcome {
  int daemon_status = 0;
  std::vector<int> client_statuses;
  std::string stdout_text;   // all processes, pid order
  SchedStatus run_status = SchedStatus::kExited;
};

// The database module's HemC source (capacity = |hosts|).
std::string RwhoDbModuleSource(const RwhoHemcConfig& config);
// rwhod's HemC source. |client_hxe| is the VFS path sys_spawn will exec.
std::string RwhoDaemonSource(const RwhoHemcConfig& config, const std::string& client_hxe);
// The client's HemC source.
std::string RwhoClientSource(const RwhoHemcConfig& config);

// Builds everything into |world| (hemsync + db module + both images), execs rwhod,
// and drives the machine with the configured scheduler. Enable the race detector on
// the machine *before* calling to get reports (RunRwhoHemc does not turn it on).
Result<RwhoHemcOutcome> RunRwhoHemc(HemlockWorld& world, const RwhoHemcConfig& config);

}  // namespace hemlock

#endif  // SRC_APPS_RWHO_HEMC_H_
