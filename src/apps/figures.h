// The xfig workload (paper §4, "Programs with Non-Linear Data Structures").
//
// xfig keeps a figure as linked lists of objects; the original translated those lists
// to and from a pointer-free ASCII representation on every save/load, while also
// needing pointer-rich copy routines to duplicate objects. The Hemlock version keeps
// the lists in a shared segment: "open" is an attach, "save" is nothing, and the
// pre-existing copy routines serve for files too — at a savings of over 800 lines.
//
// This module provides both versions over the POSIX embodiment:
//   * a private, malloc-based figure with ASCII save/load (the original design);
//   * a segment-resident figure whose pointers are valid in every process.
#ifndef SRC_APPS_FIGURES_H_
#define SRC_APPS_FIGURES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/alloc.h"
#include "src/base/status.h"
#include "src/posix/posix_heap.h"

namespace hemlock {

enum class FigKind : uint32_t { kPolyline = 1, kEllipse = 2, kText = 3 };

struct FigPoint {
  int32_t x = 0;
  int32_t y = 0;
  FigPoint* next = nullptr;
};

struct FigObject {
  FigKind kind = FigKind::kPolyline;
  int32_t color = 0;
  int32_t depth = 0;
  FigPoint* points = nullptr;  // kPolyline
  int32_t cx = 0, cy = 0, rx = 0, ry = 0;  // kEllipse
  char text[32] = {0};                     // kText
  FigObject* next = nullptr;
};

struct FigureHeader {
  uint32_t magic = 0;
  uint32_t object_count = 0;
  FigObject* objects = nullptr;
};

// Figure editing operations, independent of where the nodes live.
class Figure {
 public:
  Figure(FigureHeader* header, FigAllocator* alloc) : header_(header), alloc_(alloc) {}

  FigureHeader* header() { return header_; }

  Result<FigObject*> AddPolyline(const std::vector<std::pair<int32_t, int32_t>>& pts,
                                 int32_t color, int32_t depth);
  Result<FigObject*> AddEllipse(int32_t cx, int32_t cy, int32_t rx, int32_t ry, int32_t color);
  Result<FigObject*> AddText(const std::string& text, int32_t x, int32_t y, int32_t color);

  // Duplicates an object (deep copy of its point list) — xfig's pointer-rich copy
  // routine, reused unchanged whether the target is private or shared memory.
  Result<FigObject*> Duplicate(const FigObject* object);

  // Unlinks and frees an object.
  Status Remove(FigObject* object);

  // Frees every object (manual cleanup; paper §5 "Garbage Collection").
  Status Clear();

  uint32_t ObjectCount() const { return header_->object_count; }
  uint32_t PointCount() const;
  // Checksum over all objects (order-dependent) for equality checks in tests/benches.
  uint64_t Checksum() const;

 private:
  Result<FigObject*> NewObject();

  FigureHeader* header_;
  FigAllocator* alloc_;
};

// --- The original xfig design: private figure + ASCII file ---

// A self-contained figure in process-private memory.
class LocalFigure {
 public:
  LocalFigure();
  ~LocalFigure();
  LocalFigure(const LocalFigure&) = delete;
  LocalFigure& operator=(const LocalFigure&) = delete;
  Figure& figure() { return fig_; }

 private:
  FigureHeader header_;
  MallocFigAllocator alloc_;
  Figure fig_;
};

// The pointer-free linearization (a .fig-like text format).
std::string SaveAscii(Figure& fig);
// Parses |text| and rebuilds the object lists via |fig|'s allocator.
Status LoadAscii(const std::string& text, Figure* fig);

// --- The Hemlock design: figure resident in a shared segment ---

class SegmentFigure {
 public:
  static Result<SegmentFigure> Create(PosixStore* store, const std::string& name, size_t bytes);
  static Result<SegmentFigure> Attach(PosixStore* store, const std::string& name);
  Figure& figure() { return *fig_; }

 private:
  SegmentFigure(PosixHeap heap, FigureHeader* header);

  // Heap lives behind a stable address: the allocator and figure point into it, and
  // SegmentFigure values get moved around.
  std::unique_ptr<PosixHeap> heap_;
  std::unique_ptr<HeapFigAllocator> alloc_;
  std::unique_ptr<Figure> fig_;
};

// Deterministic figure generator: |objects| objects with ~|points_per| vertices each.
Status GenerateFigure(Figure* fig, uint32_t objects, uint32_t points_per, uint32_t seed = 7);

}  // namespace hemlock

#endif  // SRC_APPS_FIGURES_H_
