#include "src/apps/rwho.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <new>
#include <filesystem>
#include <fstream>

#include "src/base/strings.h"

namespace hemlock {

namespace {
constexpr uint32_t kTableMagic = 0x4F485752;  // "RWHO"

uint64_t NextRng(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 33;
}
}  // namespace

RwhoFeed::RwhoFeed(uint32_t hosts, uint32_t seed) : hosts_(hosts), rng_(seed * 2654435761ull + 1) {}

HostStatus RwhoFeed::NextPacket() {
  HostStatus st;
  uint32_t host = next_host_;
  next_host_ = (next_host_ + 1) % hosts_;
  clock_ += 3;
  std::snprintf(st.hostname, sizeof(st.hostname), "node%03u.cs.edu", host);
  st.boot_time = 100 + host;
  st.recv_time = clock_;
  for (int i = 0; i < 3; ++i) {
    st.load_avg[i] = static_cast<uint32_t>(NextRng(&rng_) % 800);
  }
  st.user_count = static_cast<uint32_t>(NextRng(&rng_) % 8);
  for (uint32_t u = 0; u < st.user_count; ++u) {
    std::snprintf(st.users[u], sizeof(st.users[u]), "user%02llu",
                  static_cast<unsigned long long>(NextRng(&rng_) % 40));
  }
  return st;
}

// --- FileRwhoDb ---
// The on-disk format is a parsable ASCII linearization, like the administrative files
// the paper describes: every read re-parses, every write re-serializes.

Result<std::unique_ptr<FileRwhoDb>> FileRwhoDb::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Internal("rwho: cannot create " + dir + ": " + ec.message());
  }
  return std::unique_ptr<FileRwhoDb>(new FileRwhoDb(dir));
}

Status FileRwhoDb::Update(const HostStatus& status) {
  std::string path = dir_ + "/whod." + status.hostname;
  std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Internal("rwho: cannot write " + tmp);
    }
    out << status.hostname << "\n"
        << status.boot_time << " " << status.recv_time << "\n"
        << status.load_avg[0] << " " << status.load_avg[1] << " " << status.load_avg[2] << "\n"
        << status.user_count << "\n";
    for (uint32_t u = 0; u < status.user_count; ++u) {
      out << status.users[u] << "\n";
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Internal("rwho: rename failed: " + ec.message());
  }
  return OkStatus();
}

Result<std::vector<UptimeRow>> FileRwhoDb::Query(uint32_t now) {
  std::vector<UptimeRow> rows;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    if (!StartsWith(name, "whod.")) {
      continue;
    }
    std::ifstream in(entry.path());
    if (!in) {
      continue;
    }
    HostStatus st;
    std::string hostname;
    uint32_t boot = 0;
    uint32_t recv = 0;
    in >> hostname >> boot >> recv >> st.load_avg[0] >> st.load_avg[1] >> st.load_avg[2] >>
        st.user_count;
    for (uint32_t u = 0; u < st.user_count && u < 8; ++u) {
      std::string user;
      in >> user;
    }
    UptimeRow row;
    row.hostname = hostname;
    row.up = now - recv < kRwhoDownAfter;
    row.load100 = st.load_avg[0];
    row.users = st.user_count;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const UptimeRow& a, const UptimeRow& b) { return a.hostname < b.hostname; });
  return rows;
}

// --- ShmRwhoDb ---

Result<std::unique_ptr<ShmRwhoDb>> ShmRwhoDb::Create(PosixStore* store, const std::string& name,
                                                     uint32_t max_hosts) {
  size_t bytes = sizeof(Table) + static_cast<size_t>(max_hosts) * sizeof(HostStatus);
  ASSIGN_OR_RETURN(PosixSegment seg, store->Create(name, bytes));
  // The fresh segment is zero-filled; construct the header in place (memset would
  // trample the non-trivial spin lock).
  auto* table = new (seg.base) Table();
  table->magic = kTableMagic;
  table->capacity = max_hosts;
  table->count = 0;
  return std::unique_ptr<ShmRwhoDb>(new ShmRwhoDb(table));
}

Result<std::unique_ptr<ShmRwhoDb>> ShmRwhoDb::Attach(PosixStore* store, const std::string& name) {
  ASSIGN_OR_RETURN(PosixSegment seg, store->Attach(name));
  auto* table = reinterpret_cast<Table*>(seg.base);
  if (table->magic != kTableMagic) {
    return CorruptData("rwho: segment '" + name + "' is not an rwho table");
  }
  return std::unique_ptr<ShmRwhoDb>(new ShmRwhoDb(table));
}

Status ShmRwhoDb::Update(const HostStatus& status) {
  table_->lock.Lock();
  for (uint32_t i = 0; i < table_->count; ++i) {
    if (std::strncmp(table_->records[i].hostname, status.hostname,
                     sizeof(status.hostname)) == 0) {
      table_->records[i] = status;  // in-place, no linearization
      table_->lock.Unlock();
      return OkStatus();
    }
  }
  if (table_->count >= table_->capacity) {
    table_->lock.Unlock();
    return ResourceExhausted("rwho: table full");
  }
  table_->records[table_->count] = status;
  ++table_->count;
  table_->lock.Unlock();
  return OkStatus();
}

Result<std::vector<UptimeRow>> ShmRwhoDb::Query(uint32_t now) {
  std::vector<UptimeRow> rows;
  table_->lock.Lock();
  rows.reserve(table_->count);
  for (uint32_t i = 0; i < table_->count; ++i) {
    const HostStatus& st = table_->records[i];
    UptimeRow row;
    row.hostname = st.hostname;
    row.up = now - st.recv_time < kRwhoDownAfter;
    row.load100 = st.load_avg[0];
    row.users = st.user_count;
    rows.push_back(std::move(row));
  }
  table_->lock.Unlock();
  std::sort(rows.begin(), rows.end(),
            [](const UptimeRow& a, const UptimeRow& b) { return a.hostname < b.hostname; });
  return rows;
}

}  // namespace hemlock
