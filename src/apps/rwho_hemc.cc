#include "src/apps/rwho_hemc.h"

#include <map>

#include "src/base/strings.h"
#include "src/link/loader.h"
#include "src/runtime/sync.h"

namespace hemlock {

namespace {

// Shared view of the database segment, pasted ahead of both programs (HemC has no
// preprocessor; extern declarations are its header files).
std::string DbExterns(const RwhoHemcConfig& config) {
  return StrFormat(
      "extern int rwho_lock;\n"
      "extern int rwho_done;\n"
      "extern int rwho_count;\n"
      "extern int rwho_hosts[%d];\n"
      "extern int rwho_load[%d];\n"
      "extern int rwho_time[%d];\n",
      config.hosts, config.hosts, config.hosts);
}

}  // namespace

std::string RwhoDbModuleSource(const RwhoHemcConfig& config) {
  return StrFormat(
      "int rwho_lock = 0;\n"
      "int rwho_done = 0;\n"
      "int rwho_count = 0;\n"
      "int rwho_hosts[%d];\n"
      "int rwho_load[%d];\n"
      "int rwho_time[%d];\n",
      config.hosts, config.hosts, config.hosts);
}

std::string RwhoDaemonSource(const RwhoHemcConfig& config, const std::string& client_hxe) {
  std::string lock = config.locked ? "  hem_mutex_lock(&rwho_lock);\n" : "";
  std::string unlock = config.locked ? "  hem_mutex_unlock(&rwho_lock);\n" : "";
  return HemSyncDecls() + DbExterns(config) +
         StrFormat(
             "int kids[%d];\n"
             "int main() {\n"
             "  int i;\n"
             "  int p;\n"
             "  int h;\n"
             "  for (i = 0; i < %d; i += 1) {\n"
             "    kids[i] = sys_spawn(\"%s\");\n"
             "    if (kids[i] < 0) {\n"
             "      return 70;\n"
             "    }\n"
             "  }\n"
             "  for (p = 0; p < %d; p += 1) {\n"
             "    h = p %% %d;\n"
             "  %s"
             "    rwho_hosts[h] = 1;\n"
             "    rwho_load[h] = rwho_load[h] + 7;\n"
             "    rwho_time[h] = p;\n"
             "    if (rwho_count < h + 1) {\n"
             "      rwho_count = h + 1;\n"
             "    }\n"
             "  %s"
             "    sys_yield();\n"
             "  }\n"
             "%s"
             "  rwho_done = 1;\n"
             "%s"
             "  for (i = 0; i < %d; i += 1) {\n"
             "    sys_waitpid(kids[i]);\n"
             "  }\n"
             "  puts(\"rwhod: fed \");\n"
             "  putint(%d);\n"
             "  puts(\" packets\\n\");\n"
             "  return 0;\n"
             "}\n",
             config.clients, config.clients, client_hxe.c_str(), config.packets,
             config.hosts, lock.c_str(), unlock.c_str(), lock.c_str(), unlock.c_str(),
             config.clients, config.packets);
}

std::string RwhoClientSource(const RwhoHemcConfig& config) {
  std::string lock = config.locked ? "    hem_mutex_lock(&rwho_lock);\n" : "";
  std::string unlock = config.locked ? "    hem_mutex_unlock(&rwho_lock);\n" : "";
  return HemSyncDecls() + DbExterns(config) +
         StrFormat(
             "int main() {\n"
             "  int done;\n"
             "  int up;\n"
             "  int i;\n"
             "  done = 0;\n"
             "  up = 0;\n"
             "  while (done == 0) {\n"
             "%s"
             "    up = 0;\n"
             "    for (i = 0; i < rwho_count; i += 1) {\n"
             "      if (rwho_hosts[i] != 0) {\n"
             "        up += 1;\n"
             "      }\n"
             "    }\n"
             "    done = rwho_done;\n"
             "%s"
             "    sys_yield();\n"
             "  }\n"
             "  puts(\"rwho: \");\n"
             "  putint(up);\n"
             "  puts(\" hosts up\\n\");\n"
             "  return 0;\n"
             "}\n",
             lock.c_str(), unlock.c_str());
}

Result<RwhoHemcOutcome> RunRwhoHemc(HemlockWorld& world, const RwhoHemcConfig& config) {
  RETURN_IF_ERROR(InstallHemSync(world));
  CompileOptions no_prelude;
  no_prelude.include_prelude = false;
  RETURN_IF_ERROR(
      world.CompileTo(RwhoDbModuleSource(config), "/shm/lib/rwho_db.o", no_prelude));
  const std::string client_hxe = "/home/user/rwho_client.hxe";
  RETURN_IF_ERROR(world.CompileTo(RwhoClientSource(config), "/home/user/rwho_client.o"));
  RETURN_IF_ERROR(
      world.CompileTo(RwhoDaemonSource(config, client_hxe), "/home/user/rwhod.o"));

  auto link_with_db = [&](const std::string& main_obj) -> Result<LoadImage> {
    LdsOptions lds;
    lds.inputs.push_back({main_obj, ShareClass::kStaticPrivate});
    lds.inputs.push_back({"/shm/lib/rwho_db.o", ShareClass::kDynamicPublic});
    lds.inputs.push_back({"/shm/lib/hemsync.o", ShareClass::kDynamicPublic});
    return world.Link(lds);
  };
  ASSIGN_OR_RETURN(LoadImage client_image, link_with_db("/home/user/rwho_client.o"));
  RETURN_IF_ERROR(world.vfs().WriteFile(client_hxe, client_image.Serialize()));
  ASSIGN_OR_RETURN(LoadImage daemon_image, link_with_db("/home/user/rwhod.o"));

  InstallSpawnHandler(world.machine());

  // waitpid reaps the clients (erasing their Process), so capture output and exit
  // status as each one dies.
  std::map<int, std::pair<int, std::string>> finished;  // pid -> (status, stdout)
  world.machine().AddExitHook([&finished](Process& p) {
    finished[p.pid()] = {p.exit_status(), p.stdout_text()};
  });

  ASSIGN_OR_RETURN(ExecResult daemon, world.Exec(daemon_image));
  RwhoHemcOutcome out;
  out.run_status = world.machine().RunScheduled(config.sched, config.max_steps);
  for (const auto& [pid, result] : finished) {
    out.stdout_text += result.second;
    if (pid == daemon.pid) {
      out.daemon_status = result.first;
    } else {
      out.client_statuses.push_back(result.first);
    }
  }
  return out;
}

}  // namespace hemlock
