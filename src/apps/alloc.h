// Allocation sources for the pointer-rich application workloads: either the process
// heap (the "original" designs that rebuild structures per process) or a shared
// segment (the Hemlock designs whose pointers are valid in every process).
#ifndef SRC_APPS_ALLOC_H_
#define SRC_APPS_ALLOC_H_

#include <cstddef>

#include "src/base/status.h"
#include "src/posix/posix_heap.h"

namespace hemlock {

class FigAllocator {
 public:
  virtual ~FigAllocator() = default;
  virtual Result<void*> Alloc(size_t bytes) = 0;
  virtual Status Free(void* ptr) = 0;
};

class MallocFigAllocator : public FigAllocator {
 public:
  Result<void*> Alloc(size_t bytes) override { return ::operator new(bytes); }
  Status Free(void* ptr) override {
    ::operator delete(ptr);
    return OkStatus();
  }
};

class HeapFigAllocator : public FigAllocator {
 public:
  explicit HeapFigAllocator(PosixHeap* heap) : heap_(heap) {}
  Result<void*> Alloc(size_t bytes) override { return heap_->Alloc(bytes); }
  Status Free(void* ptr) override { return heap_->Free(ptr); }

 private:
  PosixHeap* heap_;
};

}  // namespace hemlock

#endif  // SRC_APPS_ALLOC_H_
