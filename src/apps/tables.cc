#include "src/apps/tables.h"

#include <algorithm>
#include <map>

namespace hemlock {

namespace {
constexpr uint32_t kTablesMagic = 0x4C425450;  // "PTBL"
}

Result<PtState*> ParserTables::AddState(uint32_t id, uint32_t action) {
  ASSIGN_OR_RETURN(void* mem, alloc_->Alloc(sizeof(PtState)));
  auto* state = new (mem) PtState();
  state->id = id;
  state->action = action;
  state->next_state = header_->states;
  header_->states = state;
  ++header_->state_count;
  return state;
}

Status ParserTables::AddTransition(PtState* from, uint32_t symbol, PtState* to) {
  ASSIGN_OR_RETURN(void* mem, alloc_->Alloc(sizeof(PtTransition)));
  auto* t = new (mem) PtTransition();
  t->symbol = symbol;
  t->target = to;
  t->next = from->transitions;
  from->transitions = t;
  return OkStatus();
}

PtState* ParserTables::FindState(uint32_t id) const {
  for (PtState* s = header_->states; s != nullptr; s = s->next_state) {
    if (s->id == id) {
      return s;
    }
  }
  return nullptr;
}

uint64_t ParserTables::Drive(const std::vector<uint32_t>& input) const {
  const PtState* cur = FindState(0);
  uint64_t actions = 0;
  for (uint32_t symbol : input) {
    if (cur == nullptr) {
      break;
    }
    actions += cur->action;
    const PtState* next = nullptr;
    for (const PtTransition* t = cur->transitions; t != nullptr; t = t->next) {
      if (t->symbol == symbol) {
        next = t->target;
        break;
      }
    }
    cur = next != nullptr ? next : FindState(0);  // error recovery: restart
  }
  return actions;
}

uint32_t ParserTables::TransitionCount() const {
  uint32_t n = 0;
  for (const PtState* s = header_->states; s != nullptr; s = s->next_state) {
    for (const PtTransition* t = s->transitions; t != nullptr; t = t->next) {
      ++n;
    }
  }
  return n;
}

uint64_t ParserTables::Checksum() const {
  // Order-insensitive: sum of per-state hashes (list order differs between a
  // generated table and one rebuilt from the linearization).
  uint64_t total = 0;
  for (const PtState* s = header_->states; s != nullptr; s = s->next_state) {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(s->id);
    mix(s->action);
    uint64_t trans_sum = 0;
    for (const PtTransition* t = s->transitions; t != nullptr; t = t->next) {
      uint64_t th = 1469598103934665603ull;
      th = (th ^ t->symbol) * 1099511628211ull;
      th = (th ^ (t->target != nullptr ? t->target->id : 0xFFFFFFFF)) * 1099511628211ull;
      trans_sum += th;
    }
    mix(trans_sum);
    total += h;
  }
  return total;
}

Status GenerateTables(ParserTables* tables, uint32_t states, uint32_t fanout, uint32_t seed) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(rng >> 33);
  };
  std::vector<PtState*> all(states);
  for (uint32_t i = 0; i < states; ++i) {
    ASSIGN_OR_RETURN(all[i], tables->AddState(i, next() % 100));
  }
  for (uint32_t i = 0; i < states; ++i) {
    uint32_t n = 1 + next() % (fanout * 2);
    for (uint32_t t = 0; t < n; ++t) {
      RETURN_IF_ERROR(
          tables->AddTransition(all[i], next() % (fanout * 4), all[next() % states]));
    }
  }
  return OkStatus();
}

std::vector<uint32_t> SerializeTables(const ParserTables& tables) {
  // Numeric stream: [state_count] then per state: id, action, ntrans, {symbol, target
  // id}* — the shape of the Wisconsin generators' output files.
  std::vector<uint32_t> out;
  const PtHeader* header = const_cast<ParserTables&>(tables).header();
  out.push_back(header->state_count);
  for (const PtState* s = header->states; s != nullptr; s = s->next_state) {
    out.push_back(s->id);
    out.push_back(s->action);
    uint32_t n = 0;
    for (const PtTransition* t = s->transitions; t != nullptr; t = t->next) {
      ++n;
    }
    out.push_back(n);
    for (const PtTransition* t = s->transitions; t != nullptr; t = t->next) {
      out.push_back(t->symbol);
      out.push_back(t->target != nullptr ? t->target->id : 0xFFFFFFFF);
    }
  }
  return out;
}

Status RebuildTables(const std::vector<uint32_t>& numeric, ParserTables* tables) {
  size_t pos = 0;
  auto take = [&]() -> uint32_t { return pos < numeric.size() ? numeric[pos++] : 0; };
  uint32_t count = take();
  // Pass 1: states.
  std::map<uint32_t, PtState*> by_id;
  struct Pending {
    uint32_t from;
    uint32_t symbol;
    uint32_t to;
  };
  std::vector<Pending> pendings;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = take();
    uint32_t action = take();
    ASSIGN_OR_RETURN(PtState * s, tables->AddState(id, action));
    by_id[id] = s;
    uint32_t n = take();
    for (uint32_t t = 0; t < n; ++t) {
      uint32_t symbol = take();
      uint32_t target = take();
      pendings.push_back(Pending{id, symbol, target});
    }
  }
  // Pass 2: transitions (this two-pass pointer fixup is exactly the translation work
  // the paper's shared tables make unnecessary). AddTransition prepends, so apply in
  // reverse to restore each state's original transition order — first-match lookups
  // must behave identically in both designs.
  std::reverse(pendings.begin(), pendings.end());
  for (const Pending& p : pendings) {
    auto from = by_id.find(p.from);
    auto to = by_id.find(p.to);
    if (from == by_id.end() || to == by_id.end()) {
      return CorruptData("tables: dangling state id in numeric stream");
    }
    RETURN_IF_ERROR(tables->AddTransition(from->second, p.symbol, to->second));
  }
  return OkStatus();
}

std::vector<uint32_t> MakeTokenStream(uint32_t length, uint32_t symbols, uint32_t seed) {
  uint64_t rng = seed * 0x9E3779B97F4A7C15ull + 1;
  std::vector<uint32_t> out(length);
  for (uint32_t i = 0; i < length; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    out[i] = static_cast<uint32_t>(rng >> 33) % symbols;
  }
  return out;
}

LocalTables::LocalTables() : tables_(&header_, &alloc_) { header_.magic = kTablesMagic; }

LocalTables::~LocalTables() {
  // Free all nodes.
  PtState* s = header_.states;
  while (s != nullptr) {
    PtTransition* t = s->transitions;
    while (t != nullptr) {
      PtTransition* next = t->next;
      (void)alloc_.Free(t);
      t = next;
    }
    PtState* next = s->next_state;
    (void)alloc_.Free(s);
    s = next;
  }
}

SegmentTables::SegmentTables(PosixHeap heap, PtHeader* header)
    : heap_(std::make_unique<PosixHeap>(heap)),
      alloc_(std::make_unique<HeapFigAllocator>(heap_.get())),
      tables_(std::make_unique<ParserTables>(header, alloc_.get())) {}

Result<SegmentTables> SegmentTables::Create(PosixStore* store, const std::string& name,
                                            size_t bytes) {
  ASSIGN_OR_RETURN(PosixHeap heap, PosixHeap::Create(store, name, bytes));
  ASSIGN_OR_RETURN(void* mem, heap.Alloc(sizeof(PtHeader)));
  auto* header = new (mem) PtHeader();
  header->magic = kTablesMagic;
  return SegmentTables(heap, header);
}

Result<SegmentTables> SegmentTables::Attach(PosixStore* store, const std::string& name) {
  ASSIGN_OR_RETURN(PosixHeap heap, PosixHeap::Attach(store, name));
  uint8_t* base = heap.base();
  PtHeader* header = nullptr;
  for (size_t off = 0; off < 256; off += 8) {
    auto* candidate = reinterpret_cast<PtHeader*>(base + off);
    if (candidate->magic == kTablesMagic) {
      header = candidate;
      break;
    }
  }
  if (header == nullptr) {
    return CorruptData("tables: no table header in segment '" + name + "'");
  }
  return SegmentTables(heap, header);
}

}  // namespace hemlock
