#include "src/sfs/sfs_check.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/base/strings.h"

namespace hemlock {

namespace {
constexpr uint32_t kRootIno = 1;
constexpr char kLostFoundName[] = "lost+found";
}  // namespace

const char* SfsIssueKindName(SfsIssueKind kind) {
  switch (kind) {
    case SfsIssueKind::kTruncatedImage:
      return "truncated_image";
    case SfsIssueKind::kDuplicateInode:
      return "duplicate_inode";
    case SfsIssueKind::kBadRoot:
      return "bad_root";
    case SfsIssueKind::kBadExtent:
      return "bad_extent";
    case SfsIssueKind::kStaleLock:
      return "stale_lock";
    case SfsIssueKind::kIncompleteCreation:
      return "incomplete_creation";
    case SfsIssueKind::kDanglingChild:
      return "dangling_child";
    case SfsIssueKind::kBadParent:
      return "bad_parent";
    case SfsIssueKind::kOrphan:
      return "orphan";
    case SfsIssueKind::kDirCycle:
      return "dir_cycle";
    case SfsIssueKind::kBadPath:
      return "bad_path";
    case SfsIssueKind::kDuplicatePath:
      return "duplicate_path";
    case SfsIssueKind::kSymlinkCycle:
      return "symlink_cycle";
    case SfsIssueKind::kAddrTableBad:
      return "addr_table_bad";
  }
  return "unknown";
}

std::string SfsCheckIssue::ToString() const {
  std::string out = SfsIssueKindName(kind);
  if (!repaired) {
    out += " (unrepaired)";
  }
  if (ino != 0) {
    out += StrFormat(" ino %u", ino);
  }
  if (!detail.empty()) {
    out += ": " + detail;
  }
  return out;
}

bool SfsCheckReport::structurally_clean() const {
  for (const SfsCheckIssue& issue : issues) {
    if (issue.kind != SfsIssueKind::kStaleLock &&
        issue.kind != SfsIssueKind::kIncompleteCreation) {
      return false;
    }
  }
  return true;
}

size_t SfsCheckReport::CountOf(SfsIssueKind kind) const {
  size_t n = 0;
  for (const SfsCheckIssue& issue : issues) {
    if (issue.kind == kind) {
      ++n;
    }
  }
  return n;
}

void SfsCheckReport::Add(SfsIssueKind kind, uint32_t ino, std::string detail, bool repaired) {
  SfsCheckIssue issue;
  issue.kind = kind;
  issue.ino = ino;
  issue.detail = std::move(detail);
  issue.repaired = repaired;
  issues.push_back(std::move(issue));
}

std::string SfsCheckReport::ToString() const {
  if (issues.empty()) {
    return "clean";
  }
  std::string out = StrFormat("%zu issue(s)", issues.size());
  for (const SfsCheckIssue& issue : issues) {
    out += "\n  " + issue.ToString();
  }
  return out;
}

void SfsCheck::Note(SfsCheckReport* report, SfsIssueKind kind, uint32_t ino, std::string detail,
                    bool repaired) {
  if (fs_->metrics_ != nullptr) {
    fs_->metrics_->Add("sfs.fsck_issues");
  }
  if (fs_->trace_ != nullptr && fs_->trace_->enabled()) {
    fs_->trace_->Emit(TraceKind::kFsckRepair, SfsIssueKindName(kind), detail, 0, ino);
  }
  report->Add(kind, ino, std::move(detail), repaired);
}

void SfsCheck::Run(bool at_boot, SfsCheckReport* report) {
  lost_found_ino_ = 0;
  CheckRoot(report);
  CheckScalars(at_boot, report);
  CheckEdges(report);
  QuarantineUnreachable(report);
  CanonicalizePaths(report);
  CheckSymlinks(report);
  CheckAddrTable(report);
  if (fs_->metrics_ != nullptr) {
    fs_->metrics_->Add("sfs.fsck_runs");
  }
}

void SfsCheck::CheckRoot(SfsCheckReport* report) {
  SharedFs::Inode& root = fs_->inodes_[kRootIno];
  if (root.type == SfsNodeType::kDirectory && root.path == "/" && root.parent == kRootIno) {
    return;
  }
  if (root.type != SfsNodeType::kDirectory) {
    root.type = SfsNodeType::kDirectory;
    root.size = 0;
    root.data.clear();
    root.symlink_target.clear();
  }
  root.path = "/";
  root.parent = kRootIno;
  Note(report, SfsIssueKind::kBadRoot, kRootIno, "root inode rebuilt as '/'", true);
}

void SfsCheck::CheckScalars(bool at_boot, SfsCheckReport* report) {
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    SharedFs::Inode& node = fs_->inodes_[ino];
    if (node.type == SfsNodeType::kFree) {
      continue;
    }
    if (node.type == SfsNodeType::kRegular && node.size > node.data.size()) {
      Note(report, SfsIssueKind::kBadExtent, ino,
           StrFormat("size %u exceeds the %zu-byte extent; clamped", node.size, node.data.size()),
           true);
      node.size = static_cast<uint32_t>(node.data.size());
    }
    if (node.lock_owner != -1) {
      if (at_boot) {
        // No process survived the reboot, so no lock did either.
        Note(report, SfsIssueKind::kStaleLock, ino,
             StrFormat("lock held by pid %d released at boot", node.lock_owner), true);
        node.lock_owner = -1;
        node.lock_lease = 0;
      } else if (fs_->pid_prober_ && !fs_->pid_prober_(node.lock_owner)) {
        Note(report, SfsIssueKind::kStaleLock, ino,
             StrFormat("lock holder pid %d is dead; released", node.lock_owner), true);
        node.lock_owner = -1;
        node.lock_lease = 0;
      }
    }
    if (node.creation_pending) {
      Note(report, SfsIssueKind::kIncompleteCreation, ino,
           StrFormat("creation of '%s' never completed; rebuilt on next attach", node.path.c_str()),
           false);
    }
  }
}

void SfsCheck::CheckEdges(SfsCheckReport* report) {
  // Pass 1: every directory entry must point at a live, distinct, non-root inode
  // whose parent pointer points back.
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    SharedFs::Inode& node = fs_->inodes_[ino];
    if (node.type != SfsNodeType::kDirectory) {
      continue;
    }
    std::vector<uint32_t> kept;
    std::set<uint32_t> seen;
    for (uint32_t child : node.children) {
      bool valid = child >= 1 && child <= kSfsMaxInodes && child != kRootIno && child != ino &&
                   fs_->inodes_[child].type != SfsNodeType::kFree &&
                   fs_->inodes_[child].parent == ino && seen.insert(child).second;
      if (valid) {
        kept.push_back(child);
      } else {
        Note(report, SfsIssueKind::kDanglingChild, ino,
             StrFormat("entry for inode %u dropped", child), true);
      }
    }
    node.children = std::move(kept);
  }
  // Pass 2: a live inode whose parent is a valid directory must appear in its entry
  // list (a crash between inode setup and directory link leaves exactly this gap).
  for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
    SharedFs::Inode& node = fs_->inodes_[ino];
    if (node.type == SfsNodeType::kFree) {
      continue;
    }
    uint32_t p = node.parent;
    if (p < 1 || p > kSfsMaxInodes || p == ino ||
        fs_->inodes_[p].type != SfsNodeType::kDirectory) {
      continue;  // no valid parent — the reachability pass quarantines it
    }
    std::vector<uint32_t>& sibs = fs_->inodes_[p].children;
    if (std::find(sibs.begin(), sibs.end(), ino) == sibs.end()) {
      sibs.push_back(ino);
      Note(report, SfsIssueKind::kBadParent, ino,
           StrFormat("'%s' re-attached to parent inode %u", node.path.c_str(), p), true);
    }
  }
}

uint32_t SfsCheck::LostAndFoundIno(SfsCheckReport* report) {
  if (lost_found_ino_ != 0) {
    return lost_found_ino_;
  }
  for (uint32_t child : fs_->inodes_[kRootIno].children) {
    if (fs_->inodes_[child].type == SfsNodeType::kDirectory &&
        PathBasename(fs_->inodes_[child].path) == kLostFoundName) {
      lost_found_ino_ = child;
      return child;
    }
  }
  Result<uint32_t> ino = fs_->AllocInode();
  if (!ino.ok()) {
    return 0;  // table full: orphans fall back to the root
  }
  SharedFs::Inode& node = fs_->inodes_[*ino];
  node.type = SfsNodeType::kDirectory;
  node.path = std::string("/") + kLostFoundName;
  node.parent = kRootIno;
  fs_->inodes_[kRootIno].children.push_back(*ino);
  lost_found_ino_ = *ino;
  return *ino;
}

void SfsCheck::QuarantineUnreachable(SfsCheckReport* report) {
  std::vector<bool> reachable(kSfsMaxInodes + 1, false);
  std::vector<uint32_t> stack = {kRootIno};
  reachable[kRootIno] = true;
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    for (uint32_t child : fs_->inodes_[cur].children) {
      if (!reachable[child]) {
        reachable[child] = true;
        stack.push_back(child);
      }
    }
  }
  std::vector<uint32_t> orphans;
  for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
    if (fs_->inodes_[ino].type != SfsNodeType::kFree && !reachable[ino]) {
      orphans.push_back(ino);
    }
  }
  if (orphans.empty()) {
    return;
  }
  // Report parent-chain loops before quarantine flattens them — an unreachable
  // cluster is often a cycle of directories pointing at each other.
  for (uint32_t ino : orphans) {
    uint32_t cur = ino;
    std::set<uint32_t> walked = {ino};
    while (true) {
      uint32_t p = fs_->inodes_[cur].parent;
      if (p < 1 || p > kSfsMaxInodes || fs_->inodes_[p].type != SfsNodeType::kDirectory ||
          reachable[p]) {
        break;
      }
      if (p == ino) {
        Note(report, SfsIssueKind::kDirCycle, ino,
             StrFormat("parent chain of '%s' loops back to itself; broken by quarantine",
                       fs_->inodes_[ino].path.c_str()),
             true);
        break;
      }
      if (!walked.insert(p).second) {
        break;  // a loop not through |ino|; reported when its own member is visited
      }
      cur = p;
    }
  }
  uint32_t lf = LostAndFoundIno(report);
  uint32_t new_parent = lf != 0 ? lf : kRootIno;
  const std::string& parent_path = fs_->inodes_[new_parent].path;
  std::string prefix = parent_path == "/" ? "" : parent_path;
  for (uint32_t ino : orphans) {
    SharedFs::Inode& node = fs_->inodes_[ino];
    std::string old_path = node.path;
    if (node.type == SfsNodeType::kDirectory) {
      node.children.clear();  // its subtree is unreachable too; each member lands here flat
    }
    node.parent = new_parent;
    node.path = StrFormat("%s/ino%u", prefix.c_str(), ino);
    fs_->inodes_[new_parent].children.push_back(ino);
    Note(report, SfsIssueKind::kOrphan, ino,
         StrFormat("unreachable '%s' quarantined as '%s'", old_path.c_str(), node.path.c_str()),
         true);
  }
}

void SfsCheck::CanonicalizePaths(SfsCheckReport* report) {
  std::vector<uint32_t> queue = {kRootIno};
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    uint32_t dir = queue[qi];
    const std::string& dir_path = fs_->inodes_[dir].path;
    std::string prefix = dir_path == "/" ? "" : dir_path;
    std::set<std::string> taken;
    for (uint32_t child : fs_->inodes_[dir].children) {
      SharedFs::Inode& cnode = fs_->inodes_[child];
      std::string base = PathBasename(cnode.path);
      if (base.empty()) {
        base = StrFormat("ino%u", child);
      }
      bool renamed = false;
      if (!taken.insert(base).second) {
        std::string unique = StrFormat("%s~%u", base.c_str(), child);
        Note(report, SfsIssueKind::kDuplicatePath, child,
             StrFormat("sibling basename '%s' already taken; renamed '%s'", base.c_str(),
                       unique.c_str()),
             true);
        base = std::move(unique);
        taken.insert(base);
        renamed = true;
      }
      std::string expected = prefix + "/" + base;
      if (cnode.path != expected) {
        if (!renamed) {
          Note(report, SfsIssueKind::kBadPath, child,
               StrFormat("path '%s' rewritten to '%s'", cnode.path.c_str(), expected.c_str()),
               true);
        }
        cnode.path = std::move(expected);
      }
      if (cnode.type == SfsNodeType::kDirectory) {
        queue.push_back(child);
      }
    }
  }
}

void SfsCheck::CheckSymlinks(SfsCheckReport* report) {
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    if (fs_->inodes_[ino].type != SfsNodeType::kSymlink) {
      continue;
    }
    std::set<uint32_t> visited = {ino};
    uint32_t cur = ino;
    while (true) {
      // Targets may carry the VFS mount prefix ("/shm/x") or be partition paths.
      std::string rel = fs_->inodes_[cur].symlink_target;
      if (rel == "/shm") {
        rel = "/";
      } else if (StartsWith(rel, "/shm/")) {
        rel = rel.substr(4);
      }
      Result<uint32_t> next = fs_->Lookup(rel);
      if (!next.ok() || fs_->inodes_[*next].type != SfsNodeType::kSymlink) {
        break;  // dangling or resolved to a real node — both legal
      }
      if (!visited.insert(*next).second) {
        Note(report, SfsIssueKind::kSymlinkCycle, ino,
             StrFormat("resolution of '%s' loops through '%s'", fs_->inodes_[ino].path.c_str(),
                       fs_->inodes_[*next].path.c_str()),
             false);
        break;
      }
      cur = *next;
    }
  }
}

void SfsCheck::CheckAddrTable(SfsCheckReport* report) {
  bool bad = false;
  std::map<uint32_t, uint32_t> entries_per_ino;
  for (const SharedFs::AddrEntry& e : fs_->addr_table_) {
    bool entry_ok = e.ino >= 1 && e.ino <= kSfsMaxInodes &&
                    fs_->inodes_[e.ino].type == SfsNodeType::kRegular &&
                    e.base == SfsAddressForInode(e.ino) && e.limit == e.base + kSfsMaxFileBytes &&
                    ++entries_per_ino[e.ino] == 1;
    if (!entry_ok) {
      bad = true;
      Note(report, SfsIssueKind::kAddrTableBad, e.ino,
           StrFormat("table entry [0x%08x, 0x%08x) stale or duplicate", e.base, e.limit), true);
    }
  }
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    if (fs_->inodes_[ino].type == SfsNodeType::kRegular && entries_per_ino[ino] == 0) {
      bad = true;
      Note(report, SfsIssueKind::kAddrTableBad, ino,
           StrFormat("'%s' missing from the lookup table", fs_->inodes_[ino].path.c_str()), true);
    }
  }
  if (!bad && fs_->addr_index_.size() != fs_->addr_table_.size()) {
    bad = true;
    Note(report, SfsIssueKind::kAddrTableBad, 0, "interval index out of sync with the table", true);
  }
  if (bad) {
    fs_->RebuildAddrTable();
  }
}

}  // namespace hemlock
