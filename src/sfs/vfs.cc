#include "src/sfs/vfs.h"

#include "src/base/strings.h"

namespace hemlock {

Vfs::Vfs() : memfs_(std::make_unique<MemFs>()), sfs_(std::make_unique<SharedFs>()) {
  // Standard directories of the simulated world.
  (void)memfs_->MkdirAll("/tmp");
  (void)memfs_->MkdirAll("/usr/lib");
  (void)memfs_->MkdirAll("/home/user");
}

bool Vfs::OnSharedPartition(const std::string& path) {
  std::string norm = NormalizePath(path);
  return norm == kSfsMount || StartsWith(norm, std::string(kSfsMount) + "/");
}

std::string Vfs::SfsRelative(const std::string& path) {
  std::string norm = NormalizePath(path);
  if (norm == kSfsMount) {
    return "/";
  }
  return norm.substr(std::string(kSfsMount).size());
}

Result<std::string> Vfs::Resolve(const std::string& path) const {
  std::string cur = NormalizePath(path);
  // A resolution may bounce between the two file systems (a MemFs symlink pointing
  // into /shm, or an SFS symlink pointing anywhere); bound the hops.
  for (int hop = 0; hop < 8; ++hop) {
    if (OnSharedPartition(cur)) {
      Result<SfsStat> st = sfs_->Stat(SfsRelative(cur));
      if (!st.ok() || st->type != SfsNodeType::kSymlink) {
        return cur;
      }
      ASSIGN_OR_RETURN(std::string target, sfs_->ReadLink(SfsRelative(cur)));
      cur = NormalizePath(JoinPath(PathDirname(cur), target));
      continue;
    }
    ASSIGN_OR_RETURN(std::string resolved, memfs_->ResolveSymlinks(cur));
    if (resolved == cur) {
      return cur;
    }
    cur = resolved;
  }
  return InvalidArgument("vfs: too many symlink hops: " + path);
}

Result<std::vector<uint8_t>> Vfs::ReadFile(const std::string& path) const {
  ASSIGN_OR_RETURN(std::string resolved, Resolve(path));
  if (OnSharedPartition(resolved)) {
    ASSIGN_OR_RETURN(SfsStat st, sfs_->Stat(SfsRelative(resolved)));
    std::vector<uint8_t> out(st.size);
    ASSIGN_OR_RETURN(uint32_t n, sfs_->ReadAt(st.ino, 0, out.data(), st.size));
    out.resize(n);
    return out;
  }
  return memfs_->ReadFile(resolved);
}

Status Vfs::WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  ASSIGN_OR_RETURN(std::string resolved, Resolve(path));
  if (OnSharedPartition(resolved)) {
    std::string rel = SfsRelative(resolved);
    uint32_t ino = 0;
    Result<uint32_t> existing = sfs_->Lookup(rel);
    if (existing.ok()) {
      ino = *existing;
      RETURN_IF_ERROR(sfs_->Truncate(ino, 0));
    } else {
      ASSIGN_OR_RETURN(ino, sfs_->Create(rel));
    }
    return sfs_->WriteAt(ino, 0, data.data(), static_cast<uint32_t>(data.size()));
  }
  return memfs_->WriteFile(resolved, data);
}

Status Vfs::WriteFile(const std::string& path, const std::string& text) {
  return WriteFile(path, std::vector<uint8_t>(text.begin(), text.end()));
}

bool Vfs::Exists(const std::string& path) const {
  Result<std::string> resolved = Resolve(path);
  if (!resolved.ok()) {
    return false;
  }
  if (OnSharedPartition(*resolved)) {
    return sfs_->Exists(SfsRelative(*resolved));
  }
  return memfs_->Exists(*resolved);
}

bool Vfs::IsDirectory(const std::string& path) const {
  Result<std::string> resolved = Resolve(path);
  if (!resolved.ok()) {
    return false;
  }
  if (OnSharedPartition(*resolved)) {
    if (*resolved == kSfsMount) {
      return true;
    }
    Result<SfsStat> st = sfs_->Stat(SfsRelative(*resolved));
    return st.ok() && st->type == SfsNodeType::kDirectory;
  }
  return memfs_->IsDirectory(*resolved);
}

Status Vfs::Mkdir(const std::string& path) {
  ASSIGN_OR_RETURN(std::string resolved, Resolve(path));
  if (OnSharedPartition(resolved)) {
    return sfs_->Mkdir(SfsRelative(resolved)).status();
  }
  return memfs_->Mkdir(resolved);
}

Status Vfs::MkdirAll(const std::string& path) {
  ASSIGN_OR_RETURN(std::string resolved, Resolve(path));
  if (OnSharedPartition(resolved)) {
    std::string rel = SfsRelative(resolved);
    std::string cur;
    for (const std::string& part : SplitString(rel, '/')) {
      cur += "/" + part;
      if (!sfs_->Exists(cur)) {
        RETURN_IF_ERROR(sfs_->Mkdir(cur).status());
      }
    }
    return OkStatus();
  }
  return memfs_->MkdirAll(resolved);
}

Status Vfs::Unlink(const std::string& path) {
  // Unlink removes the symlink itself, not its target.
  std::string norm = NormalizePath(path);
  if (OnSharedPartition(norm)) {
    return sfs_->Unlink(SfsRelative(norm));
  }
  return memfs_->Unlink(norm);
}

Result<std::vector<std::string>> Vfs::List(const std::string& path) const {
  ASSIGN_OR_RETURN(std::string resolved, Resolve(path));
  if (OnSharedPartition(resolved)) {
    return sfs_->List(SfsRelative(resolved));
  }
  return memfs_->List(resolved);
}

Status Vfs::Symlink(const std::string& path, const std::string& target) {
  std::string norm = NormalizePath(path);
  if (OnSharedPartition(norm)) {
    // Hard links are prohibited on the shared partition; symbolic links are fine
    // (they are separate inodes, so the 1:1 inode <-> path property holds).
    return sfs_->Symlink(SfsRelative(norm), target).status();
  }
  return memfs_->Symlink(norm, target);
}

}  // namespace hemlock
