// SfsCheck — an fsck-style consistency pass over the shared partition.
//
// The partition is the machine's rendezvous point: every process maps segments out
// of it at globally agreed addresses, so a single torn image (crash mid-serialize,
// crash mid-create, a dead lock holder) poisons every later boot. SfsCheck walks
// the whole inode table and restores the invariants the rest of the system assumes:
//
//   * inode 1 is a directory named "/";
//   * a file's logical size never exceeds its physical extent;
//   * directory entries point at live inodes whose parent pointer points back;
//   * every live inode is reachable from the root (orphans are quarantined into
//     /lost+found rather than destroyed — the paper's "peruse all of the segments
//     in existence" garbage-collection stance);
//   * paths are canonical (a node's path is its parent's path plus its basename,
//     unique among siblings);
//   * the address lookup table agrees with the inode table (one entry per regular
//     file, at the address derived from its inode number);
//   * no creation lock survives a reboot, and a live lock whose holder is dead is
//     released.
//
// Symlink cycles and pending creations are *flagged but not repaired*: a cycle is
// legal on-disk state (only resolution loops), and a pending creation is ldl's to
// finish (rebuild from template under the creation lock).
//
// Run at every Deserialize, and on demand via `hemdump check`.
#ifndef SRC_SFS_SFS_CHECK_H_
#define SRC_SFS_SFS_CHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sfs/shared_fs.h"

namespace hemlock {

enum class SfsIssueKind : uint8_t {
  kTruncatedImage,      // serialized stream ended mid-record; readable prefix kept
  kDuplicateInode,      // two image records claimed one inode (same address); first wins
  kBadRoot,             // inode 1 missing or not a directory; root rebuilt
  kBadExtent,           // logical size exceeded the physical extent; size clamped
  kStaleLock,           // lock held at boot, or by a dead process; released
  kIncompleteCreation,  // creation_pending set: contents untrustworthy (ldl rebuilds)
  kDanglingChild,       // directory entry pointing at a free/foreign inode; dropped
  kBadParent,           // live inode missing from its parent's entries; re-added
  kOrphan,              // unreachable from the root; quarantined into /lost+found
  kDirCycle,            // parent chain loops (unreachable cluster); broken by quarantine
  kBadPath,             // stored path disagreed with the tree position; rewritten
  kDuplicatePath,       // two siblings shared a basename; renamed with ~<ino> suffix
  kSymlinkCycle,        // symlink resolution loops; flagged only
  kAddrTableBad,        // lookup table disagreed with the inode table; rebuilt
};

const char* SfsIssueKindName(SfsIssueKind kind);

struct SfsCheckIssue {
  SfsIssueKind kind = SfsIssueKind::kBadRoot;
  uint32_t ino = 0;     // 0 when the issue is not tied to one inode
  std::string detail;
  bool repaired = false;

  std::string ToString() const;
};

struct SfsCheckReport {
  std::vector<SfsCheckIssue> issues;

  bool clean() const { return issues.empty(); }
  // Clean apart from the issues a normal reboot produces (released boot-time locks,
  // creations left for ldl to finish). Strict Deserialize accepts exactly this.
  bool structurally_clean() const;
  size_t CountOf(SfsIssueKind kind) const;
  void Add(SfsIssueKind kind, uint32_t ino, std::string detail, bool repaired);
  std::string ToString() const;
};

class SfsCheck {
 public:
  explicit SfsCheck(SharedFs* fs) : fs_(fs) {}

  // Checks and repairs in place, appending to |report|. |at_boot| releases *every*
  // lock (no process survived the reboot); otherwise only provably dead holders
  // (per the pid prober) lose theirs.
  void Run(bool at_boot, SfsCheckReport* report);

 private:
  void CheckRoot(SfsCheckReport* report);
  void CheckScalars(bool at_boot, SfsCheckReport* report);
  void CheckEdges(SfsCheckReport* report);
  void QuarantineUnreachable(SfsCheckReport* report);
  void CanonicalizePaths(SfsCheckReport* report);
  void CheckSymlinks(SfsCheckReport* report);
  void CheckAddrTable(SfsCheckReport* report);

  void Note(SfsCheckReport* report, SfsIssueKind kind, uint32_t ino, std::string detail,
            bool repaired);
  // Finds or creates the /lost+found directory; 0 when none can be made.
  uint32_t LostAndFoundIno(SfsCheckReport* report);

  SharedFs* fs_;
  uint32_t lost_found_ino_ = 0;
};

}  // namespace hemlock

#endif  // SRC_SFS_SFS_CHECK_H_
