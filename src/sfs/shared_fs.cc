#include "src/sfs/shared_fs.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "src/base/atomic_mem.h"
#include "src/base/faults.h"
#include "src/base/strings.h"
#include "src/sfs/remote_backing.h"
#include "src/sfs/sfs_check.h"

namespace hemlock {

namespace {
constexpr uint32_t kRootIno = 1;
constexpr uint32_t kSfsMagic = 0x53465348;  // "HSFS"
constexpr uint32_t kSfsVersion2 = 2;

// One bit per page across the whole 1 GB shared region.
constexpr uint32_t kSfsRegionBytes = kSfsMaxInodes * kSfsMaxFileBytes;
constexpr uint32_t kSfsCodeBitmapBytes = kSfsRegionBytes / kPageSize / 8;
}  // namespace

SharedFs::SharedFs()
    : inodes_(kSfsMaxInodes + 1),
      // Eager (32 KB): the bitmap is poked from guest execution on any core, so
      // it cannot be grown lazily without a racy allocation.
      code_page_bits_(new std::atomic<uint8_t>[kSfsCodeBitmapBytes]()) {
  inodes_[kRootIno].type = SfsNodeType::kDirectory;
  inodes_[kRootIno].path = "/";
  inodes_[kRootIno].parent = kRootIno;
}

Result<uint32_t> SharedFs::AllocInode() {
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    if (inodes_[ino].type == SfsNodeType::kFree) {
      return ino;
    }
  }
  if (inode_exhausted_ != nullptr) {
    ++*inode_exhausted_;
  }
  return ResourceExhausted("sfs: all 1024 inodes in use");
}

Result<uint32_t> SharedFs::WalkDir(const std::string& dir_path) const {
  std::string norm = NormalizePath(dir_path);
  if (norm == "/") {
    return kRootIno;
  }
  uint32_t cur = kRootIno;
  for (const std::string& part : SplitString(norm, '/')) {
    const Inode& node = inodes_[cur];
    if (node.type != SfsNodeType::kDirectory) {
      return NotFound("sfs: not a directory on path: " + dir_path);
    }
    uint32_t next = 0;
    for (uint32_t child : node.children) {
      if (PathBasename(inodes_[child].path) == part) {
        next = child;
        break;
      }
    }
    if (next == 0) {
      return NotFound("sfs: no such path: " + dir_path);
    }
    cur = next;
  }
  return cur;
}

Status SharedFs::ValidatePathForCreate(const std::string& path, uint32_t* parent_ino,
                                       std::string* leaf) const {
  std::string norm = NormalizePath(path);
  if (!IsAbsolutePath(norm) || norm == "/") {
    return InvalidArgument("sfs: bad path: " + path);
  }
  *leaf = PathBasename(norm);
  Result<uint32_t> parent = WalkDir(PathDirname(norm));
  if (!parent.ok()) {
    return parent.status();
  }
  if (inodes_[*parent].type != SfsNodeType::kDirectory) {
    return InvalidArgument("sfs: parent not a directory: " + path);
  }
  for (uint32_t child : inodes_[*parent].children) {
    if (PathBasename(inodes_[child].path) == *leaf) {
      return AlreadyExists("sfs: exists: " + norm);
    }
  }
  *parent_ino = *parent;
  return OkStatus();
}

Result<uint32_t> SharedFs::Create(const std::string& path) {
  uint32_t expect = 0;
  if (remote_active()) {
    // Forward-first: the server serializes the create (and its inode choice);
    // its queued invalidations have been applied locally by the time this
    // returns, so the deterministic allocator below must agree with |expect|.
    ASSIGN_OR_RETURN(expect, remote_->OnCreate(path));
  }
  uint32_t parent = 0;
  std::string leaf;
  RETURN_IF_ERROR(ValidatePathForCreate(path, &parent, &leaf));
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  if (expect != 0 && ino != expect) {
    return Internal(StrFormat("sfs: replica diverged: server created inode %u, local chose %u",
                              expect, ino));
  }
  ++clock_;
  // A freed inode can be recycled under a stale public mapping (unlink + create);
  // quiesce guest cores so none reads the node mid-initialization.
  ShootdownGuard shootdown = BeginShootdown();
  Inode& node = inodes_[ino];
  node.type = SfsNodeType::kRegular;
  node.path = NormalizePath(path);
  node.size = 0;
  node.data.clear();
  node.parent = parent;
  node.lock_owner = -1;
  node.lock_lease = 0;
  node.creation_pending = false;
  // Crash window between claiming the inode and linking it into its directory: a
  // crash here leaves a file its parent does not list, for fsck to reattach.
  Status fault = FaultRegistry::Global().Check("sfs.create.link");
  if (!fault.ok()) {
    if (!IsCrash(fault)) {
      node = Inode{};  // clean failure: release the inode again
    }
    return fault;
  }
  inodes_[parent].children.push_back(ino);
  AddAddrEntry(ino);
  return ino;
}

Result<uint32_t> SharedFs::Mkdir(const std::string& path) {
  uint32_t expect = 0;
  if (remote_active()) {
    ASSIGN_OR_RETURN(expect, remote_->OnMkdir(path));
  }
  uint32_t parent = 0;
  std::string leaf;
  RETURN_IF_ERROR(ValidatePathForCreate(path, &parent, &leaf));
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  if (expect != 0 && ino != expect) {
    return Internal(StrFormat("sfs: replica diverged: server created inode %u, local chose %u",
                              expect, ino));
  }
  ++clock_;
  Inode& node = inodes_[ino];
  node.type = SfsNodeType::kDirectory;
  node.path = NormalizePath(path);
  node.parent = parent;
  inodes_[parent].children.push_back(ino);
  return ino;
}

Status SharedFs::Unlink(const std::string& path, bool force) {
  if (remote_active()) {
    RETURN_IF_ERROR(remote_->OnUnlink(path, force));
  }
  ASSIGN_OR_RETURN(uint32_t ino, Lookup(path));
  if (ino == kRootIno) {
    return InvalidArgument("sfs: cannot unlink root");
  }
  Inode& node = inodes_[ino];
  if (!force && node.lock_owner != -1) {
    if (unlink_locked_refused_ != nullptr) {
      ++*unlink_locked_refused_;
    }
    return FailedPrecondition(StrFormat("sfs: '%s' is locked by pid %d; unlink would destroy the lock",
                                        node.path.c_str(), node.lock_owner));
  }
  if (node.type == SfsNodeType::kDirectory && !node.children.empty()) {
    return FailedPrecondition("sfs: directory not empty: " + path);
  }
  ++clock_;
  // The backing vector dies with the inode: stop every core before it dangles.
  ShootdownGuard shootdown = BeginShootdown();
  if (node.type == SfsNodeType::kRegular) {
    RemoveAddrEntry(ino);
    // The backing bytes are gone: stale TLB entries and decoded blocks over this
    // slot must not survive a later re-Create of the same inode.
    NoteMutatedRange(ino, 0, static_cast<uint32_t>(node.data.size()));
    ++data_epoch_;
  }
  Inode& parent = inodes_[node.parent];
  parent.children.erase(std::remove(parent.children.begin(), parent.children.end(), ino),
                        parent.children.end());
  node = Inode{};  // frees the inode (and its address slot for reuse)
  return OkStatus();
}

Result<uint32_t> SharedFs::Lookup(const std::string& path) const { return WalkDir(path); }

Result<SfsStat> SharedFs::Stat(const std::string& path) const {
  ASSIGN_OR_RETURN(uint32_t ino, Lookup(path));
  return StatInode(ino);
}

Result<SfsStat> SharedFs::StatInode(uint32_t ino) const {
  if (ino == 0 || ino > kSfsMaxInodes || inodes_[ino].type == SfsNodeType::kFree) {
    return NotFound("sfs: bad inode " + std::to_string(ino));
  }
  const Inode& node = inodes_[ino];
  SfsStat st;
  st.ino = ino;
  st.type = node.type;
  st.size = node.size;
  st.addr = node.type == SfsNodeType::kRegular ? SfsAddressForInode(ino) : 0;
  return st;
}

Result<std::vector<std::string>> SharedFs::List(const std::string& path) const {
  ASSIGN_OR_RETURN(uint32_t ino, Lookup(path));
  const Inode& node = inodes_[ino];
  if (node.type != SfsNodeType::kDirectory) {
    return InvalidArgument("sfs: not a directory: " + path);
  }
  std::vector<std::string> names;
  names.reserve(node.children.size());
  for (uint32_t child : node.children) {
    names.push_back(PathBasename(inodes_[child].path));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status SharedFs::Link(const std::string& existing, const std::string& link) {
  return PermissionDenied("sfs: hard links are prohibited on the shared partition");
}

Result<uint32_t> SharedFs::Symlink(const std::string& path, const std::string& target) {
  uint32_t expect = 0;
  if (remote_active()) {
    ASSIGN_OR_RETURN(expect, remote_->OnSymlink(path, target));
  }
  uint32_t parent = 0;
  std::string leaf;
  RETURN_IF_ERROR(ValidatePathForCreate(path, &parent, &leaf));
  ASSIGN_OR_RETURN(uint32_t ino, AllocInode());
  if (expect != 0 && ino != expect) {
    return Internal(StrFormat("sfs: replica diverged: server created inode %u, local chose %u",
                              expect, ino));
  }
  ++clock_;
  Inode& node = inodes_[ino];
  node.type = SfsNodeType::kSymlink;
  node.path = NormalizePath(path);
  node.symlink_target = target;
  node.parent = parent;
  inodes_[parent].children.push_back(ino);
  return ino;
}

Result<std::string> SharedFs::ReadLink(const std::string& path) const {
  ASSIGN_OR_RETURN(uint32_t ino, Lookup(path));
  if (inodes_[ino].type != SfsNodeType::kSymlink) {
    return InvalidArgument("sfs: not a symlink: " + path);
  }
  return inodes_[ino].symlink_target;
}

Status SharedFs::WriteAt(uint32_t ino, uint32_t offset, const uint8_t* data, uint32_t len) {
  if (remote_active()) {
    RETURN_IF_ERROR(remote_->OnWriteAt(ino, offset, data, len));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: not a regular file: inode " + std::to_string(ino));
  }
  if (static_cast<uint64_t>(offset) + len > kSfsMaxFileBytes) {
    if (enospc_ != nullptr) {
      ++*enospc_;
    }
    return OutOfRange("sfs: write past the 1 MB file limit");
  }
  ++clock_;
  Inode& node = inodes_[ino];
  Status fault = FaultRegistry::Global().Check("sfs.write");
  if (!fault.ok()) {
    if (IsCrash(fault) && len > 0) {
      // Torn write: half the payload lands in the extent, the logical size never
      // advances — exactly what a death between two sector writes leaves behind.
      uint32_t torn = len / 2;
      uint32_t torn_end = offset + torn;
      if (node.data.size() < torn_end) {
        ShootdownGuard shootdown = BeginShootdown();
        node.data.resize(torn_end, 0);
        ++data_epoch_;
      }
      RelaxedCopyTo(node.data.data() + offset, data, torn);
      NoteMutatedRange(ino, offset, torn);
    }
    return fault;
  }
  uint32_t end = offset + len;
  if (node.data.size() < end) {
    // The vector may reallocate; quiesce guest cores, then stale every cached
    // DataPtr. Bytes within the surviving extent are copied with relaxed atomics
    // instead — a plain shootdown-per-write would serialize every file write.
    ShootdownGuard shootdown = BeginShootdown();
    node.data.resize(end, 0);
    ++data_epoch_;
  }
  RelaxedCopyTo(node.data.data() + offset, data, len);
  node.size = std::max(node.size, end);
  // ldl rebuilds a module's segment through this path, under the VM's feet: any
  // decoded blocks over the written pages must die exactly like on a VM store.
  NoteMutatedRange(ino, offset, len);
  return OkStatus();
}

Result<uint32_t> SharedFs::ReadAt(uint32_t ino, uint32_t offset, uint8_t* out,
                                  uint32_t len) const {
  if (remote_active()) {
    // Pull absent pages before trusting local bytes (no-op once resident).
    RETURN_IF_ERROR(remote_->EnsureResident(ino, offset, len));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: not a regular file: inode " + std::to_string(ino));
  }
  const Inode& node = inodes_[ino];
  if (offset >= node.size) {
    return 0u;
  }
  uint32_t n = std::min(len, node.size - offset);
  // Defense in depth: fsck clamps a logical size past the physical extent
  // (kBadExtent), but a read must never trust size over the bytes actually there.
  if (offset >= node.data.size()) {
    return 0u;
  }
  n = std::min(n, static_cast<uint32_t>(node.data.size()) - offset);
  RelaxedCopyFrom(out, node.data.data() + offset, n);
  return n;
}

Status SharedFs::Truncate(uint32_t ino, uint32_t new_size) {
  if (remote_active()) {
    RETURN_IF_ERROR(remote_->OnTruncate(ino, new_size));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: not a regular file");
  }
  if (new_size > kSfsMaxFileBytes) {
    if (enospc_ != nullptr) {
      ++*enospc_;
    }
    return OutOfRange("sfs: beyond the 1 MB file limit");
  }
  ++clock_;
  Inode& node = inodes_[ino];
  Status fault = FaultRegistry::Global().Check("sfs.truncate");
  if (!fault.ok()) {
    if (IsCrash(fault)) {
      node.size = new_size;  // torn truncate: the size moved, the dropped tail did not get zeroed
    }
    return fault;
  }
  // Rare administrative path: quiesce guest cores for the whole mutation (the
  // zeroing races guest reads; a regrow can realloc).
  ShootdownGuard shootdown = BeginShootdown();
  if (new_size < node.data.size()) {
    // Zero the dropped range so a later regrow reads zeros (POSIX truncate), not the
    // previous occupant's bytes. The extent itself survives: mapped pages keep their
    // backing address.
    std::fill(node.data.begin() + new_size, node.data.end(), 0);
    NoteMutatedRange(ino, new_size, static_cast<uint32_t>(node.data.size()) - new_size);
  }
  node.size = new_size;
  if (node.data.size() < new_size) {
    node.data.resize(new_size, 0);
    ++data_epoch_;  // possible realloc: cached DataPtrs are stale
  }
  ++data_epoch_;  // logical size changed: extent-staleness checks must rerun
  return OkStatus();
}

Result<uint32_t> SharedFs::AddressOf(uint32_t ino) const {
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: directories have no address");
  }
  return SfsAddressForInode(ino);
}

Result<uint32_t> SharedFs::AddrToInode(uint32_t addr) const {
  if (!InSfsRegion(addr)) {
    return OutOfRange(StrFormat("sfs: address 0x%08x outside the shared region", addr));
  }
  if (addr_lookups_ != nullptr) {
    ++*addr_lookups_;
  }
  uint32_t found = 0;  // inodes are 1-based; 0 means no file at |addr|
  if (lookup_mode_ == AddrLookupMode::kLinear) {
    // The paper's linear table: scan front to back (ablation baseline).
    uint64_t probes = 0;
    for (const AddrEntry& e : addr_table_) {
      ++probes;
      if (addr >= e.base && addr < e.limit) {
        found = e.ino;
        break;
      }
    }
    if (addr_lookup_probes_ != nullptr) {
      *addr_lookup_probes_ += probes;
    }
  } else {
    // Ordered interval lookup (default): greatest base <= addr, one O(log n) probe.
    if (addr_lookup_probes_ != nullptr) {
      ++*addr_lookup_probes_;
    }
    auto it = addr_index_.upper_bound(addr);
    if (it != addr_index_.begin()) {
      --it;
      if (addr >= it->second.base && addr < it->second.limit) {
        found = it->second.ino;
      }
    }
  }
  if (found == 0 && addr_lookup_misses_ != nullptr) {
    ++*addr_lookup_misses_;
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Emit(TraceKind::kAddrLookup, found != 0 ? inodes_[found].path : "", "", addr, found);
  }
  if (found == 0) {
    return NotFound(StrFormat("sfs: no file at address 0x%08x", addr));
  }
  return found;
}

Result<std::string> SharedFs::InodeToPath(uint32_t ino) const {
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  (void)st;
  return inodes_[ino].path;
}

Result<std::string> SharedFs::AddrToPath(uint32_t addr) const {
  ASSIGN_OR_RETURN(uint32_t ino, AddrToInode(addr));
  return InodeToPath(ino);
}

void SharedFs::AddAddrEntry(uint32_t ino) {
  AddrEntry e;
  e.base = SfsAddressForInode(ino);
  e.limit = e.base + kSfsMaxFileBytes;
  e.ino = ino;
  addr_table_.push_back(e);
  addr_index_[e.base] = e;
}

void SharedFs::RemoveAddrEntry(uint32_t ino) {
  uint32_t base = SfsAddressForInode(ino);
  addr_table_.erase(std::remove_if(addr_table_.begin(), addr_table_.end(),
                                   [&](const AddrEntry& e) { return e.ino == ino; }),
                    addr_table_.end());
  addr_index_.erase(base);
}

void SharedFs::RebuildAddrTable() {
  addr_table_.clear();
  addr_index_.clear();
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    if (inodes_[ino].type == SfsNodeType::kRegular) {
      AddAddrEntry(ino);
    }
  }
}

Status SharedFs::EnsureExtent(uint32_t ino, uint32_t bytes) {
  if (remote_active()) {
    // The attach path (and the SIGSEGV auto-attach fault path) lands here: any
    // page about to become mappable must hold the server's bytes first.
    RETURN_IF_ERROR(remote_->EnsureResident(ino, 0, bytes));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: not a regular file");
  }
  if (bytes > kSfsMaxFileBytes) {
    if (enospc_ != nullptr) {
      ++*enospc_;
    }
    return OutOfRange("sfs: extent beyond the 1 MB file limit");
  }
  Inode& node = inodes_[ino];
  uint32_t want = PageCeil(bytes);
  if (node.data.size() < want) {
    // Quiesce guest cores across the realloc (the classic SMP shootdown moment).
    ShootdownGuard shootdown = BeginShootdown();
    node.data.resize(want, 0);
    ++data_epoch_;  // the vector may have reallocated; cached DataPtrs are stale
  }
  return OkStatus();
}

// --- Fast-path invalidation epochs ---

namespace {
inline bool SfsPageBit(uint32_t addr, uint32_t* byte_idx, uint8_t* mask) {
  if (!InSfsRegion(addr)) {
    return false;
  }
  uint32_t page = (addr - kSfsBase) / kPageSize;
  *byte_idx = page / 8;
  *mask = static_cast<uint8_t>(1u << (page % 8));
  return true;
}
}  // namespace

void SharedFs::NoteCodePage(uint32_t addr) {
  uint32_t idx;
  uint8_t mask;
  if (!SfsPageBit(addr, &idx, &mask)) {
    return;
  }
  code_bits_armed_.store(true, std::memory_order_relaxed);
  code_page_bits_[idx].fetch_or(mask, std::memory_order_relaxed);
}

void SharedFs::NoteExecStore(uint32_t addr) {
  uint32_t idx;
  uint8_t mask;
  if (!code_bits_armed_.load(std::memory_order_relaxed) || !SfsPageBit(addr, &idx, &mask)) {
    return;
  }
  if (code_page_bits_[idx].load(std::memory_order_relaxed) & mask) {
    // Self-modifying (or self-overwriting) shared code: retire every decoded block
    // in every process. Rare and coarse by design — correctness over cleverness.
    code_page_bits_[idx].fetch_and(static_cast<uint8_t>(~mask), std::memory_order_relaxed);
    ++code_epoch_;
  }
}

void SharedFs::NoteMutatedRange(uint32_t ino, uint32_t offset, uint32_t len) {
  if (!code_bits_armed_.load(std::memory_order_relaxed) || len == 0) {
    return;
  }
  uint32_t base = SfsAddressForInode(ino);
  uint32_t first = PageFloor(base + offset);
  uint32_t last = PageFloor(base + offset + (len - 1));
  for (uint64_t page = first; page <= last; page += kPageSize) {
    NoteExecStore(static_cast<uint32_t>(page));
  }
}

uint8_t* SharedFs::DataPtr(uint32_t ino) {
  if (ino == 0 || ino > kSfsMaxInodes || inodes_[ino].type != SfsNodeType::kRegular) {
    return nullptr;
  }
  return inodes_[ino].data.data();
}

uint32_t SharedFs::ExtentBytes(uint32_t ino) const {
  if (ino == 0 || ino > kSfsMaxInodes || inodes_[ino].type != SfsNodeType::kRegular) {
    return 0;
  }
  return static_cast<uint32_t>(inodes_[ino].data.size());
}

Status SharedFs::LockInode(uint32_t ino, int pid) {
  if (remote_active()) {
    // The creation lock is a wire lease: the server grants or refuses
    // (kWouldBlock keeps ldl's existing retry/backoff loop working untouched),
    // and breaks leases of dead sessions like PR 2 breaks dead processes'.
    RETURN_IF_ERROR(remote_->OnLock(ino, pid));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  (void)st;
  ++clock_;
  Inode& node = inodes_[ino];
  if (node.lock_owner != -1 && node.lock_owner != pid) {
    // A crashed creator must not wedge every later attacher: break the lock when
    // the holder is provably dead, or when its lease ran out on the op clock.
    bool holder_dead = pid_prober_ && !pid_prober_(node.lock_owner);
    bool lease_expired = clock_ >= node.lock_lease;
    if (!holder_dead && !lease_expired) {
      return WouldBlock(StrFormat("sfs: inode %u locked by pid %d", ino, node.lock_owner));
    }
    if (locks_broken_ != nullptr) {
      ++*locks_broken_;
    }
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Emit(TraceKind::kLockBroken, node.path, holder_dead ? "dead holder" : "lease expired",
                   0, static_cast<uint32_t>(node.lock_owner));
    }
    node.lock_owner = -1;
  }
  node.lock_owner = pid;
  node.lock_lease = clock_ + lock_lease_ops_;
  if (locks_taken_ != nullptr) {
    ++*locks_taken_;
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Emit(TraceKind::kLockTaken, node.path, StrFormat("pid %d", pid), 0, ino);
  }
  return OkStatus();
}

Status SharedFs::UnlockInode(uint32_t ino, int pid) {
  if (remote_active()) {
    // Release point: the hook flushes this inode's dirty pages before the
    // server lets the lock go (lazy release consistency).
    RETURN_IF_ERROR(remote_->OnUnlock(ino, pid));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  (void)st;
  Inode& node = inodes_[ino];
  if (node.lock_owner != pid) {
    return FailedPrecondition("sfs: unlock by non-owner");
  }
  node.lock_owner = -1;
  node.lock_lease = 0;
  if (unlock_hook_) {
    unlock_hook_(ino);
  }
  return OkStatus();
}

void SharedFs::ReleaseLocksOf(int pid) {
  if (remote_active()) {
    remote_->OnReleaseLocks(pid);
  }
  for (uint32_t ino = 0; ino < inodes_.size(); ++ino) {
    Inode& node = inodes_[ino];
    if (node.lock_owner == pid) {
      node.lock_owner = -1;
      node.lock_lease = 0;
      if (unlock_hook_) {
        unlock_hook_(ino);
      }
    }
  }
}

int SharedFs::LockOwner(uint32_t ino) const {
  if (ino == 0 || ino > kSfsMaxInodes || inodes_[ino].type == SfsNodeType::kFree) {
    return -1;
  }
  return inodes_[ino].lock_owner;
}

Status SharedFs::SetCreationPending(uint32_t ino, bool pending) {
  if (remote_active()) {
    RETURN_IF_ERROR(remote_->OnSetPending(ino, pending));
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: only regular files carry creation markers");
  }
  inodes_[ino].creation_pending = pending;
  return OkStatus();
}

bool SharedFs::CreationPending(uint32_t ino) const {
  return ino >= 1 && ino <= kSfsMaxInodes && inodes_[ino].creation_pending;
}

Status SharedFs::InstallReplicaNode(uint32_t ino, SfsNodeType type, const std::string& path,
                                    uint32_t parent, uint32_t size, bool pending,
                                    const std::string& target) {
  if (ino < 2 || ino > kSfsMaxInodes || type == SfsNodeType::kFree) {
    return InvalidArgument(StrFormat("sfs: replica node inode %u out of range", ino));
  }
  if (inodes_[ino].type != SfsNodeType::kFree) {
    return AlreadyExists(StrFormat("sfs: replica node inode %u already in use", ino));
  }
  if (parent < 1 || parent > kSfsMaxInodes ||
      inodes_[parent].type != SfsNodeType::kDirectory) {
    return InvalidArgument(StrFormat("sfs: replica node %u has no directory parent %u", ino,
                                     parent));
  }
  ++clock_;
  ShootdownGuard shootdown = BeginShootdown();
  Inode& node = inodes_[ino];
  node.type = type;
  node.path = NormalizePath(path);
  node.size = type == SfsNodeType::kRegular ? size : 0;
  node.data.clear();  // bytes arrive page by page via ReplicaInstallPage
  node.parent = parent;
  node.symlink_target = target;
  node.lock_owner = -1;
  node.lock_lease = 0;
  node.creation_pending = pending;
  inodes_[parent].children.push_back(ino);
  if (type == SfsNodeType::kRegular) {
    AddAddrEntry(ino);
  }
  return OkStatus();
}

Status SharedFs::ReplicaInstallPage(uint32_t ino, uint32_t page_index, const uint8_t* data,
                                    uint32_t len) {
  if (page_index >= kSfsMaxFileBytes / kPageSize || len > kPageSize) {
    return InvalidArgument("sfs: replica page out of range");
  }
  ASSIGN_OR_RETURN(SfsStat st, StatInode(ino));
  if (st.type != SfsNodeType::kRegular) {
    return InvalidArgument("sfs: replica page into a non-file inode");
  }
  Inode& node = inodes_[ino];
  uint32_t off = page_index * kPageSize;
  uint32_t want = off + kPageSize;
  if (node.data.size() < want) {
    ShootdownGuard shootdown = BeginShootdown();
    node.data.resize(want, 0);
    ++data_epoch_;
  }
  // Remote bytes land like DMA into possibly-mapped memory: relaxed per-byte
  // stores (a guest core may read concurrently and observes them at its next
  // synchronization point), and decoded code over the page is retired.
  static const uint8_t kZeroPage[kPageSize] = {};
  if (len > 0) {
    RelaxedCopyTo(node.data.data() + off, data, len);
  }
  if (len < kPageSize) {
    RelaxedCopyTo(node.data.data() + off + len, kZeroPage, kPageSize - len);
  }
  NoteMutatedRange(ino, off, kPageSize);
  return OkStatus();
}

Status SharedFs::Serialize(ByteWriter* w) const {
  w->U32(kSfsMagic);
  w->U32(kSfsVersion2);
  uint32_t used = InodesInUse();
  w->U32(used);
  uint32_t written = 0;
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    const Inode& node = inodes_[ino];
    if (node.type == SfsNodeType::kFree) {
      continue;
    }
    if (written == used / 2) {
      // Mid-stream crash window: the buffer so far is a truncated image, which is
      // what lands on "disk" when the machine dies while checkpointing.
      RETURN_IF_ERROR(FaultRegistry::Global().Check("sfs.serialize"));
    }
    w->U32(ino);
    w->U8(static_cast<uint8_t>(node.type));
    w->Str(node.path);
    w->U32(node.parent);
    w->I32(node.lock_owner);
    w->U8(node.creation_pending ? 1 : 0);
    if (node.type == SfsNodeType::kRegular) {
      w->U32(node.size);
      w->U32(static_cast<uint32_t>(node.data.size()));
      w->Raw(node.data.data(), node.data.size());
    } else if (node.type == SfsNodeType::kSymlink) {
      w->Str(node.symlink_target);
    } else {
      w->U32(static_cast<uint32_t>(node.children.size()));
      for (uint32_t child : node.children) {
        w->U32(child);
      }
    }
    ++written;
  }
  return OkStatus();
}

Result<std::unique_ptr<SharedFs>> SharedFs::Deserialize(ByteReader* r, SfsCheckReport* report) {
  ASSIGN_OR_RETURN(uint32_t magic, r->U32());
  if (magic != kSfsMagic) {
    return CorruptData("sfs: bad magic");
  }
  // v1 images wrote the inode-table size here; v2 writes a small version number.
  ASSIGN_OR_RETURN(uint32_t version, r->U32());
  auto fs = std::make_unique<SharedFs>();
  fs->inodes_[kRootIno] = Inode{};  // the image speaks for every inode, root included

  // Parses one v1 record in place (positional: the inode number is implicit).
  auto parse_v1_record = [&fs, r](uint32_t ino) -> Status {
    Inode& node = fs->inodes_[ino];
    ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > static_cast<uint8_t>(SfsNodeType::kSymlink)) {
      return CorruptData(StrFormat("sfs: inode %u: bad type byte %u", ino, type));
    }
    node.type = static_cast<SfsNodeType>(type);
    if (node.type == SfsNodeType::kFree) {
      return OkStatus();
    }
    ASSIGN_OR_RETURN(node.path, r->Str());
    ASSIGN_OR_RETURN(node.parent, r->U32());
    if (node.type == SfsNodeType::kRegular) {
      ASSIGN_OR_RETURN(node.size, r->U32());
      ASSIGN_OR_RETURN(uint32_t extent, r->U32());
      if (extent > kSfsMaxFileBytes) {
        return CorruptData(StrFormat("sfs: inode %u: extent %u beyond the 1 MB limit", ino, extent));
      }
      node.data.resize(extent);
      RETURN_IF_ERROR(r->ReadRaw(node.data.data(), extent));
    } else if (node.type == SfsNodeType::kSymlink) {
      ASSIGN_OR_RETURN(node.symlink_target, r->Str());
    } else {
      ASSIGN_OR_RETURN(uint32_t n, r->U32());
      if (n > kSfsMaxInodes) {
        return CorruptData(StrFormat("sfs: inode %u: %u directory entries", ino, n));
      }
      node.children.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(node.children[i], r->U32());
      }
    }
    node.lock_owner = -1;  // v1 never persisted locks
    return OkStatus();
  };

  // Parses one v2 record into |*out| / |*out_ino| without touching the table.
  auto parse_v2_record = [r](Inode* out, uint32_t* out_ino) -> Status {
    ASSIGN_OR_RETURN(*out_ino, r->U32());
    ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type == 0 || type > static_cast<uint8_t>(SfsNodeType::kSymlink)) {
      return CorruptData(StrFormat("sfs: record for inode %u: bad type byte %u", *out_ino, type));
    }
    out->type = static_cast<SfsNodeType>(type);
    ASSIGN_OR_RETURN(out->path, r->Str());
    ASSIGN_OR_RETURN(out->parent, r->U32());
    ASSIGN_OR_RETURN(out->lock_owner, r->I32());
    ASSIGN_OR_RETURN(uint8_t flags, r->U8());
    out->creation_pending = (flags & 1) != 0;
    if (out->type == SfsNodeType::kRegular) {
      ASSIGN_OR_RETURN(out->size, r->U32());
      ASSIGN_OR_RETURN(uint32_t extent, r->U32());
      if (extent > kSfsMaxFileBytes) {
        return CorruptData(
            StrFormat("sfs: record for inode %u: extent %u beyond the 1 MB limit", *out_ino, extent));
      }
      out->data.resize(extent);
      RETURN_IF_ERROR(r->ReadRaw(out->data.data(), extent));
    } else if (out->type == SfsNodeType::kSymlink) {
      ASSIGN_OR_RETURN(out->symlink_target, r->Str());
    } else {
      ASSIGN_OR_RETURN(uint32_t n, r->U32());
      if (n > kSfsMaxInodes) {
        return CorruptData(StrFormat("sfs: record for inode %u: %u directory entries", *out_ino, n));
      }
      out->children.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(out->children[i], r->U32());
      }
    }
    if (*out_ino == 0 || *out_ino > kSfsMaxInodes) {
      return CorruptData(StrFormat("sfs: record claims inode %u, outside the table", *out_ino));
    }
    return OkStatus();
  };

  Status parse = OkStatus();
  if (version == kSfsMaxInodes) {
    // v1: one positional record per table slot.
    for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
      parse = parse_v1_record(ino);
      if (!parse.ok()) {
        fs->inodes_[ino] = Inode{};  // drop the half-read record
        break;
      }
    }
  } else if (version == kSfsVersion2) {
    ASSIGN_OR_RETURN(uint32_t used, r->U32());
    if (used > kSfsMaxInodes) {
      return CorruptData("sfs: used-inode count exceeds the table");
    }
    for (uint32_t i = 0; i < used; ++i) {
      Inode tmp;
      uint32_t ino = 0;
      parse = parse_v2_record(&tmp, &ino);
      if (!parse.ok()) {
        break;
      }
      if (fs->inodes_[ino].type != SfsNodeType::kFree) {
        // Two records claim one inode — i.e. one fixed address. First claim wins;
        // honoring the second would silently alias two files onto one segment.
        Status dup = CorruptData(
            StrFormat("sfs: duplicate claim on inode %u (address 0x%08x) by '%s'; '%s' keeps it",
                      ino, SfsAddressForInode(ino), tmp.path.c_str(), fs->inodes_[ino].path.c_str()));
        if (report == nullptr) {
          return dup;
        }
        report->Add(SfsIssueKind::kDuplicateInode, ino, dup.message(), true);
        continue;
      }
      fs->inodes_[ino] = std::move(tmp);
    }
  } else {
    return UnsupportedVersion(StrFormat("sfs: unknown image version %u", version));
  }

  if (!parse.ok()) {
    if (report == nullptr) {
      return parse;  // strict load: a torn stream is fatal
    }
    // Salvage load: keep the readable prefix and let fsck restore the invariants.
    report->Add(SfsIssueKind::kTruncatedImage, 0, parse.message(), true);
  }

  // Boot-time scan (paper §3): rebuild the address table from the on-disk state,
  // then fsck the result — a reboot is exactly when torn state surfaces.
  fs->RebuildAddrTable();
  SfsCheckReport local;
  SfsCheckReport* fsck_report = report != nullptr ? report : &local;
  SfsCheck(fs.get()).Run(/*at_boot=*/true, fsck_report);
  if (report == nullptr && !local.structurally_clean()) {
    return CorruptData("sfs: image failed the consistency check: " + local.ToString());
  }
  return fs;
}

void SharedFs::SetObservers(MetricsRegistry* metrics, TraceBuffer* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ != nullptr) {
    addr_lookups_ = metrics_->Counter("sfs.addr_lookups");
    addr_lookup_probes_ = metrics_->Counter("sfs.addr_lookup_probes");
    addr_lookup_misses_ = metrics_->Counter("sfs.addr_lookup_misses");
    locks_taken_ = metrics_->Counter("sfs.locks_taken");
    locks_broken_ = metrics_->Counter("sfs.locks_broken");
    unlink_locked_refused_ = metrics_->Counter("sfs.unlink_locked_refused");
    enospc_ = metrics_->Counter("sfs.enospc");
    inode_exhausted_ = metrics_->Counter("sfs.inode_exhausted");
  } else {
    addr_lookups_ = addr_lookup_probes_ = addr_lookup_misses_ = nullptr;
    locks_taken_ = locks_broken_ = unlink_locked_refused_ = nullptr;
    enospc_ = inode_exhausted_ = nullptr;
  }
}

uint32_t SharedFs::InodesInUse() const {
  uint32_t n = 0;
  for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
    if (inodes_[ino].type != SfsNodeType::kFree) {
      ++n;
    }
  }
  return n;
}

}  // namespace hemlock
