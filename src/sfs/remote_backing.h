// RemoteBacking — the seam between a SharedFs *replica* and its
// segment-coherence server (src/net).
//
// A machine started with `hemrun --connect` does not own its shared partition:
// the authoritative inode table lives in hemserve, and the local SharedFs is a
// replica kept coherent through this interface. The protocol is forward-first:
// every metadata mutation calls its On* hook *before* touching local state, the
// implementation performs the RPC, and — critically — applies every remote
// invalidation piggybacked on the reply to the local replica before returning.
// Because the server serializes all mutations and the replica applies them in
// reply order under the kernel lock, the replica's deterministic inode
// allocator stays in lockstep with the server's (verified per create).
//
// Reads go the other way: EnsureResident pulls absent pages over the wire
// before local bytes are trusted, which is what turns the SIGSEGV auto-attach
// path into a remote page fetch (fault -> attach -> EnsureExtent -> fetch).
#ifndef SRC_SFS_REMOTE_BACKING_H_
#define SRC_SFS_REMOTE_BACKING_H_

#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace hemlock {

class RemoteBacking {
 public:
  virtual ~RemoteBacking() = default;

  // Forward-first mutation hooks. Each returns only after the server applied
  // the mutation and the reply's invalidations landed locally; an error aborts
  // the local mutation. Create-family hooks return the inode the server
  // allocated so the caller can verify the replica allocator agrees.
  virtual Result<uint32_t> OnCreate(const std::string& path) = 0;
  virtual Result<uint32_t> OnMkdir(const std::string& path) = 0;
  virtual Result<uint32_t> OnSymlink(const std::string& path, const std::string& target) = 0;
  virtual Status OnUnlink(const std::string& path, bool force) = 0;
  virtual Status OnTruncate(uint32_t ino, uint32_t new_size) = 0;
  virtual Status OnWriteAt(uint32_t ino, uint32_t offset, const uint8_t* data,
                           uint32_t len) = 0;

  // Wire leases: the creation lock travels to the server, which breaks leases
  // of dead sessions exactly like PR 2 breaks leases of dead processes.
  // Release points (unlock, pending-clear, exit-time sweep) flush dirty pages
  // *before* the lock moves — lazy release consistency.
  virtual Status OnLock(uint32_t ino, int pid) = 0;
  virtual Status OnUnlock(uint32_t ino, int pid) = 0;
  virtual void OnReleaseLocks(int pid) = 0;
  virtual Status OnSetPending(uint32_t ino, bool pending) = 0;

  // Demand paging: make [offset, offset+len) of |ino| locally resident,
  // fetching any pages this replica has never seen (or had invalidated).
  virtual Status EnsureResident(uint32_t ino, uint32_t offset, uint32_t len) = 0;
};

}  // namespace hemlock

#endif  // SRC_SFS_REMOTE_BACKING_H_
