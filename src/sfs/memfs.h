// A general-purpose in-memory Unix-like file system for the simulated machine.
//
// This models the *ordinary* disk of the paper's SGI workstation: it holds compiler
// template (.o) files, load images, and users' temp directories, and supports the
// symbolic links that the paper's parallel-application recipe relies on (§4: the parent
// symlinks the shared-data template into a temp directory on the search path).
//
// The special shared partition with address-mapped files is SharedFs (shared_fs.h);
// the two are glued together under one namespace by Vfs (vfs.h).
#ifndef SRC_SFS_MEMFS_H_
#define SRC_SFS_MEMFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace hemlock {

enum class MemNodeType { kRegular, kDirectory, kSymlink };

class MemFs {
 public:
  MemFs();

  MemFs(const MemFs&) = delete;
  MemFs& operator=(const MemFs&) = delete;

  // Creates a regular file (and not its parents). Fails if the parent directory is
  // missing or the path already exists as a directory.
  Status WriteFile(const std::string& path, std::vector<uint8_t> data);
  Status WriteFile(const std::string& path, const std::string& text);

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) const;

  Status Mkdir(const std::string& path);
  // mkdir -p.
  Status MkdirAll(const std::string& path);

  // Creates a symlink at |path| whose target is the literal string |target|
  // (absolute or relative to the symlink's directory).
  Status Symlink(const std::string& path, const std::string& target);

  // Removes a file, symlink, or *empty* directory.
  Status Unlink(const std::string& path);

  // True if the path names an existing node (after following symlinks).
  bool Exists(const std::string& path) const;
  bool IsDirectory(const std::string& path) const;
  bool IsSymlink(const std::string& path) const;  // the node itself, no following

  // Follows symlinks (up to 8 hops) and returns the canonical target path. The final
  // target need not exist — callers decide (the linkers treat a dangling link as
  // NotFound when they try to read through it).
  Result<std::string> ResolveSymlinks(const std::string& path) const;

  // Names (not paths) of entries in a directory, sorted.
  Result<std::vector<std::string>> List(const std::string& path) const;

  Result<uint32_t> FileSize(const std::string& path) const;

 private:
  struct Node {
    MemNodeType type = MemNodeType::kRegular;
    std::vector<uint8_t> data;                           // kRegular
    std::string symlink_target;                          // kSymlink
    std::map<std::string, std::unique_ptr<Node>> children;  // kDirectory
  };

  // Walks to the node at |path| without following a final symlink.
  // |follow_final| controls whether a symlink at the last component is resolved.
  const Node* Walk(const std::string& path, bool follow_final, int depth = 0) const;
  Node* WalkMutable(const std::string& path, bool follow_final);
  // Returns the directory node that should contain the final component of |path|.
  Node* WalkParent(const std::string& path, std::string* leaf);

  std::unique_ptr<Node> root_;
};

}  // namespace hemlock

#endif  // SRC_SFS_MEMFS_H_
