// One namespace over the simulated machine's two file systems: the ordinary in-memory
// disk (MemFs) and the dedicated shared partition (SharedFs), mounted at /shm.
//
// The linkers see only this facade: template .o files and load images may live anywhere;
// public modules and the templates they are created from must reside on the shared
// partition (paper §2: "insist that public modules ... reside on this partition").
// Symlinks (MemFs-only) are followed across the mount point, which is exactly the
// paper's Presto trick: a symlink in a temp directory pointing at a template in /shm.
#ifndef SRC_SFS_VFS_H_
#define SRC_SFS_VFS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sfs/memfs.h"
#include "src/sfs/shared_fs.h"

namespace hemlock {

inline constexpr const char kSfsMount[] = "/shm";

class Vfs {
 public:
  Vfs();

  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  // True when |path| (after normalization) lies on the shared partition.
  static bool OnSharedPartition(const std::string& path);
  // "/shm/a/b" -> "/a/b" (path inside the partition).
  static std::string SfsRelative(const std::string& path);

  // Follows MemFs symlinks; the result may land on either file system.
  Result<std::string> Resolve(const std::string& path) const;

  Result<std::vector<uint8_t>> ReadFile(const std::string& path) const;
  Status WriteFile(const std::string& path, const std::vector<uint8_t>& data);
  Status WriteFile(const std::string& path, const std::string& text);
  bool Exists(const std::string& path) const;
  bool IsDirectory(const std::string& path) const;
  Status Mkdir(const std::string& path);
  Status MkdirAll(const std::string& path);
  Status Unlink(const std::string& path);
  Result<std::vector<std::string>> List(const std::string& path) const;
  // MemFs only; creating links on the shared partition is prohibited.
  Status Symlink(const std::string& path, const std::string& target);

  MemFs& memfs() { return *memfs_; }
  SharedFs& sfs() { return *sfs_; }
  const SharedFs& sfs() const { return *sfs_; }

  // Replaces the shared partition (simulated reboot from "disk").
  void ReplaceSfs(std::unique_ptr<SharedFs> sfs) { sfs_ = std::move(sfs); }

 private:
  std::unique_ptr<MemFs> memfs_;
  std::unique_ptr<SharedFs> sfs_;
};

}  // namespace hemlock

#endif  // SRC_SFS_VFS_H_
