#include "src/sfs/memfs.h"

#include "src/base/strings.h"

namespace hemlock {

namespace {
constexpr int kMaxSymlinkHops = 8;
}

MemFs::MemFs() : root_(std::make_unique<Node>()) { root_->type = MemNodeType::kDirectory; }

const MemFs::Node* MemFs::Walk(const std::string& path, bool follow_final, int depth) const {
  if (depth > kMaxSymlinkHops) {
    return nullptr;
  }
  std::string norm = NormalizePath(path);
  if (!IsAbsolutePath(norm)) {
    return nullptr;
  }
  const Node* cur = root_.get();
  std::vector<std::string> parts = SplitString(norm, '/');
  std::string walked = "";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (cur->type != MemNodeType::kDirectory) {
      return nullptr;
    }
    auto it = cur->children.find(parts[i]);
    if (it == cur->children.end()) {
      return nullptr;
    }
    const Node* next = it->second.get();
    bool is_final = (i + 1 == parts.size());
    if (next->type == MemNodeType::kSymlink && (!is_final || follow_final)) {
      // Resolve the link target relative to the directory we are in, then continue
      // with the remaining components appended.
      std::string base = walked.empty() ? "/" : walked;
      std::string target = JoinPath(base, next->symlink_target);
      std::string rest;
      for (size_t j = i + 1; j < parts.size(); ++j) {
        rest += "/" + parts[j];
      }
      return Walk(NormalizePath(target + rest), follow_final, depth + 1);
    }
    walked += "/" + parts[i];
    cur = next;
  }
  return cur;
}

MemFs::Node* MemFs::WalkMutable(const std::string& path, bool follow_final) {
  return const_cast<Node*>(Walk(path, follow_final));
}

MemFs::Node* MemFs::WalkParent(const std::string& path, std::string* leaf) {
  std::string norm = NormalizePath(path);
  *leaf = PathBasename(norm);
  if (leaf->empty()) {
    return nullptr;
  }
  std::string dir = PathDirname(norm);
  Node* parent = WalkMutable(dir, /*follow_final=*/true);
  if (parent == nullptr || parent->type != MemNodeType::kDirectory) {
    return nullptr;
  }
  return parent;
}

Status MemFs::WriteFile(const std::string& path, std::vector<uint8_t> data) {
  std::string leaf;
  Node* parent = WalkParent(path, &leaf);
  if (parent == nullptr) {
    return NotFound("memfs: no such directory: " + PathDirname(NormalizePath(path)));
  }
  auto it = parent->children.find(leaf);
  if (it != parent->children.end()) {
    Node* node = it->second.get();
    if (node->type == MemNodeType::kDirectory) {
      return InvalidArgument("memfs: is a directory: " + path);
    }
    if (node->type == MemNodeType::kSymlink) {
      // Write through the link.
      ASSIGN_OR_RETURN(std::string target, ResolveSymlinks(path));
      return WriteFile(target, std::move(data));
    }
    node->data = std::move(data);
    return OkStatus();
  }
  auto node = std::make_unique<Node>();
  node->type = MemNodeType::kRegular;
  node->data = std::move(data);
  parent->children[leaf] = std::move(node);
  return OkStatus();
}

Status MemFs::WriteFile(const std::string& path, const std::string& text) {
  return WriteFile(path, std::vector<uint8_t>(text.begin(), text.end()));
}

Result<std::vector<uint8_t>> MemFs::ReadFile(const std::string& path) const {
  const Node* node = Walk(path, /*follow_final=*/true);
  if (node == nullptr) {
    return NotFound("memfs: no such file: " + path);
  }
  if (node->type != MemNodeType::kRegular) {
    return InvalidArgument("memfs: not a regular file: " + path);
  }
  return node->data;
}

Status MemFs::Mkdir(const std::string& path) {
  std::string leaf;
  Node* parent = WalkParent(path, &leaf);
  if (parent == nullptr) {
    return NotFound("memfs: no such directory: " + PathDirname(NormalizePath(path)));
  }
  if (parent->children.count(leaf) != 0) {
    return AlreadyExists("memfs: exists: " + path);
  }
  auto node = std::make_unique<Node>();
  node->type = MemNodeType::kDirectory;
  parent->children[leaf] = std::move(node);
  return OkStatus();
}

Status MemFs::MkdirAll(const std::string& path) {
  std::string norm = NormalizePath(path);
  std::vector<std::string> parts = SplitString(norm, '/');
  std::string cur;
  for (const std::string& part : parts) {
    cur += "/" + part;
    if (Exists(cur)) {
      if (!IsDirectory(cur)) {
        return InvalidArgument("memfs: not a directory: " + cur);
      }
      continue;
    }
    RETURN_IF_ERROR(Mkdir(cur));
  }
  return OkStatus();
}

Status MemFs::Symlink(const std::string& path, const std::string& target) {
  std::string leaf;
  Node* parent = WalkParent(path, &leaf);
  if (parent == nullptr) {
    return NotFound("memfs: no such directory: " + PathDirname(NormalizePath(path)));
  }
  if (parent->children.count(leaf) != 0) {
    return AlreadyExists("memfs: exists: " + path);
  }
  auto node = std::make_unique<Node>();
  node->type = MemNodeType::kSymlink;
  node->symlink_target = target;
  parent->children[leaf] = std::move(node);
  return OkStatus();
}

Status MemFs::Unlink(const std::string& path) {
  std::string leaf;
  Node* parent = WalkParent(path, &leaf);
  if (parent == nullptr) {
    return NotFound("memfs: no such file: " + path);
  }
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) {
    return NotFound("memfs: no such file: " + path);
  }
  if (it->second->type == MemNodeType::kDirectory && !it->second->children.empty()) {
    return FailedPrecondition("memfs: directory not empty: " + path);
  }
  parent->children.erase(it);
  return OkStatus();
}

bool MemFs::Exists(const std::string& path) const {
  return Walk(path, /*follow_final=*/true) != nullptr;
}

bool MemFs::IsDirectory(const std::string& path) const {
  const Node* node = Walk(path, /*follow_final=*/true);
  return node != nullptr && node->type == MemNodeType::kDirectory;
}

bool MemFs::IsSymlink(const std::string& path) const {
  const Node* node = Walk(path, /*follow_final=*/false);
  return node != nullptr && node->type == MemNodeType::kSymlink;
}

Result<std::string> MemFs::ResolveSymlinks(const std::string& path) const {
  std::string cur = NormalizePath(path);
  for (int hop = 0; hop < kMaxSymlinkHops; ++hop) {
    const Node* node = Walk(cur, /*follow_final=*/false);
    if (node == nullptr || node->type != MemNodeType::kSymlink) {
      return cur;
    }
    cur = NormalizePath(JoinPath(PathDirname(cur), node->symlink_target));
  }
  return InvalidArgument("memfs: too many symlink hops: " + path);
}

Result<std::vector<std::string>> MemFs::List(const std::string& path) const {
  const Node* node = Walk(path, /*follow_final=*/true);
  if (node == nullptr) {
    return NotFound("memfs: no such directory: " + path);
  }
  if (node->type != MemNodeType::kDirectory) {
    return InvalidArgument("memfs: not a directory: " + path);
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    names.push_back(name);
  }
  return names;
}

Result<uint32_t> MemFs::FileSize(const std::string& path) const {
  const Node* node = Walk(path, /*follow_final=*/true);
  if (node == nullptr || node->type != MemNodeType::kRegular) {
    return NotFound("memfs: no such file: " + path);
  }
  return static_cast<uint32_t>(node->data.size());
}

}  // namespace hemlock
