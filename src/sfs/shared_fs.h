// The Hemlock shared file system (paper §3, "Address Space and File System
// Organization").
//
// A dedicated partition whose files are the backing store for shared segments:
//   * exactly 1024 inodes; each file is capped at 1 MB;
//   * hard links (other than '.' and '..') are prohibited, so path <-> inode is 1:1;
//   * every regular file has a unique, globally agreed virtual address inside the 1 GB
//     region reserved between heap and stack:  addr(ino) = kSfsBase + (ino-1) * 1 MB;
//   * the kernel keeps an address -> file mapping in a *linear lookup table*, built by a
//     boot-time scan of the partition and updated as files are created and destroyed;
//   * new kernel calls translate inode -> path and open a file *by address*.
//
// All ordinary Unix file operations work here (read/write/stat/unlink/readdir); the only
// thing that sets the partition apart is the name <-> address association.
//
// Crash safety: mutating operations carry named fault points (FaultRegistry), the
// creation lock carries an operation-clock lease so a dead holder cannot wedge the
// partition, and Deserialize always runs the SfsCheck fsck pass so a torn image
// (crash mid-serialize, crash mid-create) comes back up consistent.
#ifndef SRC_SFS_SHARED_FS_H_
#define SRC_SFS_SHARED_FS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/layout.h"
#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/base/trace.h"

namespace hemlock {

struct SfsCheckReport;
class RemoteBacking;

// Hard links are prohibited (1:1 inode <-> path); *symbolic* links are ordinary
// inodes holding a target path and are what the paper's Presto recipe plants in
// per-job temp directories.
enum class SfsNodeType : uint8_t { kFree = 0, kRegular = 1, kDirectory = 2, kSymlink = 3 };

struct SfsStat {
  uint32_t ino = 0;
  SfsNodeType type = SfsNodeType::kFree;
  uint32_t size = 0;
  uint32_t addr = 0;  // 0 for directories
};

// Strategy for the kernel's address -> inode translation (DESIGN.md ablation F3):
// the paper uses a linear table "for the sake of simplicity" and plans a B-tree-backed
// index for the 64-bit version. We default to the ordered interval index (the paper's
// planned replacement); kLinear remains as the ablation baseline.
enum class AddrLookupMode { kLinear, kIndexed };

class SharedFs {
 public:
  SharedFs();

  SharedFs(const SharedFs&) = delete;
  SharedFs& operator=(const SharedFs&) = delete;

  // --- Path operations (traditional Unix interface) ---

  // Creates an empty regular file. Consumes an inode; fails with kResourceExhausted
  // when all 1024 are in use.
  Result<uint32_t> Create(const std::string& path);
  Result<uint32_t> Mkdir(const std::string& path);
  // Removes a file or empty directory; frees the inode and its address slot.
  // Refuses (kFailedPrecondition) while the inode's creation lock is held — destroying
  // a locked segment under its creator would orphan the lock and tear the creation
  // protocol. Pass force=true to override (fsck / administrative tools only).
  Status Unlink(const std::string& path) { return Unlink(path, /*force=*/false); }
  Status Unlink(const std::string& path, bool force);
  Result<uint32_t> Lookup(const std::string& path) const;
  Result<SfsStat> Stat(const std::string& path) const;
  // Entry names in a directory, sorted — the paper leans on this for manual garbage
  // collection ("the ability to peruse all of the segments in existence").
  Result<std::vector<std::string>> List(const std::string& path) const;
  bool Exists(const std::string& path) const { return Lookup(path).ok(); }

  // Hard links are prohibited (paper §3); this always fails and exists so callers can
  // verify the restriction.
  Status Link(const std::string& existing, const std::string& link);

  // Creates a symbolic link whose literal target is |target| (any VFS path).
  Result<uint32_t> Symlink(const std::string& path, const std::string& target);
  // Reads a symlink's target.
  Result<std::string> ReadLink(const std::string& path) const;

  // --- Inode-level I/O ---

  Status WriteAt(uint32_t ino, uint32_t offset, const uint8_t* data, uint32_t len);
  Result<uint32_t> ReadAt(uint32_t ino, uint32_t offset, uint8_t* out, uint32_t len) const;
  // Shrinking zeroes the dropped tail so a later regrow reads zeros (POSIX truncate
  // semantics), not another segment's stale bytes. The physical extent is kept, so
  // DataPtr stays stable for mapped pages.
  Status Truncate(uint32_t ino, uint32_t new_size);
  Result<SfsStat> StatInode(uint32_t ino) const;

  // --- The address mapping (the paper's kernel extensions) ---

  // The file's fixed virtual address; valid for regular files.
  Result<uint32_t> AddressOf(uint32_t ino) const;
  // addr -> inode via the lookup table. |addr| may point anywhere inside the file's
  // 1 MB slot. kNotFound if no file owns that address.
  Result<uint32_t> AddrToInode(uint32_t addr) const;
  // New kernel call (paper §3): inode -> path.
  Result<std::string> InodeToPath(uint32_t ino) const;
  // New kernel call: addr -> path (stat already gave path -> addr via the inode number).
  Result<std::string> AddrToPath(uint32_t addr) const;

  // Rebuilds the lookup table by scanning every inode — run at boot (paper: "we
  // initialize the table at boot time by scanning the entire shared file system").
  void RebuildAddrTable();

  void set_lookup_mode(AddrLookupMode mode) { lookup_mode_ = mode; }
  AddrLookupMode lookup_mode() const { return lookup_mode_; }

  // Observability taps (owned by the Machine; may be null — e.g. a standalone
  // SharedFs in a unit test records nothing).
  void SetObservers(MetricsRegistry* metrics, TraceBuffer* trace);

  // --- Segment backing (used by the VM's mapper) ---

  // Guarantees the physical buffer covers [0, bytes) so pages can be mapped; the
  // logical size is not changed (like touching pages past EOF under mmap).
  Status EnsureExtent(uint32_t ino, uint32_t bytes);
  // Direct access to the shared backing bytes. The pointer is stable until the next
  // EnsureExtent/Truncate on the same inode.
  uint8_t* DataPtr(uint32_t ino);
  uint32_t ExtentBytes(uint32_t ino) const;

  // --- Fast-path invalidation epochs (see docs/PERFORMANCE.md) ---
  //
  // Every AddressSpace software-TLB entry and every decoded basic block is tagged
  // with an epoch at fill time and revalidated against the current epoch on use, so
  // invalidation is a counter bump here, never a walk of per-process caches.

  // Bumped whenever a DataPtr may dangle or stop covering a mapped page: extent
  // growth (vector realloc), truncate, unlink. TLB entries caching host pointers
  // into this partition die on the next access. Atomic because SMP guest cores
  // revalidate their TLBs against it without holding the kernel lock.
  uint64_t data_epoch() const { return data_epoch_.load(std::memory_order_relaxed); }
  // Bumped whenever bytes in a page that holds *decoded basic blocks* change —
  // stores through exec-mapped pages (self-modifying code) and kernel-side file
  // writes under a mapped module (ldl's segment rebuild). Tracked per page via a
  // bitmap so ordinary data stores into rw+exec segments never flush anyone.
  uint64_t code_epoch() const { return code_epoch_.load(std::memory_order_relaxed); }
  // An ExecCache decoded a block from |addr|'s page: start watching it for writes.
  void NoteCodePage(uint32_t addr);
  // A store retired in an exec-mapped shared page (any process' AddressSpace).
  void NoteExecStore(uint32_t addr);

  // --- Advisory locking (ldl's segment-creation lock, paper §4 fn. 3) ---

  // Takes the creation lock. A held lock is *broken* (cleared, counted in
  // sfs.locks_broken, traced as lock_broken) when its holder is provably dead (the
  // pid prober says so) or its lease has expired on the operation clock — a crashed
  // creator must not wedge every later attacher. Otherwise contention is kWouldBlock.
  Status LockInode(uint32_t ino, int pid);
  Status UnlockInode(uint32_t ino, int pid);
  // Releases every lock held by |pid| (process exit).
  void ReleaseLocksOf(int pid);
  // -1 when unlocked or |ino| invalid.
  int LockOwner(uint32_t ino) const;

  // Liveness oracle for lock holders (the Machine wires its process table in). Null
  // means "unknown": only lease expiry can break a lock.
  void SetPidProber(std::function<bool(int pid)> prober) { pid_prober_ = std::move(prober); }

  // Called after every successful lock release (explicit unlock or exit-time sweep)
  // with the inode freed. The Machine wires this to its scheduler so processes
  // blocked waiting for a creation lock wake up instead of polling.
  void SetUnlockHook(std::function<void(uint32_t ino)> hook) { unlock_hook_ = std::move(hook); }

  // --- Cross-core shootdown (the SMP machine's stop-the-world hook) ---
  //
  // An opaque token the hook returns; the mutation holds it for its whole danger
  // window. The SMP Machine returns a unique lock on its world lock here, which
  // drains every core out of guest execution before the bytes move — no core can
  // be dereferencing a cached DataPtr while the extent reallocates. Null (the
  // default, and always in single-core runs) means no quiescing is needed.
  using ShootdownGuard = std::shared_ptr<void>;
  void SetShootdownHook(std::function<ShootdownGuard()> hook) {
    shootdown_hook_ = std::move(hook);
  }

  // Every lease lasts this many operations on the partition (default 4096). Tests
  // shrink it to exercise expiry without thousands of ops.
  void set_lock_lease_ops(uint64_t ops) { lock_lease_ops_ = ops; }
  uint64_t lock_lease_ops() const { return lock_lease_ops_; }
  // Manually advances the operation clock (ldl's lock-retry backoff; the fault
  // registry's delay hook).
  void AdvanceClock(uint64_t ticks) { clock_ += ticks; }
  uint64_t clock() const { return clock_; }

  // --- Distributed shared segments (the hemnet replica seam; docs/DISTRIBUTED.md) ---

  // Installing a RemoteBacking turns this SharedFs into a *replica* of a
  // segment-coherence server's partition: every metadata mutation forwards to
  // the server before it lands locally (the hook also applies the server's
  // queued invalidations, preserving its serialization order), and reads pull
  // absent pages over the wire before local bytes are trusted.
  void SetRemoteBacking(RemoteBacking* remote) { remote_ = remote; }
  bool remote_attached() const { return remote_ != nullptr; }

  // Suspends forwarding while the network client applies remote state locally
  // (mount snapshots, invalidations) — those are the server's own mutations
  // coming back, not new ones to forward.
  class ScopedRemoteBypass {
   public:
    explicit ScopedRemoteBypass(SharedFs* fs) : fs_(fs) { ++fs_->remote_suspend_; }
    ~ScopedRemoteBypass() { --fs_->remote_suspend_; }
    ScopedRemoteBypass(const ScopedRemoteBypass&) = delete;
    ScopedRemoteBypass& operator=(const ScopedRemoteBypass&) = delete;

   private:
    SharedFs* fs_;
  };

  // Installs a node at an *explicit* inode number (mount snapshots: the
  // server's table can have holes from unlinks that a fresh replica could not
  // reproduce through Create). The node's logical size is set without
  // materializing any bytes — pages arrive later via ReplicaInstallPage.
  Status InstallReplicaNode(uint32_t ino, SfsNodeType type, const std::string& path,
                            uint32_t parent, uint32_t size, bool pending,
                            const std::string& target);
  // Lands one fetched page in the extent (grown as needed). |len| may be short
  // of a full page — the tail is zeroed; len == 0 zeroes the whole page. Bytes
  // land like DMA into possibly-mapped memory: relaxed stores, decoded code
  // over the page retired.
  Status ReplicaInstallPage(uint32_t ino, uint32_t page_index, const uint8_t* data,
                            uint32_t len);

  // --- Creation-complete marker (crash-safe public-module creation) ---

  // While set, the segment's contents are not trustworthy: the creator died (or is
  // still working) between Create and the final write. ldl sets it before writing a
  // public module and clears it after; an attacher seeing it rebuilds from template.
  Status SetCreationPending(uint32_t ino, bool pending);
  bool CreationPending(uint32_t ino) const;

  // --- Persistence across "reboots" ---

  // Writes the v2 image (explicit inode numbers, lock owners, creation markers).
  // Fails only when a fault is injected mid-stream — the buffer then holds a
  // deliberately truncated image for crash-recovery tests.
  Status Serialize(ByteWriter* w) const;
  // Reads a v1 or v2 image. With |report| == nullptr the load is strict: any
  // corruption (torn stream, duplicate inode claims, structural damage found by
  // fsck) fails with kCorruptData. With a report, the load *salvages*: the readable
  // prefix is kept, every issue is recorded, SfsCheck repairs the rest. Either way
  // the fsck pass runs with at_boot=true, so persisted locks never survive a reboot.
  static Result<std::unique_ptr<SharedFs>> Deserialize(ByteReader* r,
                                                       SfsCheckReport* report = nullptr);

  // Counts for introspection.
  uint32_t InodesInUse() const;
  uint32_t FreeInodes() const { return kSfsMaxInodes - InodesInUse(); }

 private:
  friend class SfsCheck;

  struct Inode {
    SfsNodeType type = SfsNodeType::kFree;
    std::string path;                 // canonical absolute path within the partition
    uint32_t size = 0;                // logical file size
    std::vector<uint8_t> data;        // physical extent (page-rounded when mapped)
    std::vector<uint32_t> children;   // directory entries
    std::string symlink_target;       // kSymlink
    uint32_t parent = 0;
    int lock_owner = -1;
    uint64_t lock_lease = 0;          // clock_ value at which the lock becomes breakable
    bool creation_pending = false;    // set between Create and the completing write
  };

  struct AddrEntry {
    uint32_t base = 0;
    uint32_t limit = 0;
    uint32_t ino = 0;
  };

  Result<uint32_t> AllocInode();
  Result<uint32_t> WalkDir(const std::string& dir_path) const;
  Status ValidatePathForCreate(const std::string& path, uint32_t* parent_ino,
                               std::string* leaf) const;
  void AddAddrEntry(uint32_t ino);
  void RemoveAddrEntry(uint32_t ino);
  // Kernel-side mutation of a file's bytes (WriteAt/Truncate/Unlink): if any touched
  // page holds decoded code, retire those blocks the same way a VM store would.
  void NoteMutatedRange(uint32_t ino, uint32_t offset, uint32_t len);
  // Taken before any mutation that can invalidate a host pointer another core may
  // hold (extent realloc, truncate, unlink, inode recycling).
  ShootdownGuard BeginShootdown() const {
    return shootdown_hook_ ? shootdown_hook_() : nullptr;
  }

  // Inode 0 unused; inode 1 is the partition root directory.
  std::vector<Inode> inodes_;
  AddrLookupMode lookup_mode_ = AddrLookupMode::kIndexed;
  // Linear table (paper baseline) — scanned front to back.
  std::vector<AddrEntry> addr_table_;
  // Ordered interval index (default): base -> entry, probed with upper_bound.
  std::map<uint32_t, AddrEntry> addr_index_;

  // Lock leases: a logical clock ticked by every mutating operation. Simulated time,
  // so lease expiry is deterministic in tests.
  uint64_t clock_ = 0;
  uint64_t lock_lease_ops_ = 4096;
  std::function<bool(int)> pid_prober_;
  std::function<void(uint32_t)> unlock_hook_;
  std::function<ShootdownGuard()> shootdown_hook_;

  // Fast-path epochs (see accessors above). The code-page bitmap covers the whole
  // 1 GB SFS region at page granularity (32 KB) — a bit is set once an ExecCache
  // decodes from that page and cleared when the page mutates (epoch bump). Both
  // the epochs and the bitmap are touched from guest execution on any core, so
  // they are relaxed atomics; |code_bits_armed_| keeps the common no-shared-code
  // case a single load.
  std::atomic<uint64_t> data_epoch_{0};
  std::atomic<uint64_t> code_epoch_{0};
  std::unique_ptr<std::atomic<uint8_t>[]> code_page_bits_;
  std::atomic<bool> code_bits_armed_{false};

  // Distributed replica seam (null on an authoritative partition). The suspend
  // counter is only ever toggled with the kernel lock held, like every other
  // metadata mutation, so a plain int suffices.
  bool remote_active() const { return remote_ != nullptr && remote_suspend_ == 0; }
  RemoteBacking* remote_ = nullptr;
  int remote_suspend_ = 0;

  // Observability (null until the owning Machine wires itself in).
  MetricsRegistry* metrics_ = nullptr;
  TraceBuffer* trace_ = nullptr;
  uint64_t* addr_lookups_ = nullptr;
  uint64_t* addr_lookup_probes_ = nullptr;
  uint64_t* addr_lookup_misses_ = nullptr;
  uint64_t* locks_taken_ = nullptr;
  uint64_t* locks_broken_ = nullptr;
  uint64_t* unlink_locked_refused_ = nullptr;
  // Paper-limit exhaustion (ISSUE 5): every refusal is counted, never fatal.
  uint64_t* enospc_ = nullptr;           // writes/extents refused by the 1 MB file cap
  uint64_t* inode_exhausted_ = nullptr;  // creates refused with all 1024 inodes in use
};

// The fixed address of a regular file's segment, derived from its inode number.
inline constexpr uint32_t SfsAddressForInode(uint32_t ino) {
  return kSfsBase + (ino - 1) * kSfsMaxFileBytes;
}

}  // namespace hemlock

#endif  // SRC_SFS_SHARED_FS_H_
