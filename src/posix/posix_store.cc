#include "src/posix/posix_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "src/base/faults.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {

// Fixed hint for the reserved region. On x86-64 Linux this part of the address space
// is reliably free; every process using the same registry maps here, giving the
// paper's uniform addressing. (A real deployment would negotiate; a fixed constant is
// the honest analogue of the paper's reserved 1 GB range.)
uint8_t* const kRegionHint = reinterpret_cast<uint8_t*>(0x7D0000000000ull);

size_t PageRound(size_t n) {
  size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (n + page - 1) & ~(page - 1);
}

Status ErrnoStatus(const std::string& what) {
  std::string msg = what + ": " + std::strerror(errno);
  switch (errno) {
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return ResourceExhausted(std::move(msg));
    case EIO:
      return IoError(std::move(msg));
    default:
      return Internal(std::move(msg));
  }
}

// RAII fd.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

Result<std::vector<std::pair<std::string, int>>> ParsePosixIndex(const std::string& content) {
  std::string body = content;
  bool has_header = content.rfind("#hemidx ", 0) == 0;
  size_t expected = 0;
  if (has_header) {
    size_t nl = content.find('\n');
    if (nl == std::string::npos) {
      return CorruptData("posix_store: index header line not terminated");
    }
    std::vector<std::string> parts = SplitString(content.substr(0, nl), ' ');
    if (parts.size() != 3 ||
        parts[1].find_first_not_of("0123456789abcdef") != std::string::npos ||
        parts[2].empty() || parts[2].size() > 4 ||
        parts[2].find_first_not_of("0123456789") != std::string::npos) {
      return CorruptData("posix_store: malformed index header");
    }
    body = content.substr(nl + 1);
    uint32_t want = static_cast<uint32_t>(std::strtoul(parts[1].c_str(), nullptr, 16));
    expected = static_cast<size_t>(std::strtoul(parts[2].c_str(), nullptr, 10));
    if (expected > kPosixMaxSegments) {
      return CorruptData("posix_store: index header promises more entries than slots exist");
    }
    if (Crc32(body.data(), body.size()) != want) {
      return CorruptData("posix_store: index checksum mismatch (torn or tampered write)");
    }
  }
  std::vector<std::pair<std::string, int>> entries;
  std::vector<bool> used(kPosixMaxSegments, false);
  std::unordered_set<std::string> names;
  for (const std::string& line : SplitString(body, '\n')) {
    if (line.empty()) {
      continue;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return CorruptData("posix_store: truncated index entry '" + line + "'");
    }
    std::string name = line.substr(0, space);
    std::string slot_str = line.substr(space + 1);
    if (name.size() > kPosixMaxNameBytes || name.find('/') != std::string::npos ||
        name == "." || name == "..") {
      return CorruptData("posix_store: index entry with unusable segment name");
    }
    if (slot_str.size() > 4 || slot_str.find_first_not_of("0123456789") != std::string::npos) {
      return CorruptData("posix_store: index entry '" + name + "' with non-numeric slot");
    }
    unsigned long slot = std::strtoul(slot_str.c_str(), nullptr, 10);
    if (slot >= kPosixMaxSegments) {
      return CorruptData(StrFormat("posix_store: index entry '%s' claims slot %lu of %u",
                                   name.c_str(), slot, kPosixMaxSegments));
    }
    if (used[slot]) {
      return CorruptData(StrFormat("posix_store: two index entries claim slot %lu", slot));
    }
    if (!names.insert(name).second) {
      return CorruptData("posix_store: duplicate index entry for segment '" + name + "'");
    }
    used[slot] = true;
    entries.emplace_back(std::move(name), static_cast<int>(slot));
  }
  if (has_header && entries.size() != expected) {
    return CorruptData(StrFormat("posix_store: index holds %zu entries, header promises %zu",
                                 entries.size(), expected));
  }
  return entries;
}

Result<std::string> PosixStore::ReadAll(int fd) {
  std::string content;
  char buf[4096];
  for (;;) {
    Status eintr = FaultRegistry::Global().Check("posix.io.read.eintr");
    if (!eintr.ok()) {
      if (IsCrash(eintr)) {
        return eintr;
      }
      Bump(io_retries_);  // injected EINTR: the call transferred nothing; go again
      continue;
    }
    RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.io.read"));
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        Bump(io_retries_);
        continue;
      }
      return IoError(std::string("posix_store: read index: ") + std::strerror(errno));
    }
    if (n == 0) {
      return content;
    }
    content.append(buf, static_cast<size_t>(n));
  }
}

Status PosixStore::WriteAll(int fd, const std::string& content) {
  size_t off = 0;
  while (off < content.size()) {
    size_t chunk = content.size() - off;
    Status eintr = FaultRegistry::Global().Check("posix.io.write.eintr");
    if (!eintr.ok()) {
      if (IsCrash(eintr)) {
        return eintr;
      }
      Bump(io_retries_);
      continue;
    }
    Status shortw = FaultRegistry::Global().Check("posix.io.write.short");
    if (!shortw.ok()) {
      if (IsCrash(shortw)) {
        return shortw;
      }
      // Injected short write: the host accepts only half this chunk; the loop must
      // finish the rest rather than publish a truncated index.
      chunk = std::max<size_t>(1, chunk / 2);
      Bump(io_retries_);
    }
    Status enospc = FaultRegistry::Global().Check("posix.io.enospc");
    if (!enospc.ok()) {
      if (IsCrash(enospc)) {
        return enospc;
      }
      return ResourceExhausted("posix_store: write index: no space left on host device");
    }
    ssize_t n = ::write(fd, content.data() + off, chunk);
    if (n < 0) {
      if (errno == EINTR) {
        Bump(io_retries_);
        continue;
      }
      return ErrnoStatus("posix_store: write index");
    }
    if (n == 0) {
      return IoError("posix_store: write index: host wrote 0 bytes");
    }
    if (static_cast<size_t>(n) < chunk) {
      Bump(io_retries_);  // real short write: resume from where the host stopped
    }
    off += static_cast<size_t>(n);
  }
  return OkStatus();
}

void PosixStore::SetMetrics(MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    index_rejected_ = metrics->Counter("posix.index_rejected");
    index_recoveries_ = metrics->Counter("posix.index_recoveries");
    io_retries_ = metrics->Counter("posix.io_retries");
    seg_rejected_ = metrics->Counter("posix.segment_rejected");
  } else {
    index_rejected_ = index_recoveries_ = io_retries_ = seg_rejected_ = nullptr;
  }
}

PosixStore::~PosixStore() {
  if (region_ != nullptr) {
    ::munmap(region_, kPosixRegionBytes);
  }
}

Result<std::unique_ptr<PosixStore>> PosixStore::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir + "/seg", ec);
  if (ec) {
    return Internal("posix_store: mkdir " + dir + "/seg: " + ec.message());
  }
  // Reserve the region (PROT_NONE: touching an unattached address faults, which is
  // what the fault handler keys on). MAP_FIXED is deliberate: the range sits far from
  // any allocation glibc or the loader would make, and re-opening a store (including
  // in a forked child) must reset the region to the unattached state a fresh process
  // would see.
  void* region = ::mmap(kRegionHint, kPosixRegionBytes, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (region == MAP_FAILED) {
    return ErrnoStatus("posix_store: region reservation");
  }
  auto store = std::unique_ptr<PosixStore>(new PosixStore(dir, static_cast<uint8_t*>(region)));
  // Ensure the index exists, then scan it (the "boot-time scan").
  int fd = ::open(store->IndexPath().c_str(), O_CREAT | O_RDWR, 0666);
  if (fd < 0) {
    return ErrnoStatus("posix_store: create index");
  }
  ::close(fd);
  RETURN_IF_ERROR(store->Refresh());
  return store;
}

Result<std::vector<std::pair<std::string, int>>> PosixStore::ReadIndex(bool take_lock) {
  Fd fd(::open(IndexPath().c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: open index");
  }
  if (take_lock && ::flock(fd.get(), LOCK_SH) != 0) {
    return ErrnoStatus("posix_store: lock index");
  }
  ASSIGN_OR_RETURN(std::string content, ReadAll(fd.get()));
  Result<std::vector<std::pair<std::string, int>>> entries = ParsePosixIndex(content);
  if (!entries.ok() && entries.status().code() == ErrorCode::kCorruptData) {
    Bump(index_rejected_);
  }
  return entries;
}

Status PosixStore::WriteIndex(const std::vector<std::pair<std::string, int>>& entries) {
  std::string body;
  for (const auto& [name, slot] : entries) {
    body += name + " " + std::to_string(slot) + "\n";
  }
  std::string content =
      StrFormat("#hemidx %08x %zu\n", Crc32(body.data(), body.size()), entries.size()) + body;
  std::string tmp = IndexPath() + ".tmp";
  Fd fd(::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0666));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: write index");
  }
  RETURN_IF_ERROR(WriteAll(fd.get(), content));
  // The checksum protects against torn *content*; the fsync + rename ordering
  // protects against torn *publication* — readers see the old index or the new one,
  // never a half-written file at the final path.
  if (::fsync(fd.get()) != 0) {
    return ErrnoStatus("posix_store: fsync index");
  }
  RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.index.write"));
  if (::rename(tmp.c_str(), IndexPath().c_str()) != 0) {
    return ErrnoStatus("posix_store: rename index");
  }
  return OkStatus();
}

Status PosixStore::RecoverIndex(bool take_lock) {
  Fd lock(take_lock ? ::open(IndexPath().c_str(), O_CREAT | O_RDWR, 0666) : -1);
  if (take_lock && (lock.get() < 0 || ::flock(lock.get(), LOCK_EX) != 0)) {
    return ErrnoStatus("posix_store: lock index for recovery");
  }
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_ + "/seg", ec)) {
    if (!entry.is_regular_file(ec)) {
      continue;
    }
    // The scan trusts nothing about the files it finds: an empty file is a torn
    // creation, an oversized one would map over the neighbouring slot. Either way
    // it stays out of the rebuilt index (the file itself is left for the operator).
    std::error_code size_ec;
    uintmax_t size = entry.file_size(size_ec);
    if (size_ec || size == 0 || size > kPosixSlotBytes) {
      Bump(seg_rejected_);
      continue;
    }
    std::string name = entry.path().filename().string();
    if (name.size() > kPosixMaxNameBytes) {
      Bump(seg_rejected_);
      continue;
    }
    names.push_back(std::move(name));
  }
  if (ec) {
    return Internal("posix_store: scan segment dir: " + ec.message());
  }
  Bump(index_recoveries_);
  // Sorted names -> slots 0..n-1: deterministic, so every process that recovers the
  // same directory rebuilds the same name <-> address mapping.
  std::sort(names.begin(), names.end());
  std::vector<std::pair<std::string, int>> entries;
  for (const std::string& name : names) {
    if (entries.size() >= kPosixMaxSegments) {
      break;
    }
    entries.emplace_back(name, static_cast<int>(entries.size()));
  }
  return WriteIndex(entries);
}

Status PosixStore::Refresh() {
  Result<std::vector<std::pair<std::string, int>>> read = ReadIndex(/*take_lock=*/true);
  if (!read.ok()) {
    if (read.status().code() != ErrorCode::kCorruptData) {
      return read.status();
    }
    // A torn or tampered index is rebuilt from the segment files themselves.
    RETURN_IF_ERROR(RecoverIndex(/*take_lock=*/true));
    read = ReadIndex(/*take_lock=*/true);
    RETURN_IF_ERROR(read.status());
  }
  std::fill(slot_names_.begin(), slot_names_.end(), std::string());
  for (const auto& [name, slot] : *read) {
    if (slot >= 0 && slot < static_cast<int>(kPosixMaxSegments)) {
      slot_names_[slot] = name;
    }
  }
  return OkStatus();
}

Result<int> PosixStore::LookupSlot(const std::string& name) {
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t i = 0; i < kPosixMaxSegments; ++i) {
      if (slot_names_[i] == name) {
        return static_cast<int>(i);
      }
    }
    RETURN_IF_ERROR(Refresh());  // maybe another process created it
  }
  return NotFound("posix_store: no segment named '" + name + "'");
}

Result<PosixSegment> PosixStore::Create(const std::string& name, size_t size) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return InvalidArgument("posix_store: bad segment name '" + name + "'");
  }
  if (size == 0 || size > kPosixSlotBytes) {
    return OutOfRange("posix_store: size must be in (0, 1 MB]");
  }
  // Serialize creations through an exclusive lock on the index.
  Fd lock(::open(IndexPath().c_str(), O_RDWR));
  if (lock.get() < 0 || ::flock(lock.get(), LOCK_EX) != 0) {
    return ErrnoStatus("posix_store: lock index for create");
  }
  Result<std::vector<std::pair<std::string, int>>> read = ReadIndex(/*take_lock=*/false);
  if (!read.ok() && read.status().code() == ErrorCode::kCorruptData) {
    // We hold the exclusive lock already, so recover without re-locking.
    RETURN_IF_ERROR(RecoverIndex(/*take_lock=*/false));
    read = ReadIndex(/*take_lock=*/false);
  }
  RETURN_IF_ERROR(read.status());
  std::vector<std::pair<std::string, int>> entries = std::move(*read);
  std::vector<bool> used(kPosixMaxSegments, false);
  for (const auto& [ename, slot] : entries) {
    if (ename == name) {
      return AlreadyExists("posix_store: segment '" + name + "' exists");
    }
    if (slot >= 0 && slot < static_cast<int>(kPosixMaxSegments)) {
      used[slot] = true;
    }
  }
  int slot = -1;
  for (uint32_t i = 0; i < kPosixMaxSegments; ++i) {
    if (!used[i]) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    return ResourceExhausted("posix_store: all segment slots in use");
  }
  Fd fd(::open(SegPath(name).c_str(), O_CREAT | O_RDWR | O_TRUNC, 0666));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: create segment file");
  }
  if (::ftruncate(fd.get(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("posix_store: size segment file");
  }
  Status fault = FaultRegistry::Global().Check("posix.create.seg");
  if (!fault.ok()) {
    if (!IsCrash(fault)) {
      ::unlink(SegPath(name).c_str());  // fail cleanly; a crash leaves the orphan file
    }
    return fault;
  }
  entries.emplace_back(name, slot);
  RETURN_IF_ERROR(WriteIndex(entries));
  slot_names_[slot] = name;
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  void* mapped = ::mmap(base, PageRound(size), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_FIXED, fd.get(), 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: map segment");
  }
  PosixSegment seg;
  seg.name = name;
  seg.slot = slot;
  seg.base = base;
  seg.size = size;
  return seg;
}

Result<PosixSegment> PosixStore::Attach(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  Fd fd(::open(SegPath(name).c_str(), O_RDWR));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: open segment '" + name + "'");
  }
  struct stat st;
  if (::fstat(fd.get(), &st) != 0) {
    return ErrnoStatus("posix_store: stat segment");
  }
  // The on-disk length is untrusted input: 0 means a torn creation, anything past
  // the slot would map over the *neighbouring* segment's fixed address.
  if (st.st_size <= 0 || static_cast<uint64_t>(st.st_size) > kPosixSlotBytes) {
    Bump(seg_rejected_);
    return CorruptData(StrFormat(
        "posix_store: segment '%s' is %lld bytes on disk (valid range is (0, %zu])",
        name.c_str(), static_cast<long long>(st.st_size), kPosixSlotBytes));
  }
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  void* mapped = ::mmap(base, PageRound(static_cast<size_t>(st.st_size)),
                        PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, fd.get(), 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: map segment");
  }
  PosixSegment seg;
  seg.name = name;
  seg.slot = slot;
  seg.base = base;
  seg.size = static_cast<size_t>(st.st_size);
  return seg;
}

Result<uint8_t*> PosixStore::AddressOf(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  return region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
}

Result<std::string> PosixStore::NameAt(const void* addr) {
  if (!InRegion(addr)) {
    return OutOfRange("posix_store: address outside the shared region");
  }
  size_t slot = (static_cast<const uint8_t*>(addr) - region_) / kPosixSlotBytes;
  if (slot_names_[slot].empty()) {
    RETURN_IF_ERROR(Refresh());
  }
  if (slot_names_[slot].empty()) {
    return NotFound("posix_store: no segment at that address");
  }
  return slot_names_[slot];
}

bool PosixStore::InRegion(const void* addr) const {
  const uint8_t* p = static_cast<const uint8_t*>(addr);
  return p >= region_ && p < region_ + kPosixRegionBytes;
}

Result<PosixSegment> PosixStore::AttachCovering(const void* addr) {
  // The SIGSEGV auto-attach path: a failure here surfaces as the handler
  // declining the fault (chained handler / default disposition), which is
  // exactly how an unreachable segment home must present to the guest.
  RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.io.attach.cover"));
  ASSIGN_OR_RETURN(std::string name, NameAt(addr));
  return Attach(name);
}

namespace {

// Side-file names are plain filenames — no traversal, no hidden host paths.
bool ValidSideFileName(const std::string& name) {
  return !name.empty() && name.size() <= kPosixMaxNameBytes &&
         name.find('/') == std::string::npos && name != "." && name != "..";
}

}  // namespace

Status PosixStore::WriteSideFile(const std::string& name, const std::vector<uint8_t>& bytes) {
  if (!ValidSideFileName(name)) {
    return InvalidArgument("posix_store: bad side-file name '" + name + "'");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_ + "/side", ec);
  if (ec) {
    return Internal("posix_store: mkdir " + dir_ + "/side: " + ec.message());
  }
  std::string content = StrFormat("#hemside %08x %zu\n", Crc32(bytes.data(), bytes.size()),
                                  bytes.size());
  content.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  std::string tmp = SidePath(name) + ".tmp";
  Fd fd(::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0666));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: write side file");
  }
  RETURN_IF_ERROR(WriteAll(fd.get(), content));
  // Same publication discipline as the index: checksum against torn content,
  // fsync + rename against torn publication.
  if (::fsync(fd.get()) != 0) {
    return ErrnoStatus("posix_store: fsync side file");
  }
  RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.side.write"));
  if (::rename(tmp.c_str(), SidePath(name).c_str()) != 0) {
    return ErrnoStatus("posix_store: rename side file");
  }
  return OkStatus();
}

Result<std::vector<uint8_t>> PosixStore::ReadSideFile(const std::string& name) {
  if (!ValidSideFileName(name)) {
    return InvalidArgument("posix_store: bad side-file name '" + name + "'");
  }
  Fd fd(::open(SidePath(name).c_str(), O_RDONLY));
  if (fd.get() < 0) {
    if (errno == ENOENT) {
      return NotFound("posix_store: no side file '" + name + "'");
    }
    return ErrnoStatus("posix_store: open side file");
  }
  ASSIGN_OR_RETURN(std::string content, ReadAll(fd.get()));
  // "#hemside <crc32-hex> <size>\n" + payload; every field is load-bearing.
  const std::string magic = "#hemside ";
  size_t eol = content.find('\n');
  if (content.rfind(magic, 0) != 0 || eol == std::string::npos) {
    return CorruptData("posix_store: side file '" + name + "' has no valid header");
  }
  uint32_t crc = 0;
  size_t size = 0;
  {
    unsigned parsed_crc = 0;
    unsigned long long parsed_size = 0;
    if (std::sscanf(content.c_str() + magic.size(), "%x %llu", &parsed_crc, &parsed_size) != 2) {
      return CorruptData("posix_store: side file '" + name + "' has a malformed header");
    }
    crc = static_cast<uint32_t>(parsed_crc);
    size = static_cast<size_t>(parsed_size);
  }
  std::string payload = content.substr(eol + 1);
  if (payload.size() != size) {
    return CorruptData(StrFormat("posix_store: side file '%s' promises %zu bytes, has %zu",
                                 name.c_str(), size, payload.size()));
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return CorruptData("posix_store: side file '" + name + "' checksum mismatch (torn write?)");
  }
  return std::vector<uint8_t>(payload.begin(), payload.end());
}

Status PosixStore::Detach(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  // Re-reserve PROT_NONE over the slot.
  void* mapped = ::mmap(base, kPosixSlotBytes, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: detach");
  }
  return OkStatus();
}

Status PosixStore::Remove(const std::string& name) {
  RETURN_IF_ERROR(Detach(name));
  Fd lock(::open(IndexPath().c_str(), O_RDWR));
  if (lock.get() < 0 || ::flock(lock.get(), LOCK_EX) != 0) {
    return ErrnoStatus("posix_store: lock index for remove");
  }
  ASSIGN_OR_RETURN(auto entries, ReadIndex(/*take_lock=*/false));
  std::vector<std::pair<std::string, int>> kept;
  for (const auto& entry : entries) {
    if (entry.first != name) {
      kept.push_back(entry);
    } else {
      slot_names_[entry.second] = "";
    }
  }
  RETURN_IF_ERROR(WriteIndex(kept));
  if (::unlink(SegPath(name).c_str()) != 0) {
    return ErrnoStatus("posix_store: unlink segment file");
  }
  return OkStatus();
}

Result<std::vector<std::string>> PosixStore::List() {
  RETURN_IF_ERROR(Refresh());
  std::vector<std::string> names;
  for (const std::string& name : slot_names_) {
    if (!name.empty()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace hemlock
