#include "src/posix/posix_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <cstring>

#include "src/base/strings.h"

namespace hemlock {

namespace {

// Fixed hint for the reserved region. On x86-64 Linux this part of the address space
// is reliably free; every process using the same registry maps here, giving the
// paper's uniform addressing. (A real deployment would negotiate; a fixed constant is
// the honest analogue of the paper's reserved 1 GB range.)
uint8_t* const kRegionHint = reinterpret_cast<uint8_t*>(0x7D0000000000ull);

size_t PageRound(size_t n) {
  size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return (n + page - 1) & ~(page - 1);
}

Status ErrnoStatus(const std::string& what) {
  return Internal(what + ": " + std::strerror(errno));
}

// RAII fd.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }

 private:
  int fd_;
};

}  // namespace

PosixStore::~PosixStore() {
  if (region_ != nullptr) {
    ::munmap(region_, kPosixRegionBytes);
  }
}

Result<std::unique_ptr<PosixStore>> PosixStore::Open(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir + "/seg", ec);
  if (ec) {
    return Internal("posix_store: mkdir " + dir + "/seg: " + ec.message());
  }
  // Reserve the region (PROT_NONE: touching an unattached address faults, which is
  // what the fault handler keys on). MAP_FIXED is deliberate: the range sits far from
  // any allocation glibc or the loader would make, and re-opening a store (including
  // in a forked child) must reset the region to the unattached state a fresh process
  // would see.
  void* region = ::mmap(kRegionHint, kPosixRegionBytes, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (region == MAP_FAILED) {
    return ErrnoStatus("posix_store: region reservation");
  }
  auto store = std::unique_ptr<PosixStore>(new PosixStore(dir, static_cast<uint8_t*>(region)));
  // Ensure the index exists, then scan it (the "boot-time scan").
  int fd = ::open(store->IndexPath().c_str(), O_CREAT | O_RDWR, 0666);
  if (fd < 0) {
    return ErrnoStatus("posix_store: create index");
  }
  ::close(fd);
  RETURN_IF_ERROR(store->Refresh());
  return store;
}

Result<std::vector<std::pair<std::string, int>>> PosixStore::ReadIndex(bool take_lock) {
  Fd fd(::open(IndexPath().c_str(), O_RDONLY));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: open index");
  }
  if (take_lock && ::flock(fd.get(), LOCK_SH) != 0) {
    return ErrnoStatus("posix_store: lock index");
  }
  std::string content;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd.get(), buf, sizeof(buf))) > 0) {
    content.append(buf, static_cast<size_t>(n));
  }
  std::vector<std::pair<std::string, int>> entries;
  for (const std::string& line : SplitString(content, '\n')) {
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      continue;
    }
    entries.emplace_back(line.substr(0, space), std::atoi(line.c_str() + space + 1));
  }
  return entries;
}

Status PosixStore::WriteIndex(const std::vector<std::pair<std::string, int>>& entries) {
  std::string tmp = IndexPath() + ".tmp";
  Fd fd(::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0666));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: write index");
  }
  std::string content;
  for (const auto& [name, slot] : entries) {
    content += name + " " + std::to_string(slot) + "\n";
  }
  if (::write(fd.get(), content.data(), content.size()) !=
      static_cast<ssize_t>(content.size())) {
    return ErrnoStatus("posix_store: write index");
  }
  if (::rename(tmp.c_str(), IndexPath().c_str()) != 0) {
    return ErrnoStatus("posix_store: rename index");
  }
  return OkStatus();
}

Status PosixStore::Refresh() {
  ASSIGN_OR_RETURN(auto entries, ReadIndex(/*take_lock=*/true));
  std::fill(slot_names_.begin(), slot_names_.end(), std::string());
  for (const auto& [name, slot] : entries) {
    if (slot >= 0 && slot < static_cast<int>(kPosixMaxSegments)) {
      slot_names_[slot] = name;
    }
  }
  return OkStatus();
}

Result<int> PosixStore::LookupSlot(const std::string& name) {
  for (int pass = 0; pass < 2; ++pass) {
    for (uint32_t i = 0; i < kPosixMaxSegments; ++i) {
      if (slot_names_[i] == name) {
        return static_cast<int>(i);
      }
    }
    RETURN_IF_ERROR(Refresh());  // maybe another process created it
  }
  return NotFound("posix_store: no segment named '" + name + "'");
}

Result<PosixSegment> PosixStore::Create(const std::string& name, size_t size) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return InvalidArgument("posix_store: bad segment name '" + name + "'");
  }
  if (size == 0 || size > kPosixSlotBytes) {
    return OutOfRange("posix_store: size must be in (0, 1 MB]");
  }
  // Serialize creations through an exclusive lock on the index.
  Fd lock(::open(IndexPath().c_str(), O_RDWR));
  if (lock.get() < 0 || ::flock(lock.get(), LOCK_EX) != 0) {
    return ErrnoStatus("posix_store: lock index for create");
  }
  ASSIGN_OR_RETURN(auto entries, ReadIndex(/*take_lock=*/false));
  std::vector<bool> used(kPosixMaxSegments, false);
  for (const auto& [ename, slot] : entries) {
    if (ename == name) {
      return AlreadyExists("posix_store: segment '" + name + "' exists");
    }
    if (slot >= 0 && slot < static_cast<int>(kPosixMaxSegments)) {
      used[slot] = true;
    }
  }
  int slot = -1;
  for (uint32_t i = 0; i < kPosixMaxSegments; ++i) {
    if (!used[i]) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    return ResourceExhausted("posix_store: all segment slots in use");
  }
  Fd fd(::open(SegPath(name).c_str(), O_CREAT | O_RDWR | O_TRUNC, 0666));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: create segment file");
  }
  if (::ftruncate(fd.get(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("posix_store: size segment file");
  }
  entries.emplace_back(name, slot);
  RETURN_IF_ERROR(WriteIndex(entries));
  slot_names_[slot] = name;
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  void* mapped = ::mmap(base, PageRound(size), PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_FIXED, fd.get(), 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: map segment");
  }
  PosixSegment seg;
  seg.name = name;
  seg.slot = slot;
  seg.base = base;
  seg.size = size;
  return seg;
}

Result<PosixSegment> PosixStore::Attach(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  Fd fd(::open(SegPath(name).c_str(), O_RDWR));
  if (fd.get() < 0) {
    return ErrnoStatus("posix_store: open segment '" + name + "'");
  }
  struct stat st;
  if (::fstat(fd.get(), &st) != 0) {
    return ErrnoStatus("posix_store: stat segment");
  }
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  void* mapped = ::mmap(base, PageRound(static_cast<size_t>(st.st_size)),
                        PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, fd.get(), 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: map segment");
  }
  PosixSegment seg;
  seg.name = name;
  seg.slot = slot;
  seg.base = base;
  seg.size = static_cast<size_t>(st.st_size);
  return seg;
}

Result<uint8_t*> PosixStore::AddressOf(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  return region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
}

Result<std::string> PosixStore::NameAt(const void* addr) {
  if (!InRegion(addr)) {
    return OutOfRange("posix_store: address outside the shared region");
  }
  size_t slot = (static_cast<const uint8_t*>(addr) - region_) / kPosixSlotBytes;
  if (slot_names_[slot].empty()) {
    RETURN_IF_ERROR(Refresh());
  }
  if (slot_names_[slot].empty()) {
    return NotFound("posix_store: no segment at that address");
  }
  return slot_names_[slot];
}

bool PosixStore::InRegion(const void* addr) const {
  const uint8_t* p = static_cast<const uint8_t*>(addr);
  return p >= region_ && p < region_ + kPosixRegionBytes;
}

Result<PosixSegment> PosixStore::AttachCovering(const void* addr) {
  ASSIGN_OR_RETURN(std::string name, NameAt(addr));
  return Attach(name);
}

Status PosixStore::Detach(const std::string& name) {
  ASSIGN_OR_RETURN(int slot, LookupSlot(name));
  uint8_t* base = region_ + static_cast<size_t>(slot) * kPosixSlotBytes;
  // Re-reserve PROT_NONE over the slot.
  void* mapped = ::mmap(base, kPosixSlotBytes, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
  if (mapped == MAP_FAILED) {
    return ErrnoStatus("posix_store: detach");
  }
  return OkStatus();
}

Status PosixStore::Remove(const std::string& name) {
  RETURN_IF_ERROR(Detach(name));
  Fd lock(::open(IndexPath().c_str(), O_RDWR));
  if (lock.get() < 0 || ::flock(lock.get(), LOCK_EX) != 0) {
    return ErrnoStatus("posix_store: lock index for remove");
  }
  ASSIGN_OR_RETURN(auto entries, ReadIndex(/*take_lock=*/false));
  std::vector<std::pair<std::string, int>> kept;
  for (const auto& entry : entries) {
    if (entry.first != name) {
      kept.push_back(entry);
    } else {
      slot_names_[entry.second] = "";
    }
  }
  RETURN_IF_ERROR(WriteIndex(kept));
  if (::unlink(SegPath(name).c_str()) != 0) {
    return ErrnoStatus("posix_store: unlink segment file");
  }
  return OkStatus();
}

Result<std::vector<std::string>> PosixStore::List() {
  RETURN_IF_ERROR(Refresh());
  std::vector<std::string> names;
  for (const std::string& name : slot_names_) {
    if (!name.empty()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace hemlock
