// The real-OS embodiment of Hemlock's shared file system (DESIGN.md substitution row
// "Real mmap/SIGSEGV on IRIX").
//
// A PosixStore is a registry directory of segment files plus a reserved virtual-address
// region, giving every segment a *fixed* attach address shared by all participating
// processes — the paper's globally consistent file <-> address mapping, built from the
// same POSIX facilities the paper used:
//   * the region is reserved with mmap(PROT_NONE, MAP_NORESERVE) at a fixed hint;
//   * each segment is a file in <dir>/seg/, attached with mmap(MAP_SHARED | MAP_FIXED)
//     at  region_base + slot * 1 MB  (the paper's inode-slot address rule);
//   * the name <-> slot index is a file in the registry, guarded by flock, scanned at
//     open time (the paper's boot-time scan building the kernel's linear table).
//
// PosixFaultHandler (posix_fault.h) adds the paper's map-on-pointer-follow behaviour
// with a real SIGSEGV handler.
#ifndef SRC_POSIX_POSIX_STORE_H_
#define SRC_POSIX_POSIX_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"

namespace hemlock {

// Mirrors the simulated SFS limits: 1024 slots of 1 MB.
inline constexpr uint32_t kPosixMaxSegments = 1024;
inline constexpr size_t kPosixSlotBytes = 1 << 20;
inline constexpr size_t kPosixRegionBytes = static_cast<size_t>(kPosixMaxSegments) * kPosixSlotBytes;
// Longest segment name the index will accept (a normal filename; anything longer
// is a sign of a corrupt or hostile index, not a real segment).
inline constexpr size_t kPosixMaxNameBytes = 255;

// Parses index-file content: an optional "#hemidx <crc32-hex> <count>\n" header
// (pre-checksum indexes have none) followed by one "name slot" line per segment.
// Every field is validated — checksum, promised entry count, name charset/length,
// slot range, duplicate names and duplicate slots — and any violation returns
// kCorruptData; nothing from the file is trusted. Exposed as a free function so the
// fuzz harness and tests can drive it without touching a real registry directory.
Result<std::vector<std::pair<std::string, int>>> ParsePosixIndex(const std::string& content);

struct PosixSegment {
  std::string name;
  int slot = -1;
  uint8_t* base = nullptr;
  size_t size = 0;  // current file size (mapped extent is page-rounded)
};

class PosixStore {
 public:
  ~PosixStore();

  PosixStore(const PosixStore&) = delete;
  PosixStore& operator=(const PosixStore&) = delete;

  // Opens (creating if needed) the registry at |dir| and reserves the address region.
  // Every process opening the same |dir| sees every segment at the same address.
  static Result<std::unique_ptr<PosixStore>> Open(const std::string& dir);

  // Creates a new segment of |size| bytes (<= 1 MB), attached read-write.
  Result<PosixSegment> Create(const std::string& name, size_t size);
  // Attaches an existing segment (growing the mapping to the current file size).
  Result<PosixSegment> Attach(const std::string& name);
  // The fixed address a segment (existing or not yet created) would occupy.
  Result<uint8_t*> AddressOf(const std::string& name);
  // Reverse mapping: an address anywhere inside a live segment -> its name.
  Result<std::string> NameAt(const void* addr);
  // True if |addr| lies inside the reserved region.
  bool InRegion(const void* addr) const;

  // Detaches (munmap back to PROT_NONE) without destroying the file.
  Status Detach(const std::string& name);
  // Destroys a segment: detaches, removes the file, frees the slot.
  Status Remove(const std::string& name);

  // All registered segment names (the paper's "peruse all of the segments in
  // existence" for manual garbage collection).
  Result<std::vector<std::string>> List();

  // Re-reads the on-disk index (another process may have created segments).
  Status Refresh();

  // Wires the store's robustness counters into |metrics| (null detaches):
  //   posix.index_rejected    index reads refused by ParsePosixIndex
  //   posix.index_recoveries  rebuilds of the index from the segment directory
  //   posix.io_retries        host reads/writes resumed after EINTR or a short write
  //   posix.segment_rejected  segment files refused for an untrustworthy on-disk size
  void SetMetrics(MetricsRegistry* metrics);

  // Side files: small named blobs riding next to the segment registry without
  // occupying one of the 1024 slots — the posix embodiment's home for ldl's
  // resolution manifest (src/link/manifest.h). Writes use the index's torn-write
  // discipline: "#hemside <crc32-hex> <size>\n" + payload to <file>.tmp, fsync,
  // rename. Reads verify the header and reject any mismatch as kCorruptData — a
  // salvageable side file is the caller's job (ldl just resolves cold).
  Status WriteSideFile(const std::string& name, const std::vector<uint8_t>& bytes);
  Result<std::vector<uint8_t>> ReadSideFile(const std::string& name);

  // Attaches the segment that covers |addr| (used by the SIGSEGV handler).
  // Returns the segment or an error when no file owns the address.
  Result<PosixSegment> AttachCovering(const void* addr);

  uint8_t* region_base() const { return region_; }
  const std::string& dir() const { return dir_; }

 private:
  PosixStore(std::string dir, uint8_t* region) : dir_(std::move(dir)), region_(region) {}

  std::string IndexPath() const { return dir_ + "/index"; }
  std::string SegPath(const std::string& name) const { return dir_ + "/seg/" + name; }
  std::string SidePath(const std::string& name) const { return dir_ + "/side/" + name; }
  Result<int> LookupSlot(const std::string& name);
  // Reads the index, verifying its "#hemidx <crc> <n>" header when present (indexes
  // written before the header existed are accepted as-is). Returns kCorruptData on a
  // checksum or entry-count mismatch. Takes a shared flock unless the caller already
  // holds the exclusive creation lock (flock is per open-file-description, so
  // re-locking from a second fd in the same process would self-deadlock).
  Result<std::vector<std::pair<std::string, int>>> ReadIndex(bool take_lock);
  // Writes checksummed index content to <index>.tmp, fsyncs, then renames over the
  // index, so a crash at any instant leaves either the old or the new index — never
  // a torn one.
  Status WriteIndex(const std::vector<std::pair<std::string, int>>& entries);
  // Rebuilds the index by scanning <dir>/seg/ (sorted names get slots 0..n-1) and
  // rewriting it. The fallback when ReadIndex reports corruption — segment files are
  // the ground truth, the index is a cache of them. Files whose on-disk size is 0 or
  // past the 1 MB slot are not trusted and stay out of the rebuilt index.
  Status RecoverIndex(bool take_lock);
  // Reads |fd| to EOF, resuming after EINTR (fault points posix.io.read /
  // posix.io.read.eintr).
  Result<std::string> ReadAll(int fd);
  // Writes all of |content|, resuming after EINTR and short writes (fault points
  // posix.io.write.eintr / posix.io.write.short / posix.io.enospc).
  Status WriteAll(int fd, const std::string& content);
  void Bump(uint64_t* counter) {
    if (counter != nullptr) {
      ++*counter;
    }
  }

  std::string dir_;
  uint8_t* region_;
  // slot -> name for currently known segments (rebuilt by Refresh).
  std::vector<std::string> slot_names_ = std::vector<std::string>(kPosixMaxSegments);
  // Robustness counters (null until SetMetrics).
  uint64_t* index_rejected_ = nullptr;
  uint64_t* index_recoveries_ = nullptr;
  uint64_t* io_retries_ = nullptr;
  uint64_t* seg_rejected_ = nullptr;
};

}  // namespace hemlock

#endif  // SRC_POSIX_POSIX_STORE_H_
