// The real SIGSEGV handler: map-on-pointer-follow on a stock POSIX system.
//
// When a process follows a pointer into the reserved region and the target segment is
// not yet attached, the access faults; the handler translates the address to a segment
// (the paper's new kernel call, here the registry index), attaches the segment at its
// fixed address, and returns — the kernel restarts the faulting instruction.
//
// For compatibility with programs that already catch SIGSEGV, the previous handler is
// chained when the fault cannot be resolved (the paper wraps signal() the same way).
//
// Signal-safety note: the handler calls open/fstat/mmap (async-signal-safe on Linux)
// and reads only data prepared before installation plus the index file; this mirrors
// the engineering compromise of the paper's user-level handler.
#ifndef SRC_POSIX_POSIX_FAULT_H_
#define SRC_POSIX_POSIX_FAULT_H_

#include "src/base/status.h"
#include "src/posix/posix_store.h"

namespace hemlock {

// Installs the process-wide handler serving |store| (which must outlive it).
// Counts of resolved attach-faults are available via AttachFaultCount().
Status InstallPosixFaultHandler(PosixStore* store);

// Removes the handler, restoring the previous disposition.
void RemovePosixFaultHandler();

// Number of faults the handler resolved by attaching a segment (this process).
uint64_t AttachFaultCount();

}  // namespace hemlock

#endif  // SRC_POSIX_POSIX_FAULT_H_
