#include "src/posix/posix_heap.h"

#include <cstring>
#include <new>

#include "src/base/faults.h"

namespace hemlock {

namespace {
constexpr uint32_t kMagic = 0x50414550;  // "PEAP"
constexpr uint64_t kMinPayload = 16;

uint64_t AlignUp16(uint64_t v) { return (v + 15) & ~15ull; }
}  // namespace

Result<PosixHeap> PosixHeap::Create(PosixStore* store, const std::string& name, size_t size) {
  ASSIGN_OR_RETURN(PosixSegment seg, store->Create(name, size));
  // A crash here leaves a zero-filled segment with no magic: the next Attach
  // rejects it as hostile input instead of walking a garbage free list.
  RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.io.heap.init"));
  PosixHeap heap(seg.base, seg.size);
  // The segment arrives zero-filled (fresh ftruncate); construct the header in place
  // (memset would trample the non-trivial ShmSpinLock).
  Header* h = new (seg.base) Header();
  h->magic = kMagic;
  h->limit = seg.size;
  uint64_t first = AlignUp16(sizeof(Header)) + sizeof(Block);
  Block* blk = heap.BlockAt(first);
  blk->size = seg.size - first;
  blk->next = 0;
  h->free_head = first;
  return heap;
}

Result<PosixHeap> PosixHeap::Attach(PosixStore* store, const std::string& name) {
  ASSIGN_OR_RETURN(PosixSegment seg, store->Attach(name));
  RETURN_IF_ERROR(FaultRegistry::Global().Check("posix.io.heap.attach"));
  PosixHeap heap(seg.base, seg.size);
  if (heap.header()->magic != kMagic) {
    return CorruptData("posix_heap: segment '" + name + "' is not a heap");
  }
  return heap;
}

Result<void*> PosixHeap::Alloc(size_t size) {
  uint64_t want = AlignUp16(size == 0 ? kMinPayload : size);
  Header* h = header();
  h->lock.Lock();
  uint64_t prev = 0;
  uint64_t cur = h->free_head;
  while (cur != 0) {
    Block* blk = BlockAt(cur);
    if (blk->size >= want) {
      uint64_t next_free = blk->next;
      uint64_t leftover = blk->size - want;
      if (leftover >= sizeof(Block) + kMinPayload) {
        uint64_t tail = cur + want + sizeof(Block);
        Block* tail_blk = BlockAt(tail);
        tail_blk->size = leftover - sizeof(Block);
        tail_blk->next = blk->next;
        next_free = tail;
        blk->size = want;
      }
      blk->next = 0;
      if (prev == 0) {
        h->free_head = next_free;
      } else {
        BlockAt(prev)->next = next_free;
      }
      h->lock.Unlock();
      return static_cast<void*>(base_ + cur);
    }
    prev = cur;
    cur = blk->next;
  }
  h->lock.Unlock();
  return ResourceExhausted("posix_heap: out of space");
}

Status PosixHeap::Free(void* ptr) {
  uint8_t* p = static_cast<uint8_t*>(ptr);
  if (p < base_ + sizeof(Header) + sizeof(Block) || p >= base_ + size_) {
    return InvalidArgument("posix_heap: bad free pointer");
  }
  uint64_t offset = static_cast<uint64_t>(p - base_);
  Header* h = header();
  h->lock.Lock();
  uint64_t prev = 0;
  uint64_t cur = h->free_head;
  while (cur != 0 && cur < offset) {
    prev = cur;
    cur = BlockAt(cur)->next;
  }
  if (cur == offset) {
    h->lock.Unlock();
    return FailedPrecondition("posix_heap: double free");
  }
  Block* blk = BlockAt(offset);
  blk->next = cur;
  if (prev == 0) {
    h->free_head = offset;
  } else {
    BlockAt(prev)->next = offset;
  }
  // Coalesce forward.
  if (blk->next != 0 && offset + blk->size + sizeof(Block) == blk->next) {
    Block* next_blk = BlockAt(blk->next);
    blk->size += sizeof(Block) + next_blk->size;
    blk->next = next_blk->next;
  }
  // Coalesce backward.
  if (prev != 0) {
    Block* prev_blk = BlockAt(prev);
    if (prev + prev_blk->size + sizeof(Block) == offset) {
      prev_blk->size += sizeof(Block) + blk->size;
      prev_blk->next = blk->next;
    }
  }
  h->lock.Unlock();
  return OkStatus();
}

size_t PosixHeap::FreeBytes() const {
  Header* h = header();
  h->lock.Lock();
  size_t total = 0;
  uint64_t cur = h->free_head;
  while (cur != 0) {
    Block* blk = BlockAt(cur);
    total += blk->size;
    cur = blk->next;
  }
  h->lock.Unlock();
  return total;
}

uint32_t PosixHeap::FreeBlockCount() const {
  Header* h = header();
  h->lock.Lock();
  uint32_t count = 0;
  uint64_t cur = h->free_head;
  while (cur != 0) {
    ++count;
    cur = BlockAt(cur)->next;
  }
  h->lock.Unlock();
  return count;
}

}  // namespace hemlock
