// Per-segment heap allocation over real shared memory (paper §5, "Dynamic Storage
// Management", in the POSIX embodiment).
//
// Because every participating process attaches a segment at the same address, blocks
// are handed out as ordinary pointers and linked structures built by one process are
// directly traversable by another. All heap metadata — including the lock — lives
// inside the segment, so any attacher can allocate and free.
#ifndef SRC_POSIX_POSIX_HEAP_H_
#define SRC_POSIX_POSIX_HEAP_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/status.h"
#include "src/posix/posix_store.h"

namespace hemlock {

// A spinlock living inside shared memory (paper §5 "Synchronization": user-space spin
// locks are a demonstrated fit for shared segments).
class ShmSpinLock {
 public:
  void Lock() {
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      // Spin; cross-process contention is short (allocator critical sections).
    }
  }
  void Unlock() { flag_.store(0, std::memory_order_release); }

 private:
  std::atomic<uint32_t> flag_{0};
};

class PosixHeap {
 public:
  // Formats a heap over a freshly created segment.
  static Result<PosixHeap> Create(PosixStore* store, const std::string& name, size_t size);
  // Attaches to an existing heap segment.
  static Result<PosixHeap> Attach(PosixStore* store, const std::string& name);

  // Allocates |size| bytes (16-byte aligned); nullptr-free API: errors are Status.
  Result<void*> Alloc(size_t size);
  Status Free(void* ptr);

  uint8_t* base() const { return base_; }
  size_t size() const { return size_; }
  size_t FreeBytes() const;
  uint32_t FreeBlockCount() const;

 private:
  struct Header {
    uint32_t magic = 0;
    ShmSpinLock lock;
    uint64_t free_head = 0;  // offset of first free block header, 0 = none
    uint64_t limit = 0;      // managed bytes
  };
  struct Block {
    uint64_t size;  // payload bytes
    uint64_t next;  // offset of next free block (free blocks only)
  };

  PosixHeap(uint8_t* base, size_t size) : base_(base), size_(size) {}

  Header* header() const { return reinterpret_cast<Header*>(base_); }
  Block* BlockAt(uint64_t offset) const {
    return reinterpret_cast<Block*>(base_ + offset - sizeof(Block));
  }

  uint8_t* base_;
  size_t size_;
};

}  // namespace hemlock

#endif  // SRC_POSIX_POSIX_HEAP_H_
