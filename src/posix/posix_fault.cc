#include "src/posix/posix_fault.h"

#include <csignal>
#include <cstring>

#include <atomic>

namespace hemlock {

namespace {

PosixStore* g_store = nullptr;
struct sigaction g_previous;
std::atomic<uint64_t> g_attach_faults{0};

void SegvHandler(int signo, siginfo_t* info, void* context) {
  if (g_store != nullptr && info != nullptr && g_store->InRegion(info->si_addr)) {
    // Attach the segment covering the address. AttachCovering re-reads the index if
    // needed, so segments created by other processes after our last Refresh resolve.
    Result<PosixSegment> seg = g_store->AttachCovering(info->si_addr);
    if (seg.ok()) {
      g_attach_faults.fetch_add(1, std::memory_order_relaxed);
      return;  // retry the instruction
    }
  }
  // Unresolvable: chain to the program's own handler (paper §2), or re-raise with
  // default disposition so the process dies with SIGSEGV as expected.
  if (g_previous.sa_flags & SA_SIGINFO) {
    if (g_previous.sa_sigaction != nullptr) {
      g_previous.sa_sigaction(signo, info, context);
      return;
    }
  } else if (g_previous.sa_handler != SIG_DFL && g_previous.sa_handler != SIG_IGN &&
             g_previous.sa_handler != nullptr) {
    g_previous.sa_handler(signo);
    return;
  }
  ::signal(SIGSEGV, SIG_DFL);
  ::raise(SIGSEGV);
}

}  // namespace

Status InstallPosixFaultHandler(PosixStore* store) {
  g_store = store;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = SegvHandler;
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGSEGV, &sa, &g_previous) != 0) {
    return Internal("posix_fault: sigaction failed");
  }
  // SIGBUS covers accesses past a truncated file's mapped extent.
  struct sigaction ignored;
  (void)::sigaction(SIGBUS, &sa, &ignored);
  return OkStatus();
}

void RemovePosixFaultHandler() {
  (void)::sigaction(SIGSEGV, &g_previous, nullptr);
  g_store = nullptr;
}

uint64_t AttachFaultCount() { return g_attach_faults.load(std::memory_order_relaxed); }

}  // namespace hemlock
