// SegmentServer — the segment home for distributed shared segments.
//
// Owns the *authoritative* SharedFs partition. Clients (simulator instances
// started with `hemrun --connect`) mount the partition over a socket, fetch
// pages on demand, flush dirty pages at release points, and take creation
// locks as wire leases. The server serializes every mutation (one poll loop,
// one partition), tracks page ownership in a CoherenceDirectory, and queues
// per-session invalidation records that ride back on the next reply.
//
// Lease safety over the wire reuses PR 2's machinery end to end: a session's
// locks are held by per-(session, pid) pseudo-pids, the partition's pid prober
// answers "is that session still connected", and a disconnect — clean Bye or a
// killed client — releases every lease and every cached-page claim the session
// held. A client dying mid-lease therefore leaves the partition SfsCheck-clean
// with the lease reclaimed, exactly like a dead local process.
#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/metrics.h"
#include "src/net/coherence.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/sfs/shared_fs.h"

namespace hemlock {

class SegmentServer {
 public:
  // Takes ownership of the authoritative partition (nullptr = a fresh one).
  explicit SegmentServer(std::unique_ptr<SharedFs> fs = nullptr);
  ~SegmentServer();

  SegmentServer(const SegmentServer&) = delete;
  SegmentServer& operator=(const SegmentServer&) = delete;

  // Binds the listening socket. Port 0 picks an ephemeral port; port() tells.
  Status Listen(const std::string& host, int port);
  int port() const { return listener_.port(); }

  // Serves one poll round: accepts pending connections, reads and answers one
  // frame per readable session, drops dead sessions. The building block for
  // both hemserve's main loop and the background thread.
  Status PollOnce(int timeout_ms);

  // Background serving for in-process tests: a thread looping PollOnce.
  Status Start();
  void Stop();

  // The authoritative partition. Only safe to touch while the server is not
  // serving (before Start / after Stop) — the poll loop owns it otherwise.
  SharedFs& sfs() { return *fs_; }
  MetricsRegistry& metrics() { return metrics_; }
  const CoherenceDirectory& directory() const { return directory_; }

  size_t SessionCount() const;

 private:
  struct Session {
    uint32_t id = 0;
    Conn conn;
    bool hello_done = false;
    std::vector<WireInval> pending;     // invalidations awaiting the next reply
    std::map<int32_t, int> pseudo_pids; // client pid -> server-side lock owner
  };

  // Dispatches one request; the reply (kReply or kError) carries the session's
  // drained invalidation queue either way.
  WireMsg Dispatch(Session& s, const WireMsg& req);
  WireMsg HandleMount(Session& s);
  WireMsg HandleFetch(Session& s, const WireMsg& req);
  WireMsg HandleFlush(Session& s, const WireMsg& req);

  // Queues |inv| for every session except |except| (0 = all), deduplicating
  // identical records already pending.
  void QueueInval(uint32_t except, const WireInval& inv);
  void QueueInvalTo(Session& s, const WireInval& inv);
  Session* FindSession(uint32_t id);

  int PseudoPid(Session& s, int32_t pid);
  void DropSession(uint32_t id, const char* why);

  WireMsg Ack(Session& s, WireOp reply_to);
  WireMsg Err(Session& s, WireOp reply_to, const Status& st);

  std::unique_ptr<SharedFs> fs_;
  Listener listener_;
  CoherenceDirectory directory_;
  MetricsRegistry metrics_;
  uint64_t* c_sessions_ = nullptr;
  uint64_t* c_disconnects_ = nullptr;
  uint64_t* c_rpcs_ = nullptr;
  uint64_t* c_pages_fetched_ = nullptr;
  uint64_t* c_pages_flushed_ = nullptr;
  uint64_t* c_invals_queued_ = nullptr;
  uint64_t* c_lock_waits_ = nullptr;
  uint64_t* c_leases_reclaimed_ = nullptr;

  mutable std::mutex mu_;  // guards sessions_ against SessionCount() from tests
  std::map<uint32_t, Session> sessions_;
  uint32_t next_session_ = 1;
  int next_pseudo_pid_ = 1 << 20;  // far above any simulated pid

  std::thread serve_thread_;
  std::atomic<bool> stop_{false};
  bool serving_ = false;
};

}  // namespace hemlock

#endif  // SRC_NET_SERVER_H_
