// SegmentServer — the segment home for distributed shared segments.
//
// Owns the *authoritative* SharedFs partition. Clients (simulator instances
// started with `hemrun --connect`) mount the partition over a socket, fetch
// pages on demand, flush dirty pages at release points, and take creation
// locks as wire leases. The server serializes every mutation (one poll loop,
// one partition), tracks page ownership in a CoherenceDirectory, and queues
// per-session invalidation records that ride back on the next reply.
//
// Fault tolerance (PR 10) treats a cut socket as weather, not death:
//
//   * A session whose socket fails is *detached*, not dropped: its leases,
//     pending invalidations, resume token, and at-most-once reply cache stay
//     put for `resume_grace_ms`, waiting for the client to dial back and
//     resume (HELLO with resume_session + resume_token). Only after the grace
//     expires is the session reaped — which is when leases are reclaimed and
//     `net.server.leases_reclaimed` counts them, exactly once.
//   * Every effectful request carries a per-session sequence number; the
//     server executes each seq at most once and replays the cached reply for
//     retransmits (`net.server.replays`), so a client retrying through packet
//     loss cannot double-create or double-write.
//   * With a journal attached (`hemserve --journal`), every successful
//     effectful request is appended after the reply-defining state change;
//     restart = load the `--state` checkpoint, restore the header's server
//     meta (sessions, tokens, coherence versions), and re-dispatch the record
//     tail. A SIGKILLed server comes back with the exact pre-kill state and
//     resumed clients reconverge through RESYNC. A standby server tails the
//     same journal and promotes itself on the first incoming connection.
//
// Lease safety over the wire reuses PR 2's machinery end to end: a session's
// locks are held by per-(session, pid) pseudo-pids, the partition's pid prober
// answers "is that session still around" (detached-but-in-grace counts as
// around), and a reaped or cleanly departed session releases every lease and
// cached-page claim it held.
#ifndef SRC_NET_SERVER_H_
#define SRC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/base/metrics.h"
#include "src/net/coherence.h"
#include "src/net/journal.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/sfs/shared_fs.h"

namespace hemlock {

struct SegmentServerOptions {
  // Per-socket recv deadline — a peer that stops mid-frame must not wedge the
  // poll loop (was a hardcoded 10 s before the flags existed).
  int64_t recv_timeout_ms = 10'000;
  // How long a detached session stays resumable before its leases are
  // reclaimed. 0 reaps on the next poll round (the PR 8 behavior).
  int64_t resume_grace_ms = 10'000;
  // Durable restart: the SFS checkpoint image and the mutation journal.
  // Both empty = the in-memory-only PR 8 behavior.
  std::string state_path;
  std::string journal_path;
  // Auto-checkpoint after this many journal records (0 = only at shutdown).
  uint64_t checkpoint_every = 0;
  // Warm failover: tail the journal read-only and promote on the first
  // incoming connection instead of serving immediately.
  bool standby = false;
};

class SegmentServer {
 public:
  // Takes ownership of the authoritative partition (nullptr = a fresh one).
  explicit SegmentServer(std::unique_ptr<SharedFs> fs = nullptr,
                         SegmentServerOptions options = {});
  ~SegmentServer();

  SegmentServer(const SegmentServer&) = delete;
  SegmentServer& operator=(const SegmentServer&) = delete;

  // Journal mode: replays an existing journal (restoring sessions, resume
  // tokens, coherence versions, and every post-checkpoint mutation on top of
  // the already-loaded partition), then — unless standby — opens it for
  // appending. Call after construction, before Listen.
  Status AttachJournal();

  // Writes the SFS image to options.state_path (tmp + rename) and rewrites
  // the journal as a fresh checkpoint. The journaled-mode shutdown and the
  // `checkpoint_every` trigger both land here.
  Status Checkpoint();

  // Binds the listening socket. Port 0 picks an ephemeral port; port() tells.
  Status Listen(const std::string& host, int port);
  int port() const { return listener_.port(); }

  // Serves one poll round: accepts pending connections, reads and answers one
  // frame per readable session, detaches dead sockets, reaps sessions whose
  // resume grace expired. In standby mode: tails the journal and waits for
  // the first connection, then promotes. The building block for both
  // hemserve's main loop and the background thread.
  Status PollOnce(int timeout_ms);

  // Background serving for in-process tests: a thread looping PollOnce.
  Status Start();
  void Stop();

  // The authoritative partition. Only safe to touch while the server is not
  // serving (before Start / after Stop) — the poll loop owns it otherwise.
  SharedFs& sfs() { return *fs_; }
  MetricsRegistry& metrics() { return metrics_; }
  const CoherenceDirectory& directory() const { return directory_; }
  bool standby() const { return standby_; }

  // Live (attached) sessions; detached-in-grace sessions are not counted.
  size_t SessionCount() const;
  // Attached + detached-awaiting-resume.
  size_t TotalSessionCount() const;

 private:
  struct Session {
    uint32_t id = 0;
    Conn conn;
    bool hello_done = false;
    bool attached = true;
    std::chrono::steady_clock::time_point detached_at{};
    uint64_t token = 0;   // resume token, proven by a returning client
    uint32_t epoch = 0;   // bumps on every successful resume
    uint32_t last_seq = 0;  // highest request seq executed
    bool has_cached = false;
    WireMsg cached_reply;  // at-most-once: last effectful reply, replayable
    std::vector<WireInval> pending;     // invalidations awaiting the next reply
    std::map<int32_t, int> pseudo_pids; // client pid -> server-side lock owner
  };

  // Seq dedupe + dispatch + journaling for one non-hello request.
  WireMsg ExecuteTracked(Session& s, const WireMsg& req);
  // Dispatches one request; the reply (kReply or kError) carries the session's
  // drained invalidation queue either way.
  WireMsg Dispatch(Session& s, const WireMsg& req);
  WireMsg HandleMount(Session& s);
  WireMsg HandleFetch(Session& s, const WireMsg& req);
  WireMsg HandleFlush(Session& s, const WireMsg& req);
  WireMsg HandleResync(Session& s, const WireMsg& req);
  // The HELLO handshake happens outside Dispatch: a resume merges the
  // accepting placeholder session into the detached one it returns to.
  void HandleHello(uint32_t provisional_id, const WireMsg& req);

  // Queues |inv| for every session except |except| (0 = all), deduplicating
  // identical records already pending.
  void QueueInval(uint32_t except, const WireInval& inv);
  void QueueInvalTo(Session& s, const WireInval& inv);
  Session* FindSession(uint32_t id);

  int PseudoPid(Session& s, int32_t pid);
  // Socket loss: keep the session resumable, note when the grace clock began.
  void Detach(uint32_t id, const char* why);
  // Final departure: releases leases (counted once), forgets the session.
  void DropSession(uint32_t id, const char* why);
  void ReapExpiredSessions();

  uint64_t NewToken();
  void JournalAppend(const JournalRecord& rec);
  std::vector<uint8_t> EncodeMeta() const;
  Status RestoreMeta(const std::vector<uint8_t>& bytes);
  void ReplayRecords(const std::vector<JournalRecord>& records);
  // Standby: pick up what the primary wrote since the last look. A changed
  // header nonce means the primary checkpointed — full reload.
  Status TailJournal();
  Status ReloadStateFromDisk();
  void InstallPidProber();

  WireMsg Ack(Session& s, WireOp reply_to);
  WireMsg Err(Session& s, WireOp reply_to, const Status& st);

  std::unique_ptr<SharedFs> fs_;
  SegmentServerOptions options_;
  Listener listener_;
  CoherenceDirectory directory_;
  Journal journal_;
  bool standby_ = false;
  bool replaying_ = false;  // suppress journaling while re-dispatching records
  uint64_t journal_nonce_seen_ = 0;   // standby: header identity last tailed
  size_t journal_records_seen_ = 0;   // standby: records replayed so far
  MetricsRegistry metrics_;
  uint64_t* c_sessions_ = nullptr;
  uint64_t* c_disconnects_ = nullptr;
  uint64_t* c_rpcs_ = nullptr;
  uint64_t* c_pages_fetched_ = nullptr;
  uint64_t* c_pages_flushed_ = nullptr;
  uint64_t* c_invals_queued_ = nullptr;
  uint64_t* c_lock_waits_ = nullptr;
  uint64_t* c_leases_reclaimed_ = nullptr;
  uint64_t* c_resumes_ = nullptr;
  uint64_t* c_replays_ = nullptr;
  uint64_t* c_journal_records_ = nullptr;
  uint64_t* c_checkpoints_ = nullptr;

  mutable std::mutex mu_;  // guards sessions_ against SessionCount() from tests
  std::map<uint32_t, Session> sessions_;
  uint32_t next_session_ = 1;
  int next_pseudo_pid_ = 1 << 20;  // far above any simulated pid
  uint64_t token_seq_ = 0;

  std::thread serve_thread_;
  std::atomic<bool> stop_{false};
  bool serving_ = false;
};

}  // namespace hemlock

#endif  // SRC_NET_SERVER_H_
