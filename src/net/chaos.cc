#include "src/net/chaos.h"

#include <cstdlib>

#include "src/base/faults.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {

// One registry point per action kind, consulted on every frame so a point
// armed with `--faults net.chaos.drop=error@3` fires on exactly the third
// frame regardless of the seeded schedule.
constexpr const char* kPointNames[] = {
    nullptr, "net.chaos.drop", "net.chaos.delay", "net.chaos.dup",
    "net.chaos.trunc", "net.chaos.sever",
};

}  // namespace

const char* ChaosActionName(ChaosAction action) {
  switch (action) {
    case ChaosAction::kNone: return "none";
    case ChaosAction::kDrop: return "drop";
    case ChaosAction::kDelay: return "delay";
    case ChaosAction::kDup: return "dup";
    case ChaosAction::kTrunc: return "trunc";
    case ChaosAction::kSever: return "sever";
  }
  return "unknown";
}

ChaosEngine& ChaosEngine::Global() {
  static ChaosEngine* engine = new ChaosEngine();
  return *engine;
}

Status ChaosEngine::Configure(const std::string& spec) {
  Disable();
  if (spec.empty()) {
    return OkStatus();
  }
  std::string body = spec;
  size_t colon = body.rfind(':');
  if (colon != std::string::npos && colon + 1 < body.size() &&
      body.find_first_not_of("0123456789", colon + 1) == std::string::npos) {
    seed_ = std::strtoull(body.c_str() + colon + 1, nullptr, 10);
    body = body.substr(0, colon);
  }
  for (const std::string& part : SplitString(body, ',')) {
    size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
      return InvalidArgument("chaos: want kind=K, got '" + part + "'");
    }
    std::string kind = part.substr(0, eq);
    char* end = nullptr;
    unsigned long k = std::strtoul(part.c_str() + eq + 1, &end, 10);
    if (end == nullptr || *end != '\0') {
      return InvalidArgument("chaos: bad frame period in '" + part + "'");
    }
    uint32_t period = static_cast<uint32_t>(k);
    if (kind == "drop") {
      drop_ = period;
    } else if (kind == "delay") {
      delay_ = period;
    } else if (kind == "dup") {
      dup_ = period;
    } else if (kind == "trunc") {
      trunc_ = period;
    } else if (kind == "sever") {
      sever_ = period;
    } else {
      return InvalidArgument("chaos: unknown kind '" + kind + "'");
    }
  }
  scheduled_ = drop_ != 0 || delay_ != 0 || dup_ != 0 || trunc_ != 0 || sever_ != 0;
  return OkStatus();
}

void ChaosEngine::Disable() {
  scheduled_ = false;
  drop_ = delay_ = dup_ = trunc_ = sever_ = 0;
  seed_ = 0;
  frame_.store(0, std::memory_order_relaxed);
}

ChaosAction ChaosEngine::ScheduledAction(uint64_t frame) const {
  // One hash per frame; each kind reads its own slice so the kinds fire
  // independently. Severity order decides ties (a frame that would both drop
  // and delay just drops).
  uint64_t le[1] = {frame};
  uint64_t h = Fnv1a64(le, sizeof(le), kFnv1a64Seed ^ seed_);
  if (sever_ != 0 && h % sever_ == 0) {
    return ChaosAction::kSever;
  }
  if (trunc_ != 0 && (h >> 13) % trunc_ == 0) {
    return ChaosAction::kTrunc;
  }
  if (drop_ != 0 && (h >> 26) % drop_ == 0) {
    return ChaosAction::kDrop;
  }
  if (dup_ != 0 && (h >> 39) % dup_ == 0) {
    return ChaosAction::kDup;
  }
  if (delay_ != 0 && (h >> 52) % delay_ == 0) {
    return ChaosAction::kDelay;
  }
  return ChaosAction::kNone;
}

ChaosAction ChaosEngine::NextSendAction() {
  // Armed fault points outrank the schedule: a Check that fires names the
  // exact frame the test wants broken (the mode byte is irrelevant here —
  // the point name *is* the action).
  for (int kind = 1; kind <= 5; ++kind) {
    if (!FaultRegistry::Global().Check(kPointNames[kind]).ok()) {
      return static_cast<ChaosAction>(kind);
    }
  }
  if (!scheduled_) {
    return ChaosAction::kNone;
  }
  uint64_t frame = frame_.fetch_add(1, std::memory_order_relaxed) + 1;
  return ScheduledAction(frame);
}

}  // namespace hemlock
