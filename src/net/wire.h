// The hemnet wire format — length-prefixed, versioned frames for the segment-
// coherence protocol (docs/DISTRIBUTED.md).
//
// A frame is a U32 payload length followed by the payload; the payload is a U8
// opcode followed by op-specific fields. Like the five other external formats
// (HOF/HXE/HML/SFS image/posix index) the decoder is *validating*: every count
// runs through ByteReader::Count, every semantic field (inode numbers, page
// indexes, node types) is range-checked at parse time, and trailing garbage is
// rejected with ExpectEnd — a hostile peer gets kCorruptData, never a crash or
// an allocation bomb. The version lives in the HELLO handshake; a mismatch is
// kUnsupportedVersion (well-formed, but a protocol we don't speak).
//
// Encoding is canonical: EncodePayload(DecodePayload(x)) == x for every payload
// the decoder accepts, which is the property the fuzz_roundtrip target checks.
//
// Every server reply carries the session's pending invalidation records ahead
// of the reply body; the client applies them before it looks at the body, so
// the replica observes the server's mutations in the server's serialization
// order (the property that keeps inode allocation in lockstep).
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/layout.h"
#include "src/base/status.h"

namespace hemlock {

inline constexpr uint32_t kWireMagic = 0x48454D4Eu;  // "HEMN"
// v2 (fault tolerance): per-session request sequence numbers on every
// non-hello request, a resume token + session epoch in the HELLO handshake,
// page versions on every page record, and the RESYNC op. v1 frames still
// *decode* (the hello payload is a strict prefix of v2's), so a v1 peer is
// refused at dispatch with kUnsupportedVersion instead of a parse error.
inline constexpr uint16_t kWireVersion = 2;
// A whole 1 MB file (256 pages) plus framing fits comfortably; anything larger
// in a length prefix is hostile.
inline constexpr uint32_t kMaxWirePayload = 4u << 20;
inline constexpr uint32_t kWirePagesPerFile = kSfsMaxFileBytes / kPageSize;
inline constexpr uint32_t kMaxWirePath = 4096;

enum class WireOp : uint8_t {
  // Requests (client -> server).
  kHello = 1,         // magic + version gate; answered with kReply{session}
  kMount = 2,         // metadata snapshot of the whole partition (no page data)
  kFetch = 3,         // demand-fetch a set of pages of one inode
  kFlush = 4,         // write back dirty pages + the logical size (ownership upgrade)
  kCreate = 5,
  kMkdir = 6,
  kSymlink = 7,
  kUnlink = 8,
  kTruncate = 9,
  kWrite = 10,        // kernel-side write-through (ldl/compiler file writes)
  kLock = 11,         // wire lease: the server-side creation lock
  kUnlock = 12,
  kReleaseLocks = 13, // process exit: release every lease held for this pid
  kPending = 14,      // creation-pending marker
  kCheck = 15,        // run SfsCheck on the authoritative partition (tests/admin)
  kStats = 16,        // server-side net.* counters
  kBye = 17,          // clean disconnect (after a final flush)
  kResync = 18,       // after a resume: revalidate cached pages by version
  // Replies (server -> client).
  kReply = 64,
  kError = 65,
};

enum class WireInvalKind : uint8_t {
  kPage = 1,     // |ino|, |value| = page index: another node wrote this page
  kSize = 2,     // |ino|, |value| = new logical size
  kPending = 3,  // |ino|, |value| = 0/1 creation-pending marker
  kCreated = 4,  // |ino|, |node_type|, |path|, |target|: new node on the partition
  kUnlinked = 5, // |ino|, |path|: node destroyed
};

struct WireInval {
  WireInvalKind kind = WireInvalKind::kPage;
  uint32_t ino = 0;
  uint32_t value = 0;
  uint8_t node_type = 0;
  std::string path;
  std::string target;

  bool operator==(const WireInval&) const = default;
};

// One page of segment data. Empty |bytes| means "entirely zero" — the common
// case for freshly created segments, so a cold mount of an empty region costs
// a few bytes per page instead of 4 KB. |version| is the CoherenceDirectory's
// monotonic write version: the client remembers it per cached page and replays
// it in a RESYNC claim after a reconnect, so revalidation costs a u64 compare
// instead of a page transfer. Flush/write acks carry version-only records
// (empty bytes) telling the writer the new version of the pages it just owned.
struct WirePage {
  uint32_t index = 0;
  uint64_t version = 0;
  std::vector<uint8_t> bytes;

  bool operator==(const WirePage&) const = default;
};

// One RESYNC claim: "my replica holds |ino| page |page| at |version|". The
// sentinel page kWireSizeClaim claims the inode itself (|version| = the
// believed logical size); the server answers every stale or unknown claim
// with the matching invalidation record, and reports inodes the client never
// claimed as kCreated — reconvergence without refetching the world.
inline constexpr uint32_t kWireSizeClaim = 0xFFFFFFFFu;

struct WireClaim {
  uint32_t ino = 0;
  uint32_t page = 0;
  uint64_t version = 0;

  bool operator==(const WireClaim&) const = default;
};

// One node of the metadata snapshot (kMount reply).
struct WireNode {
  uint32_t ino = 0;
  uint8_t type = 0;  // SfsNodeType
  std::string path;
  uint32_t parent = 0;
  uint32_t size = 0;
  uint8_t pending = 0;
  std::string target;  // symlink target

  bool operator==(const WireNode&) const = default;
};

// A decoded payload. One struct covers every opcode; unused fields stay at
// their defaults and are neither encoded nor decoded for ops that do not carry
// them (the encoder and decoder agree field by field, which is what keeps the
// encoding canonical).
struct WireMsg {
  WireOp op = WireOp::kHello;

  // kReply/kError: the request opcode this answers. Replies are self-describing
  // so the decoder needs no out-of-band context (and the fuzzer can hit every
  // reply shape from raw bytes).
  uint8_t reply_to = 0;

  uint16_t version = kWireVersion;  // kHello
  uint32_t session = 0;             // kHello reply
  // Per-session request sequence number (every request except kHello) echoed
  // by the matching reply. Effectful ops are applied at most once per seq by
  // the server; a stale echo tells the client to drop a duplicated frame.
  uint32_t seq = 0;
  uint32_t resume_session = 0;      // kHello: session id to resume (0 = fresh)
  uint64_t resume_token = 0;        // kHello: proof of ownership of that session
  uint64_t token = 0;               // kHello reply: resume token for this session
  uint32_t epoch = 0;               // kHello reply: session epoch (bumps per resume)
  uint8_t resumed = 0;              // kHello reply: 1 = the old session survived
  uint8_t replayed = 0;             // any reply: 1 = served from the at-most-once cache
  uint32_t ino = 0;
  int32_t pid = 0;                  // kLock/kUnlock/kReleaseLocks
  uint32_t offset = 0;              // kWrite
  uint32_t size = 0;                // kTruncate/kFlush/kFetch reply
  uint8_t flag = 0;                 // kPending marker / kCheck reply "clean"
  std::string path;                 // kCreate/kMkdir/kSymlink/kUnlink
  std::string target;               // kSymlink
  std::string text;                 // kCheck reply: fsck report
  std::vector<uint8_t> bytes;       // kWrite payload
  std::vector<uint32_t> page_list;  // kFetch request: wanted page indexes
  std::vector<WirePage> pages;      // kFetch reply / kFlush request / flush-write acks
  std::vector<WireClaim> claims;    // kResync request
  std::vector<WireNode> nodes;      // kMount reply
  std::vector<WireInval> invals;    // every reply
  uint8_t err_code = 0;             // kError: ErrorCode as on-the-wire byte
  std::string err_msg;              // kError
  std::vector<std::pair<std::string, uint64_t>> stats;  // kStats reply

  bool operator==(const WireMsg&) const = default;
};

// Single invalidation record <-> bytes: the hemserve checkpoint persists each
// session's pending queue through the same validated encoding replies use.
void EncodeInvalRecord(ByteWriter* w, const WireInval& inv);
Status DecodeInvalRecord(ByteReader* r, WireInval* inv);

// Payload <-> bytes (no frame length prefix).
std::vector<uint8_t> EncodePayload(const WireMsg& msg);
Result<WireMsg> DecodePayload(const uint8_t* data, size_t size);
inline Result<WireMsg> DecodePayload(const std::vector<uint8_t>& b) {
  return DecodePayload(b.data(), b.size());
}

// Whole frame (U32 length + payload) for one-shot buffers; the transport
// streams the two parts itself.
std::vector<uint8_t> EncodeFrame(const WireMsg& msg);

// ErrorCode <-> wire byte. Unknown bytes decode to kInternal rather than
// rejecting the frame: a future peer may speak codes we do not know.
uint8_t WireErrorCode(ErrorCode code);
ErrorCode ErrorCodeFromWire(uint8_t byte);

// Builds a kError reply from a Status (never from OkStatus).
WireMsg WireErrorFrom(const Status& st);
// Reconstructs the Status carried by a kError reply.
Status StatusFromWire(const WireMsg& err);

}  // namespace hemlock

#endif  // SRC_NET_WIRE_H_
