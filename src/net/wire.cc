#include "src/net/wire.h"

#include "src/base/strings.h"

namespace hemlock {

namespace {

// Caps for attacker-controlled counts. Each is the structural maximum the
// protocol can ever need, so a larger count is corruption by definition.
constexpr uint32_t kMaxNodes = kSfsMaxInodes;
constexpr uint32_t kMaxInvals = 1u << 20;
constexpr uint32_t kMaxStats = 4096;
constexpr uint32_t kMaxStatName = 256;

bool ValidIno(uint32_t ino) { return ino >= 1 && ino <= kSfsMaxInodes; }
// Snapshot/inval nodes: root (ino 1) is fixed on every partition and never
// travels, so node records must name inodes 2..1024.
bool ValidNodeIno(uint32_t ino) { return ino >= 2 && ino <= kSfsMaxInodes; }
bool ValidNodeType(uint8_t type) { return type >= 1 && type <= 3; }

void EncodeInval(ByteWriter* w, const WireInval& inv) {
  w->U8(static_cast<uint8_t>(inv.kind));
  w->U32(inv.ino);
  switch (inv.kind) {
    case WireInvalKind::kPage:
    case WireInvalKind::kSize:
    case WireInvalKind::kPending:
      w->U32(inv.value);
      break;
    case WireInvalKind::kCreated:
      w->U8(inv.node_type);
      w->Str(inv.path);
      w->Str(inv.target);
      break;
    case WireInvalKind::kUnlinked:
      w->Str(inv.path);
      break;
  }
}

Status DecodeInval(ByteReader* r, WireInval* inv) {
  ASSIGN_OR_RETURN(uint8_t kind, r->U8());
  if (kind < 1 || kind > 5) {
    return CorruptData(StrFormat("wire: bad invalidation kind %u", kind));
  }
  inv->kind = static_cast<WireInvalKind>(kind);
  ASSIGN_OR_RETURN(inv->ino, r->U32());
  switch (inv->kind) {
    case WireInvalKind::kPage: {
      ASSIGN_OR_RETURN(inv->value, r->U32());
      if (!ValidIno(inv->ino) || inv->value >= kWirePagesPerFile) {
        return CorruptData("wire: page invalidation out of range");
      }
      break;
    }
    case WireInvalKind::kSize: {
      ASSIGN_OR_RETURN(inv->value, r->U32());
      if (!ValidIno(inv->ino) || inv->value > kSfsMaxFileBytes) {
        return CorruptData("wire: size invalidation out of range");
      }
      break;
    }
    case WireInvalKind::kPending: {
      ASSIGN_OR_RETURN(inv->value, r->U32());
      if (!ValidIno(inv->ino) || inv->value > 1) {
        return CorruptData("wire: pending invalidation out of range");
      }
      break;
    }
    case WireInvalKind::kCreated: {
      ASSIGN_OR_RETURN(inv->node_type, r->U8());
      ASSIGN_OR_RETURN(inv->path, r->Str());
      ASSIGN_OR_RETURN(inv->target, r->Str());
      if (!ValidNodeIno(inv->ino) || !ValidNodeType(inv->node_type) ||
          inv->path.empty() || inv->path.size() > kMaxWirePath ||
          inv->target.size() > kMaxWirePath) {
        return CorruptData("wire: created-node invalidation malformed");
      }
      break;
    }
    case WireInvalKind::kUnlinked: {
      ASSIGN_OR_RETURN(inv->path, r->Str());
      if (!ValidNodeIno(inv->ino) || inv->path.empty() ||
          inv->path.size() > kMaxWirePath) {
        return CorruptData("wire: unlinked-node invalidation malformed");
      }
      break;
    }
  }
  return OkStatus();
}

void EncodePage(ByteWriter* w, const WirePage& page) {
  w->U32(page.index);
  w->U64(page.version);
  w->Bytes(page.bytes);
}

Status DecodePage(ByteReader* r, WirePage* page) {
  ASSIGN_OR_RETURN(page->index, r->U32());
  ASSIGN_OR_RETURN(page->version, r->U64());
  ASSIGN_OR_RETURN(page->bytes, r->Bytes());
  if (page->index >= kWirePagesPerFile) {
    return CorruptData(StrFormat("wire: page index %u beyond the 1 MB file", page->index));
  }
  if (page->bytes.size() > kPageSize) {
    return CorruptData("wire: page payload larger than a page");
  }
  return OkStatus();
}

void EncodeClaim(ByteWriter* w, const WireClaim& claim) {
  w->U32(claim.ino);
  w->U32(claim.page);
  w->U64(claim.version);
}

Status DecodeClaim(ByteReader* r, WireClaim* claim) {
  ASSIGN_OR_RETURN(claim->ino, r->U32());
  ASSIGN_OR_RETURN(claim->page, r->U32());
  ASSIGN_OR_RETURN(claim->version, r->U64());
  if (!ValidIno(claim->ino)) {
    return CorruptData("wire: resync claim names an invalid inode");
  }
  if (claim->page >= kWirePagesPerFile && claim->page != kWireSizeClaim) {
    return CorruptData("wire: resync claim page out of range");
  }
  if (claim->page == kWireSizeClaim && claim->version > kSfsMaxFileBytes) {
    return CorruptData("wire: resync size claim out of range");
  }
  return OkStatus();
}

void EncodeNode(ByteWriter* w, const WireNode& node) {
  w->U32(node.ino);
  w->U8(node.type);
  w->Str(node.path);
  w->U32(node.parent);
  w->U32(node.size);
  w->U8(node.pending);
  w->Str(node.target);
}

Status DecodeNode(ByteReader* r, WireNode* node) {
  ASSIGN_OR_RETURN(node->ino, r->U32());
  ASSIGN_OR_RETURN(node->type, r->U8());
  ASSIGN_OR_RETURN(node->path, r->Str());
  ASSIGN_OR_RETURN(node->parent, r->U32());
  ASSIGN_OR_RETURN(node->size, r->U32());
  ASSIGN_OR_RETURN(node->pending, r->U8());
  ASSIGN_OR_RETURN(node->target, r->Str());
  if (!ValidNodeIno(node->ino) || !ValidNodeType(node->type) ||
      !ValidIno(node->parent) || node->size > kSfsMaxFileBytes ||
      node->pending > 1 || node->path.empty() || node->path.size() > kMaxWirePath ||
      node->path[0] != '/' || node->target.size() > kMaxWirePath) {
    return CorruptData(StrFormat("wire: snapshot node for inode %u malformed", node->ino));
  }
  return OkStatus();
}

// --- Request bodies ---

void EncodeRequestBody(ByteWriter* w, const WireMsg& m) {
  if (m.op != WireOp::kHello && m.op != WireOp::kReply && m.op != WireOp::kError) {
    // Every non-hello request carries its per-session sequence number; the
    // reply echoes it, which is what makes retransmits and duplicated frames
    // safe to sort out on both ends.
    w->U32(m.seq);
  }
  switch (m.op) {
    case WireOp::kHello:
      w->U32(kWireMagic);
      w->U16(m.version);
      if (m.version >= 2) {
        w->U32(m.resume_session);
        w->U64(m.resume_token);
      }
      break;
    case WireOp::kMount:
    case WireOp::kCheck:
    case WireOp::kStats:
    case WireOp::kBye:
      break;
    case WireOp::kResync:
      w->U32(static_cast<uint32_t>(m.claims.size()));
      for (const WireClaim& c : m.claims) {
        EncodeClaim(w, c);
      }
      break;
    case WireOp::kFetch:
      w->U32(m.ino);
      w->U32(static_cast<uint32_t>(m.page_list.size()));
      for (uint32_t idx : m.page_list) {
        w->U32(idx);
      }
      break;
    case WireOp::kFlush:
      w->U32(m.ino);
      w->U32(m.size);
      w->U32(static_cast<uint32_t>(m.pages.size()));
      for (const WirePage& p : m.pages) {
        EncodePage(w, p);
      }
      break;
    case WireOp::kCreate:
    case WireOp::kMkdir:
      w->Str(m.path);
      break;
    case WireOp::kSymlink:
      w->Str(m.path);
      w->Str(m.target);
      break;
    case WireOp::kUnlink:
      w->Str(m.path);
      w->U8(m.flag);
      break;
    case WireOp::kTruncate:
      w->U32(m.ino);
      w->U32(m.size);
      break;
    case WireOp::kWrite:
      w->U32(m.ino);
      w->U32(m.offset);
      w->Bytes(m.bytes);
      break;
    case WireOp::kLock:
    case WireOp::kUnlock:
      w->U32(m.ino);
      w->I32(m.pid);
      break;
    case WireOp::kPending:
      w->U32(m.ino);
      w->U8(m.flag);
      break;
    case WireOp::kReleaseLocks:
      w->I32(m.pid);
      break;
    case WireOp::kReply:
    case WireOp::kError:
      break;  // handled by EncodeReplyBody
  }
}

Status DecodePathField(ByteReader* r, std::string* path) {
  ASSIGN_OR_RETURN(*path, r->Str());
  if (path->empty() || path->size() > kMaxWirePath || (*path)[0] != '/') {
    return CorruptData("wire: malformed partition path");
  }
  return OkStatus();
}

Status DecodeRequestBody(ByteReader* r, WireMsg* m) {
  if (m->op != WireOp::kHello) {
    ASSIGN_OR_RETURN(m->seq, r->U32());
  }
  switch (m->op) {
    case WireOp::kHello: {
      ASSIGN_OR_RETURN(uint32_t magic, r->U32());
      if (magic != kWireMagic) {
        return CorruptData("wire: bad hello magic");
      }
      ASSIGN_OR_RETURN(m->version, r->U16());
      // A v1 hello ends here; it still decodes so the server can refuse it
      // with kUnsupportedVersion instead of a parse error.
      if (m->version >= 2) {
        ASSIGN_OR_RETURN(m->resume_session, r->U32());
        ASSIGN_OR_RETURN(m->resume_token, r->U64());
      }
      return OkStatus();
    }
    case WireOp::kMount:
    case WireOp::kCheck:
    case WireOp::kStats:
    case WireOp::kBye:
      return OkStatus();
    case WireOp::kResync: {
      ASSIGN_OR_RETURN(uint32_t n, r->Count(16, kMaxInvals));
      m->claims.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        RETURN_IF_ERROR(DecodeClaim(r, &m->claims[i]));
      }
      return OkStatus();
    }
    case WireOp::kFetch: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(uint32_t n, r->Count(4, kWirePagesPerFile));
      m->page_list.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(m->page_list[i], r->U32());
        if (m->page_list[i] >= kWirePagesPerFile) {
          return CorruptData("wire: fetch page index out of range");
        }
      }
      if (!ValidIno(m->ino)) {
        return CorruptData("wire: fetch names an invalid inode");
      }
      return OkStatus();
    }
    case WireOp::kFlush: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->size, r->U32());
      ASSIGN_OR_RETURN(uint32_t n, r->Count(16, kWirePagesPerFile));
      m->pages.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        RETURN_IF_ERROR(DecodePage(r, &m->pages[i]));
      }
      if (!ValidIno(m->ino) || m->size > kSfsMaxFileBytes) {
        return CorruptData("wire: flush out of range");
      }
      return OkStatus();
    }
    case WireOp::kCreate:
    case WireOp::kMkdir:
      return DecodePathField(r, &m->path);
    case WireOp::kSymlink: {
      RETURN_IF_ERROR(DecodePathField(r, &m->path));
      ASSIGN_OR_RETURN(m->target, r->Str());
      if (m->target.size() > kMaxWirePath) {
        return CorruptData("wire: symlink target too long");
      }
      return OkStatus();
    }
    case WireOp::kUnlink: {
      RETURN_IF_ERROR(DecodePathField(r, &m->path));
      ASSIGN_OR_RETURN(m->flag, r->U8());
      if (m->flag > 1) {
        return CorruptData("wire: unlink force flag out of range");
      }
      return OkStatus();
    }
    case WireOp::kTruncate: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->size, r->U32());
      if (!ValidIno(m->ino) || m->size > kSfsMaxFileBytes) {
        return CorruptData("wire: truncate out of range");
      }
      return OkStatus();
    }
    case WireOp::kWrite: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->offset, r->U32());
      ASSIGN_OR_RETURN(m->bytes, r->Bytes());
      if (!ValidIno(m->ino) ||
          static_cast<uint64_t>(m->offset) + m->bytes.size() > kSfsMaxFileBytes) {
        return CorruptData("wire: write past the 1 MB file limit");
      }
      return OkStatus();
    }
    case WireOp::kLock:
    case WireOp::kUnlock: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->pid, r->I32());
      if (!ValidIno(m->ino)) {
        return CorruptData("wire: lock names an invalid inode");
      }
      return OkStatus();
    }
    case WireOp::kReleaseLocks: {
      ASSIGN_OR_RETURN(m->pid, r->I32());
      return OkStatus();
    }
    case WireOp::kPending: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->flag, r->U8());
      if (!ValidIno(m->ino) || m->flag > 1) {
        return CorruptData("wire: pending marker out of range");
      }
      return OkStatus();
    }
    case WireOp::kReply:
    case WireOp::kError:
      return Internal("wire: reply body routed to the request decoder");
  }
  return CorruptData("wire: unknown opcode");
}

// --- Reply bodies ---

void EncodeReplyBody(ByteWriter* w, const WireMsg& m) {
  w->U8(m.reply_to);
  w->U32(m.seq);
  w->U8(m.replayed);
  w->U32(static_cast<uint32_t>(m.invals.size()));
  for (const WireInval& inv : m.invals) {
    EncodeInval(w, inv);
  }
  if (m.op == WireOp::kError) {
    w->U8(m.err_code);
    w->Str(m.err_msg);
    return;
  }
  switch (static_cast<WireOp>(m.reply_to)) {
    case WireOp::kHello:
      w->U32(m.session);
      w->U16(m.version);
      w->U64(m.token);
      w->U32(m.epoch);
      w->U8(m.resumed);
      break;
    case WireOp::kMount:
      w->U32(static_cast<uint32_t>(m.nodes.size()));
      for (const WireNode& node : m.nodes) {
        EncodeNode(w, node);
      }
      break;
    case WireOp::kFetch:
      w->U32(m.ino);
      w->U32(m.size);
      w->U32(static_cast<uint32_t>(m.pages.size()));
      for (const WirePage& p : m.pages) {
        EncodePage(w, p);
      }
      break;
    case WireOp::kFlush:
    case WireOp::kWrite:
      // Version-only records (empty bytes): the new CoherenceDirectory version
      // of each page the flush/write just took ownership of.
      w->U32(static_cast<uint32_t>(m.pages.size()));
      for (const WirePage& p : m.pages) {
        EncodePage(w, p);
      }
      break;
    case WireOp::kCreate:
    case WireOp::kMkdir:
    case WireOp::kSymlink:
      w->U32(m.ino);
      break;
    case WireOp::kCheck:
      w->U8(m.flag);
      w->Str(m.text);
      break;
    case WireOp::kStats:
      w->U32(static_cast<uint32_t>(m.stats.size()));
      for (const auto& [name, value] : m.stats) {
        w->Str(name);
        w->U64(value);
      }
      break;
    default:
      break;  // flush/unlink/truncate/write/lock/unlock/release/pending/bye: empty
  }
}

Status DecodeReplyBody(ByteReader* r, WireMsg* m) {
  ASSIGN_OR_RETURN(m->reply_to, r->U8());
  WireOp to = static_cast<WireOp>(m->reply_to);
  if (m->reply_to < 1 || to >= WireOp::kReply) {
    return CorruptData(StrFormat("wire: reply to unknown opcode %u", m->reply_to));
  }
  ASSIGN_OR_RETURN(m->seq, r->U32());
  ASSIGN_OR_RETURN(m->replayed, r->U8());
  if (m->replayed > 1) {
    return CorruptData("wire: replayed flag out of range");
  }
  ASSIGN_OR_RETURN(uint32_t n, r->Count(5, kMaxInvals));
  m->invals.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(DecodeInval(r, &m->invals[i]));
  }
  if (m->op == WireOp::kError) {
    ASSIGN_OR_RETURN(m->err_code, r->U8());
    ASSIGN_OR_RETURN(m->err_msg, r->Str());
    if (m->err_code == 0) {
      return CorruptData("wire: error reply with OK code");
    }
    if (m->err_msg.size() > kMaxWirePath) {
      return CorruptData("wire: error message too long");
    }
    return OkStatus();
  }
  switch (to) {
    case WireOp::kHello: {
      ASSIGN_OR_RETURN(m->session, r->U32());
      ASSIGN_OR_RETURN(m->version, r->U16());
      ASSIGN_OR_RETURN(m->token, r->U64());
      ASSIGN_OR_RETURN(m->epoch, r->U32());
      ASSIGN_OR_RETURN(m->resumed, r->U8());
      if (m->resumed > 1) {
        return CorruptData("wire: hello resumed flag out of range");
      }
      return OkStatus();
    }
    case WireOp::kMount: {
      ASSIGN_OR_RETURN(uint32_t count, r->Count(16, kMaxNodes));
      m->nodes.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        RETURN_IF_ERROR(DecodeNode(r, &m->nodes[i]));
      }
      return OkStatus();
    }
    case WireOp::kFetch: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      ASSIGN_OR_RETURN(m->size, r->U32());
      ASSIGN_OR_RETURN(uint32_t count, r->Count(16, kWirePagesPerFile));
      m->pages.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        RETURN_IF_ERROR(DecodePage(r, &m->pages[i]));
      }
      if (!ValidIno(m->ino) || m->size > kSfsMaxFileBytes) {
        return CorruptData("wire: fetch reply out of range");
      }
      return OkStatus();
    }
    case WireOp::kFlush:
    case WireOp::kWrite: {
      ASSIGN_OR_RETURN(uint32_t count, r->Count(16, kWirePagesPerFile));
      m->pages.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        RETURN_IF_ERROR(DecodePage(r, &m->pages[i]));
      }
      return OkStatus();
    }
    case WireOp::kCreate:
    case WireOp::kMkdir:
    case WireOp::kSymlink: {
      ASSIGN_OR_RETURN(m->ino, r->U32());
      if (!ValidIno(m->ino)) {
        return CorruptData("wire: created-inode reply out of range");
      }
      return OkStatus();
    }
    case WireOp::kCheck: {
      ASSIGN_OR_RETURN(m->flag, r->U8());
      ASSIGN_OR_RETURN(m->text, r->Str());
      if (m->flag > 1) {
        return CorruptData("wire: check reply flag out of range");
      }
      return OkStatus();
    }
    case WireOp::kStats: {
      ASSIGN_OR_RETURN(uint32_t count, r->Count(12, kMaxStats));
      m->stats.resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        ASSIGN_OR_RETURN(m->stats[i].first, r->Str());
        ASSIGN_OR_RETURN(m->stats[i].second, r->U64());
        if (m->stats[i].first.empty() || m->stats[i].first.size() > kMaxStatName) {
          return CorruptData("wire: stats counter name malformed");
        }
      }
      return OkStatus();
    }
    default:
      return OkStatus();  // empty-bodied acks
  }
}

}  // namespace

void EncodeInvalRecord(ByteWriter* w, const WireInval& inv) { EncodeInval(w, inv); }

Status DecodeInvalRecord(ByteReader* r, WireInval* inv) { return DecodeInval(r, inv); }

std::vector<uint8_t> EncodePayload(const WireMsg& msg) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(msg.op));
  if (msg.op == WireOp::kReply || msg.op == WireOp::kError) {
    EncodeReplyBody(&w, msg);
  } else {
    EncodeRequestBody(&w, msg);
  }
  return w.Take();
}

Result<WireMsg> DecodePayload(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  WireMsg m;
  ASSIGN_OR_RETURN(uint8_t op, r.U8());
  bool known_request = op >= 1 && op <= static_cast<uint8_t>(WireOp::kResync);
  bool reply = op == static_cast<uint8_t>(WireOp::kReply) ||
               op == static_cast<uint8_t>(WireOp::kError);
  if (!known_request && !reply) {
    return CorruptData(StrFormat("wire: unknown opcode %u", op));
  }
  m.op = static_cast<WireOp>(op);
  if (reply) {
    RETURN_IF_ERROR(DecodeReplyBody(&r, &m));
  } else {
    RETURN_IF_ERROR(DecodeRequestBody(&r, &m));
  }
  RETURN_IF_ERROR(r.ExpectEnd("wire payload"));
  return m;
}

std::vector<uint8_t> EncodeFrame(const WireMsg& msg) {
  std::vector<uint8_t> payload = EncodePayload(msg);
  ByteWriter w;
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Raw(payload.data(), payload.size());
  return w.Take();
}

uint8_t WireErrorCode(ErrorCode code) {
  // Explicit table: the wire bytes are protocol, the enum order is not.
  switch (code) {
    case ErrorCode::kOk: return 0;
    case ErrorCode::kInvalidArgument: return 1;
    case ErrorCode::kNotFound: return 2;
    case ErrorCode::kAlreadyExists: return 3;
    case ErrorCode::kPermissionDenied: return 4;
    case ErrorCode::kOutOfRange: return 5;
    case ErrorCode::kResourceExhausted: return 6;
    case ErrorCode::kFailedPrecondition: return 7;
    case ErrorCode::kUnimplemented: return 8;
    case ErrorCode::kCorruptData: return 9;
    case ErrorCode::kWouldBlock: return 10;
    case ErrorCode::kFault: return 11;
    case ErrorCode::kCrashed: return 12;
    case ErrorCode::kInternal: return 13;
    case ErrorCode::kIoError: return 14;
    case ErrorCode::kUnsupportedVersion: return 15;
  }
  return 13;
}

ErrorCode ErrorCodeFromWire(uint8_t byte) {
  switch (byte) {
    case 1: return ErrorCode::kInvalidArgument;
    case 2: return ErrorCode::kNotFound;
    case 3: return ErrorCode::kAlreadyExists;
    case 4: return ErrorCode::kPermissionDenied;
    case 5: return ErrorCode::kOutOfRange;
    case 6: return ErrorCode::kResourceExhausted;
    case 7: return ErrorCode::kFailedPrecondition;
    case 8: return ErrorCode::kUnimplemented;
    case 9: return ErrorCode::kCorruptData;
    case 10: return ErrorCode::kWouldBlock;
    case 11: return ErrorCode::kFault;
    case 12: return ErrorCode::kCrashed;
    case 14: return ErrorCode::kIoError;
    case 15: return ErrorCode::kUnsupportedVersion;
    default: return ErrorCode::kInternal;  // forward compatibility, not corruption
  }
}

WireMsg WireErrorFrom(const Status& st) {
  WireMsg m;
  m.op = WireOp::kError;
  m.err_code = WireErrorCode(st.code());
  m.err_msg = st.message();
  return m;
}

Status StatusFromWire(const WireMsg& err) {
  return Status(ErrorCodeFromWire(err.err_code),
                err.err_msg.empty() ? "remote error" : err.err_msg);
}

}  // namespace hemlock
