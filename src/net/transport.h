// Loopback TCP transport for the hemnet protocol.
//
// A Conn sends and receives whole frames (U32 length prefix + payload) over a
// connected socket, with the same host-I/O discipline as PosixStore: EINTR and
// short reads/writes are retried, a failed or truncated transfer is kIoError,
// and a peer that closes mid-frame surfaces as an error rather than a partial
// message. `net.connect` / `net.accept` / `net.send` / `net.recv` fault points
// let tests (and `hemrun --faults`) sever the link at any protocol step — the
// client's degraded mode is exercised without a real network failure.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/net/wire.h"

namespace hemlock {

// One connected socket speaking framed WireMsg payloads. Movable, not copyable;
// closes the descriptor on destruction.
class Conn {
 public:
  Conn() = default;
  explicit Conn(int fd) : fd_(fd) {}
  ~Conn() { Close(); }
  Conn(Conn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Conn& operator=(Conn&& other) noexcept;
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sends one frame, subject to the chaos engine (src/net/chaos.h): the frame
  // may be silently dropped, delayed, duplicated, truncated (closing this end),
  // or the connection severed — deterministic network weather for tests.
  Status Send(const WireMsg& msg);
  // Frames and sends an already-encoded payload verbatim — no chaos, no
  // canonicalizing re-encode. Lets tests speak wire shapes the current encoder
  // refuses to produce (old protocol versions, hostile bytes).
  Status SendRaw(const std::vector<uint8_t>& payload);
  // Blocks until a whole frame arrives, then decodes it with the validating
  // decoder. A clean EOF before the first length byte is kIoError("peer closed
  // the connection") — the server treats it as a disconnect, not corruption.
  Result<WireMsg> Recv();

  // Caps how long Recv waits for bytes (0 = forever). A dead or silent peer
  // then times out with kIoError instead of wedging the caller — the client's
  // RPC deadline and the server's poll loop both hang off this.
  Status SetRecvTimeoutMs(int64_t ms);

  void Close();

 private:
  int fd_ = -1;
};

// Dials 127.0.0.1-style HOST:PORT. The handshake (HELLO/version gate) is the
// caller's job; this only produces a connected socket.
Result<Conn> DialTcp(const std::string& host, int port);

// A listening socket. Port 0 binds an ephemeral port; port() reports the one
// the kernel chose.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  static Result<Listener> ListenTcp(const std::string& host, int port);

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int port() const { return port_; }

  // Accepts one pending connection (the caller polls for readability first).
  Result<Conn> Accept();

  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace hemlock

#endif  // SRC_NET_TRANSPORT_H_
