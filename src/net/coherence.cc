#include "src/net/coherence.h"

namespace hemlock {

void CoherenceDirectory::NoteFetch(uint32_t ino, uint32_t page, uint32_t s) {
  PageState& st = pages_[Key(ino, page)];
  if (st.owner != 0 && st.owner != s) {
    // Single-writer invariant: a new reader ends the owner's exclusivity.
    st.readers.insert(st.owner);
    st.owner = 0;
    ++downgrades_;
  }
  st.readers.insert(s);
}

void CoherenceDirectory::NoteWrite(uint32_t ino, uint32_t page, uint32_t s,
                                   const std::function<void(uint32_t)>& invalidate) {
  PageState& st = pages_[Key(ino, page)];
  for (uint32_t reader : st.readers) {
    if (reader != s) {
      ++invalidations_;
      if (invalidate) {
        invalidate(reader);
      }
    }
  }
  st.readers.clear();
  st.readers.insert(s);
  st.owner = s;
}

void CoherenceDirectory::DropInode(uint32_t ino) {
  auto begin = pages_.lower_bound(Key(ino, 0));
  auto end = pages_.lower_bound(Key(ino + 1, 0));
  pages_.erase(begin, end);
}

void CoherenceDirectory::DropSession(uint32_t s) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    PageState& st = it->second;
    st.readers.erase(s);
    if (st.owner == s) {
      st.owner = 0;
    }
    if (st.readers.empty() && st.owner == 0) {
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
}

uint32_t CoherenceDirectory::OwnerOf(uint32_t ino, uint32_t page) const {
  auto it = pages_.find(Key(ino, page));
  return it == pages_.end() ? 0 : it->second.owner;
}

std::vector<uint32_t> CoherenceDirectory::ReadersOf(uint32_t ino, uint32_t page) const {
  auto it = pages_.find(Key(ino, page));
  if (it == pages_.end()) {
    return {};
  }
  return std::vector<uint32_t>(it->second.readers.begin(), it->second.readers.end());
}

}  // namespace hemlock
