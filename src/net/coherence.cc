#include "src/net/coherence.h"

namespace hemlock {

void CoherenceDirectory::NoteFetch(uint32_t ino, uint32_t page, uint32_t s) {
  PageState& st = pages_[Key(ino, page)];
  if (st.owner != 0 && st.owner != s) {
    // Single-writer invariant: a new reader ends the owner's exclusivity.
    st.readers.insert(st.owner);
    st.owner = 0;
    ++downgrades_;
  }
  st.readers.insert(s);
}

void CoherenceDirectory::NoteWrite(uint32_t ino, uint32_t page, uint32_t s,
                                   const std::function<void(uint32_t)>& invalidate) {
  PageState& st = pages_[Key(ino, page)];
  for (uint32_t reader : st.readers) {
    if (reader != s) {
      ++invalidations_;
      if (invalidate) {
        invalidate(reader);
      }
    }
  }
  st.readers.clear();
  st.readers.insert(s);
  st.owner = s;
  st.version = ++clock_;
}

void CoherenceDirectory::DropInode(uint32_t ino) {
  auto begin = pages_.lower_bound(Key(ino, 0));
  auto end = pages_.lower_bound(Key(ino + 1, 0));
  pages_.erase(begin, end);
}

void CoherenceDirectory::DropSession(uint32_t s) {
  for (auto it = pages_.begin(); it != pages_.end();) {
    PageState& st = it->second;
    st.readers.erase(s);
    if (st.owner == s) {
      st.owner = 0;
    }
    // A written page keeps its entry even with no cachers left: the version is
    // the authoritative write history a returning session resyncs against.
    if (st.readers.empty() && st.owner == 0 && st.version == 0) {
      it = pages_.erase(it);
    } else {
      ++it;
    }
  }
}

uint32_t CoherenceDirectory::OwnerOf(uint32_t ino, uint32_t page) const {
  auto it = pages_.find(Key(ino, page));
  return it == pages_.end() ? 0 : it->second.owner;
}

std::vector<uint32_t> CoherenceDirectory::ReadersOf(uint32_t ino, uint32_t page) const {
  auto it = pages_.find(Key(ino, page));
  if (it == pages_.end()) {
    return {};
  }
  return std::vector<uint32_t>(it->second.readers.begin(), it->second.readers.end());
}

uint64_t CoherenceDirectory::VersionOf(uint32_t ino, uint32_t page) const {
  auto it = pages_.find(Key(ino, page));
  return it == pages_.end() ? 0 : it->second.version;
}

void CoherenceDirectory::Serialize(ByteWriter* w) const {
  w->U64(clock_);
  w->U64(downgrades_);
  w->U64(invalidations_);
  w->U32(static_cast<uint32_t>(pages_.size()));
  for (const auto& [key, st] : pages_) {
    w->U64(key);
    w->U32(st.owner);
    w->U64(st.version);
    w->U32(static_cast<uint32_t>(st.readers.size()));
    for (uint32_t reader : st.readers) {
      w->U32(reader);
    }
  }
}

Status CoherenceDirectory::Deserialize(ByteReader* r) {
  pages_.clear();
  ASSIGN_OR_RETURN(clock_, r->U64());
  ASSIGN_OR_RETURN(downgrades_, r->U64());
  ASSIGN_OR_RETURN(invalidations_, r->U64());
  ASSIGN_OR_RETURN(uint32_t n, r->Count(24, 1u << 20));
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(uint64_t key, r->U64());
    PageState st;
    ASSIGN_OR_RETURN(st.owner, r->U32());
    ASSIGN_OR_RETURN(st.version, r->U64());
    ASSIGN_OR_RETURN(uint32_t readers, r->Count(4, 1u << 16));
    for (uint32_t j = 0; j < readers; ++j) {
      ASSIGN_OR_RETURN(uint32_t reader, r->U32());
      st.readers.insert(reader);
    }
    if (st.version > clock_) {
      return CorruptData("coherence: page version ahead of the write clock");
    }
    pages_[key] = st;
  }
  return OkStatus();
}

}  // namespace hemlock
