// Seeded chaos transport — deterministic network weather for the hemnet link.
//
// The engine sits inside Conn::Send and decides, per outgoing frame, whether
// the wire behaves: frames can be dropped (the peer times out and retransmits),
// delayed, duplicated (the peer's at-most-once cache answers the copy),
// truncated mid-frame (the peer sees a torn transfer), or the whole connection
// severed. Two trigger paths compose:
//
//   * a seeded schedule (`Configure("drop=7,dup=13:42")`): each kind fires on
//     roughly 1-in-K frames, chosen by an FNV-1a hash of (seed, frame ordinal)
//     — the same seed replays the same weather, which is what lets the chaos
//     differential demand byte-identical output;
//   * the PR 2 fault registry: arming `net.chaos.drop` (or .delay/.dup/.trunc/
//     .sever) via `--faults` fires that kind once at an exact ordinal, for
//     tests that need one surgical event rather than a climate.
//
// The engine is process-global like the fault registry (transports live in
// leaf code with no Machine handle); tools configure it from `--net-chaos` or
// the HEMLOCK_NET_CHAOS environment variable.
#ifndef SRC_NET_CHAOS_H_
#define SRC_NET_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/base/status.h"

namespace hemlock {

enum class ChaosAction : uint8_t { kNone, kDrop, kDelay, kDup, kTrunc, kSever };

const char* ChaosActionName(ChaosAction action);

class ChaosEngine {
 public:
  static ChaosEngine& Global();

  ChaosEngine() = default;
  ChaosEngine(const ChaosEngine&) = delete;
  ChaosEngine& operator=(const ChaosEngine&) = delete;

  // Spec: comma-separated `kind=K` pairs (kind in drop/delay/dup/trunc/sever;
  // K = fire on ~1 in K frames, 0 = off), optionally suffixed `:SEED`.
  // An empty spec disables the schedule (armed net.chaos.* points still fire).
  Status Configure(const std::string& spec);
  void Disable();

  bool scheduled() const { return scheduled_; }
  uint64_t frames() const { return frame_.load(std::memory_order_relaxed); }

  // Called once per outgoing frame; returns what the wire does to it.
  ChaosAction NextSendAction();

 private:
  ChaosAction ScheduledAction(uint64_t frame) const;

  bool scheduled_ = false;
  uint32_t drop_ = 0;
  uint32_t delay_ = 0;
  uint32_t dup_ = 0;
  uint32_t trunc_ = 0;
  uint32_t sever_ = 0;
  uint64_t seed_ = 0;
  std::atomic<uint64_t> frame_{0};
};

}  // namespace hemlock

#endif  // SRC_NET_CHAOS_H_
