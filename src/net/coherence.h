// Page-granular ownership tracking for the segment-coherence server.
//
// Classic single-writer / multi-reader directory (the DSM shape the Rochester
// group moved to after the paper): every (inode, page) has at most one
// exclusive owner — the last session that flushed bytes into it — and any
// number of reading cachers. A fetch joins the reader set and demotes a
// foreign owner to reader; a write makes the writer exclusive and fires an
// invalidation callback for every other session still caching the page. The
// server queues those callbacks per session and piggybacks them on the next
// reply, so a client observes remote writes at its own synchronization points
// (lock acquire / any RPC) — lazy release consistency, not eager broadcast.
#ifndef SRC_NET_COHERENCE_H_
#define SRC_NET_COHERENCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace hemlock {

class CoherenceDirectory {
 public:
  // Session |s| cached |page| of |ino| for reading. A foreign exclusive owner
  // is downgraded to a plain reader (its cached copy stays valid — it just
  // loses the right to skip invalidations on its next write).
  void NoteFetch(uint32_t ino, uint32_t page, uint32_t s);

  // Session |s| wrote |page|: |s| becomes the exclusive owner and every other
  // caching session is invalidated via |invalidate| (and leaves the set — it
  // must re-fetch before it counts as a reader again).
  void NoteWrite(uint32_t ino, uint32_t page, uint32_t s,
                 const std::function<void(uint32_t session)>& invalidate);

  // The inode was destroyed / a session disconnected: forget the entries.
  void DropInode(uint32_t ino);
  void DropSession(uint32_t s);

  // Introspection (tests, stats). Owner 0 = no exclusive owner.
  uint32_t OwnerOf(uint32_t ino, uint32_t page) const;
  std::vector<uint32_t> ReadersOf(uint32_t ino, uint32_t page) const;

  // Monotonic write version of a page (0 = never written through the server).
  // Clients remember the version of every cached page and replay it in a
  // RESYNC claim after a reconnect; a mismatch means "your copy is stale".
  uint64_t VersionOf(uint32_t ino, uint32_t page) const;

  // Checkpoint support (the hemserve journal): the whole directory — global
  // write clock plus every entry — travels through the same validated
  // ByteWriter/ByteReader discipline as the other external formats.
  void Serialize(ByteWriter* w) const;
  Status Deserialize(ByteReader* r);

  uint64_t downgrades() const { return downgrades_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  struct PageState {
    uint32_t owner = 0;  // 0 = none/shared
    uint64_t version = 0;  // bumped from the global clock on every write
    std::set<uint32_t> readers;
  };

  static uint64_t Key(uint32_t ino, uint32_t page) {
    return (static_cast<uint64_t>(ino) << 32) | page;
  }

  std::map<uint64_t, PageState> pages_;
  uint64_t clock_ = 0;
  uint64_t downgrades_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace hemlock

#endif  // SRC_NET_COHERENCE_H_
