#include "src/net/journal.h"

#include <cstdio>
#include <fstream>

#include "src/base/bytes.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {

constexpr uint32_t kMaxJournalRecord = 8u << 20;  // a frame + bookkeeping, with slack

std::vector<uint8_t> EncodeHeader(uint64_t nonce, const std::vector<uint8_t>& checkpoint) {
  ByteWriter w;
  w.U32(kJournalMagic);
  w.U16(kJournalVersion);
  w.U64(nonce);
  w.Bytes(checkpoint);
  return w.Take();
}

std::vector<uint8_t> EncodeRecordBody(const JournalRecord& rec) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(rec.type));
  w.U32(rec.session);
  w.U64(rec.token);
  w.Bytes(rec.payload);
  return w.Take();
}

Status WriteRecordTo(std::FILE* f, const JournalRecord& rec) {
  std::vector<uint8_t> body = EncodeRecordBody(rec);
  ByteWriter w;
  w.U32(static_cast<uint32_t>(body.size()));
  w.U32(Crc32(body.data(), body.size()));
  w.Raw(body.data(), body.size());
  const std::vector<uint8_t>& framed = w.buffer();
  if (std::fwrite(framed.data(), 1, framed.size(), f) != framed.size()) {
    return IoError("journal: short write appending a record");
  }
  return OkStatus();
}

}  // namespace

Status Journal::Open(const std::string& path, const std::vector<uint8_t>& checkpoint) {
  Close();
  path_ = path;
  // An existing journal is loaded (the caller replays it) and rewritten
  // in place: same nonce, same contents, minus any torn tail — so appends
  // always land after the last *valid* record.
  uint64_t nonce = 1;
  std::vector<uint8_t> header_checkpoint = checkpoint;
  std::vector<JournalRecord> keep;
  if (Result<JournalContents> existing = Load(path); existing.ok()) {
    nonce = existing->nonce;
    header_checkpoint = std::move(existing->checkpoint);
    keep = std::move(existing->records);
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return IoError("journal: cannot open " + path);
  }
  nonce_ = nonce;
  records_appended_ = 0;
  std::vector<uint8_t> header = EncodeHeader(nonce_, header_checkpoint);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return IoError("journal: short write on the header");
  }
  for (const JournalRecord& rec : keep) {
    RETURN_IF_ERROR(WriteRecordTo(file_, rec));
    ++records_appended_;
  }
  std::fflush(file_);
  return OkStatus();
}

Status Journal::Rewrite(const std::vector<uint8_t>& checkpoint) {
  if (file_ == nullptr) {
    return FailedPrecondition("journal: rewrite without an open journal");
  }
  std::string tmp = path_ + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return IoError("journal: cannot open " + tmp);
    }
    std::vector<uint8_t> header = EncodeHeader(nonce_ + 1, checkpoint);
    size_t wrote = std::fwrite(header.data(), 1, header.size(), f);
    std::fflush(f);
    std::fclose(f);
    if (wrote != header.size()) {
      std::remove(tmp.c_str());
      return IoError("journal: short write on the checkpoint header");
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("journal: cannot rename the checkpoint into place");
  }
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return IoError("journal: cannot reopen " + path_);
  }
  ++nonce_;
  records_appended_ = 0;
  return OkStatus();
}

Status Journal::Append(const JournalRecord& rec) {
  if (file_ == nullptr) {
    return FailedPrecondition("journal: append without an open journal");
  }
  RETURN_IF_ERROR(WriteRecordTo(file_, rec));
  // Flushed to the OS, not fsynced: a killed server loses nothing (the page
  // cache survives it); only a machine crash can cost a suffix, and the torn
  // tail discipline absorbs that.
  std::fflush(file_);
  ++records_appended_;
  return OkStatus();
}

void Journal::Close() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<JournalContents> Journal::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("journal: cannot read " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader r(bytes);
  JournalContents out;
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kJournalMagic) {
    return CorruptData("journal: bad magic");
  }
  ASSIGN_OR_RETURN(uint16_t version, r.U16());
  if (version != kJournalVersion) {
    return UnsupportedVersion(StrFormat("journal: version %u, want %u", version,
                                        kJournalVersion));
  }
  ASSIGN_OR_RETURN(out.nonce, r.U64());
  ASSIGN_OR_RETURN(out.checkpoint, r.Bytes());
  // The record tail: stop at the first record that does not check out — a
  // torn append from a crashed primary truncates the history, it does not
  // poison it.
  while (r.remaining() >= 8) {
    Result<uint32_t> len = r.U32();
    Result<uint32_t> crc = r.U32();
    if (!len.ok() || !crc.ok() || *len == 0 || *len > kMaxJournalRecord ||
        *len > r.remaining()) {
      break;
    }
    std::vector<uint8_t> body(*len);
    if (!r.ReadRaw(body.data(), body.size()).ok() ||
        Crc32(body.data(), body.size()) != *crc) {
      break;
    }
    ByteReader br(body);
    JournalRecord rec;
    Result<uint8_t> type = br.U8();
    if (!type.ok() || *type < 1 || *type > 3) {
      break;
    }
    rec.type = static_cast<JournalRecordType>(*type);
    Result<uint32_t> session = br.U32();
    Result<uint64_t> token = br.U64();
    Result<std::vector<uint8_t>> payload = br.Bytes();
    if (!session.ok() || !token.ok() || !payload.ok() || !br.AtEnd()) {
      break;
    }
    rec.session = *session;
    rec.token = *token;
    rec.payload = std::move(*payload);
    out.records.push_back(std::move(rec));
  }
  return out;
}

}  // namespace hemlock
