#include "src/net/client.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/layout.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {

// Parents before children: depth is the number of path separators in the
// normalized absolute path ("/a" = 1, "/a/b" = 2).
size_t PathDepth(const std::string& path) {
  return static_cast<size_t>(std::count(path.begin(), path.end(), '/'));
}

}  // namespace

NetClient::~NetClient() { Disconnect(); }

NetClient::InoCache& NetClient::CacheOf(uint32_t ino) {
  InoCache& c = cache_[ino];
  if (c.resident.empty()) {
    c.resident.assign(kWirePagesPerFile, false);
    c.versions.assign(kWirePagesPerFile, 0);
  }
  return c;
}

void NetClient::Degrade(const Status& why) {
  if (!degraded_) {
    degraded_ = true;
    if (c_degraded_ != nullptr) {
      ++*c_degraded_;
    }
  }
  (void)why;
  conn_.Close();
}

void NetClient::SeverForTest() {
  std::lock_guard<std::mutex> lock(client_mu_);
  conn_.Close();
}

void NetClient::BackoffSleep(int attempt) {
  int64_t base = options_.backoff_ms > 0 ? options_.backoff_ms : 1;
  int64_t ms = base << std::min(attempt - 1, 6);
  // Seeded jitter (up to one base interval) keeps a fleet of clients that
  // failed together from retrying in lockstep — deterministically per seed.
  uint64_t word = (static_cast<uint64_t>(next_seq_) << 8) | static_cast<uint64_t>(attempt);
  uint64_t h = Fnv1a64(&word, sizeof(word), kFnv1a64Seed ^ options_.seed);
  ms += static_cast<int64_t>(h % static_cast<uint64_t>(base));
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Result<WireMsg> NetClient::TryRoundTripLocked(const WireMsg& req) {
  if (!connected()) {
    return IoError("net: client not connected");
  }
  RETURN_IF_ERROR(conn_.Send(req));
  for (;;) {
    ASSIGN_OR_RETURN(WireMsg reply, conn_.Recv());
    if (req.op == WireOp::kHello || reply.seq == req.seq) {
      if (!carried_invals_.empty()) {
        // Invalidations salvaged from stale replies / the reconnect handshake
        // are older than this reply's own: apply them first.
        reply.invals.insert(reply.invals.begin(), carried_invals_.begin(),
                            carried_invals_.end());
        carried_invals_.clear();
      }
      return reply;
    }
    // A duplicated frame got answered twice: this is the echo of an earlier
    // request. Drop the body — its effects were already applied — but keep
    // the invalidations, which carry server progress we must not lose.
    carried_invals_.insert(carried_invals_.end(), reply.invals.begin(),
                           reply.invals.end());
    if (c_replays_dropped_ != nullptr) {
      ++*c_replays_dropped_;
    }
  }
}

Result<WireMsg> NetClient::RoundTripLocked(WireMsg& req) {
  if (req.op != WireOp::kHello && req.seq == 0) {
    req.seq = ++next_seq_;
  }
  Status last = IoError("net: client not connected");
  for (int attempt = 0; attempt <= options_.retries; ++attempt) {
    if (attempt > 0) {
      if (c_retries_ != nullptr) {
        ++*c_retries_;
      }
      BackoffSleep(attempt);
    }
    if (!connected() && attempt > 0) {
      Status re = ReconnectLocked();
      if (!re.ok()) {
        last = re;
        continue;
      }
    }
    Result<WireMsg> reply = TryRoundTripLocked(req);
    if (reply.ok()) {
      if (c_rpcs_ != nullptr) {
        ++*c_rpcs_;
      }
      return reply;
    }
    last = reply.status();
    conn_.Close();
  }
  Degrade(last);
  return last;
}

Result<WireMsg> NetClient::Call(WireMsg& req) {
  if (degraded_) {
    return IoError("net: client is degraded after an earlier transport failure");
  }
  // Drop the kernel lock across the socket wait so a blocking RPC stalls only
  // the calling core; re-acquire it before the replica is touched. client_mu_
  // is held from before the send until after the local apply, so replicas on
  // other cores observe server mutations in server order.
  std::shared_ptr<void> netwait = machine_ != nullptr ? machine_->EnterNetWait() : nullptr;
  std::unique_lock<std::mutex> lock(client_mu_);
  Result<WireMsg> reply = RoundTripLocked(req);
  netwait.reset();
  if (!reply.ok()) {
    return reply;
  }
  std::vector<WireInval> invals = std::move(reply->invals);
  reply->invals.clear();
  RETURN_IF_ERROR(ApplyInvalsLocked(std::move(invals)));
  return reply;
}

Status NetClient::HandshakeLocked() {
  // Local round trip that funnels every reply's invalidations into
  // carried_invals_: they ride on the retried request's reply, so the normal
  // apply path sees them in server order. Handshake RPCs travel with seq 0
  // (outside the at-most-once window): RESYNC is read-only and a lock
  // re-claim by the holder is idempotent, while a tracked seq here would
  // advance the server past the still-pending retried request's number and
  // turn its retransmit into a "stale" rejection.
  auto roundtrip = [this](WireMsg& m) -> Result<WireMsg> {
    ASSIGN_OR_RETURN(WireMsg reply, TryRoundTripLocked(m));
    carried_invals_.insert(carried_invals_.end(), reply.invals.begin(),
                           reply.invals.end());
    reply.invals.clear();
    return reply;
  };

  WireMsg hello;
  hello.op = WireOp::kHello;
  hello.version = kWireVersion;
  hello.resume_session = session_;
  hello.resume_token = token_;
  ASSIGN_OR_RETURN(WireMsg welcome, roundtrip(hello));
  if (welcome.op == WireOp::kError) {
    return StatusFromWire(welcome);
  }
  bool resumed = welcome.resumed != 0;
  session_ = welcome.session;
  token_ = welcome.token;
  epoch_ = welcome.epoch;
  if (resumed && c_resumes_ != nullptr) {
    ++*c_resumes_;
  }

  if (fs_ != nullptr) {
    // Revalidate the replica: claim every known inode (believed size) and
    // every resident page (believed version). The server answers only what
    // is stale — plus kCreated records for nodes born while we were away.
    WireMsg resync;
    resync.op = WireOp::kResync;
    for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
      Result<SfsStat> st = fs_->StatInode(ino);
      if (!st.ok()) {
        continue;
      }
      WireClaim size_claim;
      size_claim.ino = ino;
      size_claim.page = kWireSizeClaim;
      size_claim.version = st->type == SfsNodeType::kRegular ? st->size : 0;
      resync.claims.push_back(size_claim);
      if (st->type != SfsNodeType::kRegular) {
        continue;
      }
      auto it = cache_.find(ino);
      if (it == cache_.end()) {
        continue;
      }
      const InoCache& c = it->second;
      for (uint32_t page = 0; page < c.resident.size(); ++page) {
        if (!c.resident[page]) {
          continue;
        }
        WireClaim claim;
        claim.ino = ino;
        claim.page = page;
        claim.version = c.versions[page];
        resync.claims.push_back(claim);
      }
    }
    ASSIGN_OR_RETURN(WireMsg synced, roundtrip(resync));
    if (synced.op == WireOp::kError) {
      return StatusFromWire(synced);
    }
  }

  if (!resumed) {
    // The server does not remember us (grace expired, or it restarted without
    // a journal): our leases were reclaimed. Re-claim every lock this client
    // believes it holds; a conflict means someone else won it meanwhile — the
    // shared state we assumed is gone, so fail the handshake (and eventually
    // degrade) rather than run unlocked.
    for (const auto& [ino, pid] : held_locks_) {
      WireMsg lock;
      lock.op = WireOp::kLock;
      lock.ino = ino;
      lock.pid = pid;
      ASSIGN_OR_RETURN(WireMsg reply, roundtrip(lock));
      if (reply.op == WireOp::kError) {
        Status st = StatusFromWire(reply);
        return Internal(StrFormat("net: lost the lease on inode %u across a reconnect: %s",
                                  ino, st.ToString().c_str()));
      }
    }
  }
  return OkStatus();
}

Status NetClient::ReconnectLocked() {
  conn_.Close();
  if (addrs_.empty()) {
    return IoError("net: no server address to reconnect to");
  }
  Status last = IoError("net: reconnect failed");
  for (size_t k = 0; k < addrs_.size(); ++k) {
    const auto& [host, port] = addrs_[addr_index_ % addrs_.size()];
    Result<Conn> conn = DialTcp(host, port);
    if (!conn.ok()) {
      last = conn.status();
      ++addr_index_;
      continue;
    }
    conn_ = std::move(*conn);
    (void)conn_.SetRecvTimeoutMs(options_.timeout_ms);
    Status shaken = HandshakeLocked();
    if (shaken.ok()) {
      if (c_reconnects_ != nullptr) {
        ++*c_reconnects_;
      }
      return OkStatus();
    }
    last = shaken;
    conn_.Close();
    ++addr_index_;
  }
  return last;
}

Status NetClient::InstallPagesLocked(const WireMsg& reply) {
  InoCache& c = CacheOf(reply.ino);
  for (const WirePage& page : reply.pages) {
    RETURN_IF_ERROR(fs_->ReplicaInstallPage(reply.ino, page.index, page.bytes.data(),
                                            static_cast<uint32_t>(page.bytes.size())));
    uint32_t off = page.index * kPageSize;
    if (c.twin.size() < off + kPageSize) {
      c.twin.resize(off + kPageSize, 0);
    }
    std::memset(c.twin.data() + off, 0, kPageSize);
    if (!page.bytes.empty()) {
      std::memcpy(c.twin.data() + off, page.bytes.data(), page.bytes.size());
    }
    c.resident[page.index] = true;
    c.versions[page.index] = page.version;
    if (c_pages_fetched_ != nullptr) {
      ++*c_pages_fetched_;
    }
  }
  c.synced_size = reply.size;
  return OkStatus();
}

Status NetClient::ApplyInvalsLocked(std::vector<WireInval> work) {
  if (work.empty()) {
    return OkStatus();
  }
  SharedFs::ScopedRemoteBypass bypass(fs_);
  // |work| may grow: an eager re-fetch's reply carries the next batch.
  for (size_t i = 0; i < work.size(); ++i) {
    const WireInval inv = work[i];
    if (c_invals_applied_ != nullptr) {
      ++*c_invals_applied_;
    }
    switch (inv.kind) {
      case WireInvalKind::kPage: {
        auto it = cache_.find(inv.ino);
        if (it == cache_.end() || inv.value >= it->second.resident.size() ||
            !it->second.resident[inv.value]) {
          break;  // never cached: the next demand fetch gets fresh bytes anyway
        }
        // The page may be mapped into a running process, so its bytes must
        // change in place at this synchronization point: re-fetch eagerly.
        WireMsg req;
        req.op = WireOp::kFetch;
        req.ino = inv.ino;
        req.page_list.push_back(inv.value);
        ASSIGN_OR_RETURN(WireMsg reply, RoundTripLocked(req));
        if (reply.op == WireOp::kError) {
          return StatusFromWire(reply);
        }
        work.insert(work.end(), reply.invals.begin(), reply.invals.end());
        RETURN_IF_ERROR(InstallPagesLocked(reply));
        break;
      }
      case WireInvalKind::kSize: {
        Status st = fs_->Truncate(inv.ino, inv.value);
        if (!st.ok() && st.code() != ErrorCode::kNotFound) {
          return st;
        }
        InoCache& c = CacheOf(inv.ino);
        if (c.twin.size() > inv.value) {
          // The server zeroed the dropped tail; the twin must agree or the
          // zeros would read as local dirt at the next flush.
          std::fill(c.twin.begin() + inv.value, c.twin.end(), 0);
        }
        c.synced_size = inv.value;
        break;
      }
      case WireInvalKind::kPending: {
        (void)fs_->SetCreationPending(inv.ino, inv.value != 0);
        break;
      }
      case WireInvalKind::kCreated: {
        Result<uint32_t> existing = fs_->Lookup(inv.path);
        if (existing.ok()) {
          if (*existing == inv.ino) {
            break;  // already known (mount snapshot, or a resync duplicate)
          }
          Degrade(Internal("replica diverged"));
          return Internal(StrFormat("net: replica diverged: '%s' is inode %u locally, %u remotely",
                                    inv.path.c_str(), *existing, inv.ino));
        }
        Result<uint32_t> made =
            inv.node_type == static_cast<uint8_t>(SfsNodeType::kDirectory) ? fs_->Mkdir(inv.path)
            : inv.node_type == static_cast<uint8_t>(SfsNodeType::kSymlink)
                ? fs_->Symlink(inv.path, inv.target)
                : fs_->Create(inv.path);
        RETURN_IF_ERROR(made.status());
        if (*made != inv.ino) {
          Degrade(Internal("replica diverged"));
          return Internal(StrFormat("net: replica diverged: remote create of '%s' landed on %u, "
                                    "server says %u",
                                    inv.path.c_str(), *made, inv.ino));
        }
        if (inv.node_type == static_cast<uint8_t>(SfsNodeType::kRegular)) {
          CacheOf(inv.ino).synced_size = 0;
        }
        break;
      }
      case WireInvalKind::kUnlinked: {
        // Resolve by inode, not by the record's path: a resync answer for a
        // node that died while we were away carries a placeholder path, and
        // the inode is authoritative either way.
        Result<std::string> local = fs_->InodeToPath(inv.ino);
        if (local.ok()) {
          Status st = fs_->Unlink(*local, /*force=*/true);
          if (!st.ok()) {
            return st;
          }
        } else if (fs_->Lookup(inv.path).ok()) {
          Status st = fs_->Unlink(inv.path, /*force=*/true);
          if (!st.ok()) {
            return st;
          }
        }
        cache_.erase(inv.ino);
        break;
      }
    }
  }
  return OkStatus();
}

Status NetClient::Connect(const std::string& host, int port, Machine* machine) {
  return Connect(std::vector<std::pair<std::string, int>>{{host, port}}, machine);
}

Status NetClient::Connect(std::vector<std::pair<std::string, int>> addrs,
                          Machine* machine) {
  if (connected()) {
    return FailedPrecondition("net: client already connected");
  }
  if (addrs.empty()) {
    return InvalidArgument("net: no server address to connect to");
  }
  machine_ = machine;
  addrs_ = std::move(addrs);
  MetricsRegistry& metrics = machine->metrics();
  c_rpcs_ = metrics.Counter("net.client.rpcs");
  c_fetch_rpcs_ = metrics.Counter("net.client.fetch_rpcs");
  c_pages_fetched_ = metrics.Counter("net.client.pages_fetched");
  c_pages_flushed_ = metrics.Counter("net.client.pages_flushed");
  c_invals_applied_ = metrics.Counter("net.client.invals_applied");
  c_degraded_ = metrics.Counter("net.client.degraded");
  c_retries_ = metrics.Counter("net.client.retries");
  c_reconnects_ = metrics.Counter("net.client.reconnects");
  c_resumes_ = metrics.Counter("net.client.resumes");
  c_replays_dropped_ = metrics.Counter("net.client.replays_dropped");

  // One pass over the list: the first address that answers gets the mount.
  // (Retries are an RPC-level affair; a totally unreachable fleet at startup
  // is a configuration error, not weather.)
  Status dialed = IoError("net: no server address answered");
  for (size_t k = 0; k < addrs_.size(); ++k) {
    Result<Conn> conn = DialTcp(addrs_[addr_index_].first, addrs_[addr_index_].second);
    if (conn.ok()) {
      conn_ = std::move(*conn);
      break;
    }
    dialed = conn.status();
    addr_index_ = (addr_index_ + 1) % addrs_.size();
  }
  if (!connected()) {
    return dialed;
  }
  (void)conn_.SetRecvTimeoutMs(options_.timeout_ms);

  std::unique_lock<std::mutex> lock(client_mu_);
  WireMsg hello;
  hello.op = WireOp::kHello;
  hello.version = kWireVersion;
  ASSIGN_OR_RETURN(WireMsg welcome, RoundTripLocked(hello));
  if (welcome.op == WireOp::kError) {
    conn_.Close();
    return StatusFromWire(welcome);
  }
  session_ = welcome.session;
  token_ = welcome.token;
  epoch_ = welcome.epoch;

  WireMsg mount;
  mount.op = WireOp::kMount;
  ASSIGN_OR_RETURN(WireMsg snapshot, RoundTripLocked(mount));
  if (snapshot.op == WireOp::kError) {
    conn_.Close();
    return StatusFromWire(snapshot);
  }
  lock.unlock();

  // Build the replica from the snapshot — explicit inode numbers, because the
  // server's table can have holes no sequence of Creates reproduces.
  auto replica = std::make_unique<SharedFs>();
  std::vector<WireNode> nodes = snapshot.nodes;
  std::stable_sort(nodes.begin(), nodes.end(), [](const WireNode& a, const WireNode& b) {
    return PathDepth(a.path) < PathDepth(b.path);
  });
  for (const WireNode& node : nodes) {
    Status st = replica->InstallReplicaNode(node.ino, static_cast<SfsNodeType>(node.type),
                                            node.path, node.parent, node.size,
                                            node.pending != 0, node.target);
    if (!st.ok()) {
      conn_.Close();
      return st;
    }
    if (node.type == static_cast<uint8_t>(SfsNodeType::kRegular)) {
      CacheOf(node.ino).synced_size = node.size;
    }
  }
  machine->ReplaceSfs(std::move(replica));
  fs_ = &machine->sfs();
  fs_->SetRemoteBacking(this);

  // Invalidations queued between the handshake and the snapshot (another
  // client racing us) — tolerant apply: the snapshot may already contain them.
  lock.lock();
  Status applied = ApplyInvalsLocked(std::move(snapshot.invals));
  lock.unlock();
  if (!applied.ok()) {
    Disconnect();
    return applied;
  }
  return OkStatus();
}

void NetClient::Disconnect() {
  if (!connected()) {
    if (fs_ != nullptr) {
      fs_->SetRemoteBacking(nullptr);
    }
    return;
  }
  if (!degraded_) {
    (void)FlushAll();
    WireMsg bye;
    bye.op = WireOp::kBye;
    (void)Call(bye);
  }
  if (fs_ != nullptr) {
    fs_->SetRemoteBacking(nullptr);
  }
  conn_.Close();
}

Status NetClient::EnsureResident(uint32_t ino, uint32_t offset, uint32_t len) {
  if (fs_ == nullptr || len == 0) {
    return OkStatus();
  }
  Result<SfsStat> st = fs_->StatInode(ino);
  if (!st.ok() || st->type != SfsNodeType::kRegular) {
    return OkStatus();  // the local operation produces the right error
  }
  uint64_t end = std::min<uint64_t>(static_cast<uint64_t>(offset) + len, kSfsMaxFileBytes);
  if (offset >= end) {
    return OkStatus();
  }
  InoCache& c = CacheOf(ino);
  WireMsg req;
  req.op = WireOp::kFetch;
  req.ino = ino;
  for (uint32_t page = offset / kPageSize; page <= (static_cast<uint32_t>(end) - 1) / kPageSize;
       ++page) {
    if (!c.resident[page]) {
      req.page_list.push_back(page);
    }
  }
  if (req.page_list.empty()) {
    return OkStatus();  // the common warm path: no locks, no wire
  }
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  if (c_fetch_rpcs_ != nullptr) {
    ++*c_fetch_rpcs_;
  }
  return InstallPagesLocked(reply);
}

Result<uint32_t> NetClient::OnCreate(const std::string& path) {
  WireMsg req;
  req.op = WireOp::kCreate;
  req.path = NormalizePath(path);
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  CacheOf(reply.ino).synced_size = 0;
  return reply.ino;
}

Result<uint32_t> NetClient::OnMkdir(const std::string& path) {
  WireMsg req;
  req.op = WireOp::kMkdir;
  req.path = NormalizePath(path);
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  return reply.ino;
}

Result<uint32_t> NetClient::OnSymlink(const std::string& path, const std::string& target) {
  WireMsg req;
  req.op = WireOp::kSymlink;
  req.path = NormalizePath(path);
  req.target = target;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  return reply.ino;
}

Status NetClient::OnUnlink(const std::string& path, bool force) {
  Result<uint32_t> ino = fs_->Lookup(path);
  WireMsg req;
  req.op = WireOp::kUnlink;
  req.path = NormalizePath(path);
  req.flag = force ? 1 : 0;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  if (ino.ok()) {
    cache_.erase(*ino);
  }
  return OkStatus();
}

Status NetClient::OnTruncate(uint32_t ino, uint32_t new_size) {
  WireMsg req;
  req.op = WireOp::kTruncate;
  req.ino = ino;
  req.size = new_size;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  InoCache& c = CacheOf(ino);
  if (c.twin.size() > new_size) {
    std::fill(c.twin.begin() + new_size, c.twin.end(), 0);
  }
  c.synced_size = new_size;
  return OkStatus();
}

Status NetClient::OnWriteAt(uint32_t ino, uint32_t offset, const uint8_t* data, uint32_t len) {
  WireMsg req;
  req.op = WireOp::kWrite;
  req.ino = ino;
  req.offset = offset;
  req.bytes.assign(data, data + len);
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  // The server holds these bytes now; record them in the twin so the next
  // release-point diff does not flush them again.
  InoCache& c = CacheOf(ino);
  if (len > 0) {
    if (c.twin.size() < offset + len) {
      c.twin.resize(offset + len, 0);
    }
    std::memcpy(c.twin.data() + offset, data, len);
  }
  for (const WirePage& ack : reply.pages) {
    if (ack.index < c.versions.size()) {
      c.versions[ack.index] = ack.version;
    }
  }
  c.synced_size = std::max(c.synced_size, offset + len);
  return OkStatus();
}

Status NetClient::OnLock(uint32_t ino, int pid) {
  WireMsg req;
  req.op = WireOp::kLock;
  req.ino = ino;
  req.pid = pid;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);  // kWouldBlock feeds ldl's retry/backoff loop
  }
  held_locks_.emplace(ino, pid);
  return OkStatus();
}

Status NetClient::OnUnlock(uint32_t ino, int pid) {
  // Release point: publish this segment's dirty pages before the lock moves.
  RETURN_IF_ERROR(FlushInode(ino));
  WireMsg req;
  req.op = WireOp::kUnlock;
  req.ino = ino;
  req.pid = pid;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  held_locks_.erase({ino, pid});
  return OkStatus();
}

void NetClient::OnReleaseLocks(int pid) {
  if (degraded_) {
    return;
  }
  // Exit-time sweep: we do not track which inodes this pid dirtied, so publish
  // everything before the server lets its leases go.
  (void)FlushAll();
  WireMsg req;
  req.op = WireOp::kReleaseLocks;
  req.pid = pid;
  (void)Call(req);
  for (auto it = held_locks_.begin(); it != held_locks_.end();) {
    it = it->second == pid ? held_locks_.erase(it) : std::next(it);
  }
}

Status NetClient::OnSetPending(uint32_t ino, bool pending) {
  if (!pending) {
    // Clearing the creation marker publishes the finished segment: a release point.
    RETURN_IF_ERROR(FlushInode(ino));
  }
  WireMsg req;
  req.op = WireOp::kPending;
  req.ino = ino;
  req.flag = pending ? 1 : 0;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  return OkStatus();
}

Status NetClient::FlushInode(uint32_t ino) {
  Result<SfsStat> st = fs_->StatInode(ino);
  if (!st.ok() || st->type != SfsNodeType::kRegular) {
    return OkStatus();
  }
  uint32_t extent = fs_->ExtentBytes(ino);
  const uint8_t* data = fs_->DataPtr(ino);
  InoCache& c = CacheOf(ino);
  if (c.twin.size() < extent) {
    c.twin.resize(extent, 0);
  }
  WireMsg req;
  req.op = WireOp::kFlush;
  req.ino = ino;
  req.size = st->size;
  for (uint32_t off = 0; off < extent; off += kPageSize) {
    uint32_t page = off / kPageSize;
    uint32_t len = std::min(kPageSize, extent - off);
    if (std::memcmp(data + off, c.twin.data() + off, len) == 0) {
      continue;
    }
    WirePage wp;
    wp.index = page;
    bool all_zero = true;
    for (uint32_t i = 0; i < len && all_zero; ++i) {
      all_zero = data[off + i] == 0;
    }
    if (!all_zero) {
      wp.bytes.assign(data + off, data + off + len);
    }
    req.pages.push_back(std::move(wp));
    std::memcpy(c.twin.data() + off, data + off, len);
    c.resident[page] = true;
  }
  if (req.pages.empty() && req.size == c.synced_size) {
    return OkStatus();
  }
  size_t flushed = req.pages.size();
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  for (const WirePage& ack : reply.pages) {
    if (ack.index < c.versions.size()) {
      c.versions[ack.index] = ack.version;
    }
  }
  c.synced_size = req.size;
  if (c_pages_flushed_ != nullptr) {
    *c_pages_flushed_ += flushed;
  }
  return OkStatus();
}

Status NetClient::FlushAll() {
  if (fs_ == nullptr) {
    return OkStatus();
  }
  std::vector<uint32_t> inos;
  inos.reserve(cache_.size());
  for (const auto& [ino, c] : cache_) {
    inos.push_back(ino);
  }
  for (uint32_t ino : inos) {
    RETURN_IF_ERROR(FlushInode(ino));
  }
  return OkStatus();
}

Result<std::vector<std::pair<std::string, uint64_t>>> NetClient::FetchServerStats() {
  WireMsg req;
  req.op = WireOp::kStats;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  return std::move(reply.stats);
}

Result<std::pair<bool, std::string>> NetClient::RemoteCheck() {
  RETURN_IF_ERROR(FlushAll());
  WireMsg req;
  req.op = WireOp::kCheck;
  ASSIGN_OR_RETURN(WireMsg reply, Call(req));
  if (reply.op == WireOp::kError) {
    return StatusFromWire(reply);
  }
  return std::make_pair(reply.flag != 0, reply.text);
}

}  // namespace hemlock
