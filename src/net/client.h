// NetClient — the attach side of distributed shared segments.
//
// Mounts a hemserve partition over a loopback/LAN socket and keeps the local
// SharedFs a coherent replica of it (see docs/DISTRIBUTED.md):
//
//   * metadata mutations are forward-first (RemoteBacking hooks): the RPC runs
//     before the local mutation, every invalidation the server queued for this
//     session rides back on the reply and is applied first, so the replica's
//     deterministic inode allocator stays in lockstep with the server's;
//   * pages are fetched on demand at attach/fault time (EnsureResident) into
//     per-inode residency bitsets, with a *twin* copy of each fetched page kept
//     for dirty detection and the server's write version remembered per page;
//   * release points (unlock, pending-clear, exit sweep, disconnect) diff the
//     extent against the twins and flush dirty pages — lazy release
//     consistency, so guest stores through mapped pages cost nothing extra;
//   * a blocking RPC drops the calling core's kernel lock (Machine::
//     EnterNetWait) for the socket wait, so a remote fetch stalls one core,
//     not the machine.
//
// Fault tolerance (PR 10): a transport failure no longer degrades the client
// on the spot. Every RPC carries a per-session sequence number and retries
// with seeded exponential backoff inside a budget (NetClientOptions.retries);
// a retry reconnects — walking the configured address list, so a warm standby
// is reachable — and resumes the old session (HELLO resume token), then
// revalidates the replica with per-page version claims (RESYNC) instead of
// refetching the world. The server's at-most-once cache makes a retried
// CREATE/WRITE safe. Only an exhausted budget (or genuine divergence, e.g. a
// lost lease that someone else now holds) degrades the client: cached pages
// stay readable, every new mutation or fetch fails with kIoError (counted in
// net.client.degraded) — a partitioned node fails loudly, never silently
// forks the shared state.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/metrics.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/sfs/remote_backing.h"
#include "src/sfs/shared_fs.h"
#include "src/vm/machine.h"

namespace hemlock {

struct NetClientOptions {
  // Extra attempts after the first failed one. Each retry reconnects (and
  // resumes) before resending; 0 restores degrade-on-first-failure.
  int retries = 4;
  // Per-recv socket deadline — a dead server must degrade the client, not
  // hang it (was a hardcoded 30 s before the flags existed).
  int64_t timeout_ms = 30'000;
  // Base of the exponential backoff between retries (doubles per attempt,
  // plus seeded jitter of up to one base interval).
  int64_t backoff_ms = 10;
  // Jitter seed, so two clients backing off together do not stay in lockstep.
  uint64_t seed = 0;
};

class NetClient : public RemoteBacking {
 public:
  NetClient() = default;
  ~NetClient() override;

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Must be called before Connect to take effect.
  void set_options(const NetClientOptions& options) { options_ = options; }
  const NetClientOptions& options() const { return options_; }

  // Dials the server, shakes hands (version-gated), mounts the partition
  // snapshot into a fresh replica, installs it as |machine|'s shared partition,
  // and wires this client in as its RemoteBacking.
  Status Connect(const std::string& host, int port, Machine* machine);
  // Same, with a failover address list: the first address that answers gets
  // the mount; later reconnects walk the whole list (primary, then standby).
  Status Connect(std::vector<std::pair<std::string, int>> addrs, Machine* machine);
  // Flushes every dirty page, says Bye, closes. Safe to call twice.
  void Disconnect();

  bool connected() const { return conn_.fd() >= 0; }
  bool degraded() const { return degraded_; }
  uint32_t session() const { return session_; }
  uint32_t epoch() const { return epoch_; }

  // Cuts the socket without telling anyone — the next RPC must notice, retry,
  // and resume. Test hook for the reconnect path.
  void SeverForTest();

  // Server-side introspection over the wire.
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchServerStats();
  // Runs SfsCheck on the authoritative partition; returns (clean, report text).
  Result<std::pair<bool, std::string>> RemoteCheck();
  // Flushes all dirty pages now (tests and orderly shutdown).
  Status FlushAll();

  // RemoteBacking (called by the replica SharedFs under the kernel lock):
  Result<uint32_t> OnCreate(const std::string& path) override;
  Result<uint32_t> OnMkdir(const std::string& path) override;
  Result<uint32_t> OnSymlink(const std::string& path, const std::string& target) override;
  Status OnUnlink(const std::string& path, bool force) override;
  Status OnTruncate(uint32_t ino, uint32_t new_size) override;
  Status OnWriteAt(uint32_t ino, uint32_t offset, const uint8_t* data, uint32_t len) override;
  Status OnLock(uint32_t ino, int pid) override;
  Status OnUnlock(uint32_t ino, int pid) override;
  void OnReleaseLocks(int pid) override;
  Status OnSetPending(uint32_t ino, bool pending) override;
  Status EnsureResident(uint32_t ino, uint32_t offset, uint32_t len) override;

 private:
  struct InoCache {
    std::vector<bool> resident;      // kWirePagesPerFile bits: page holds server bytes
    std::vector<uint64_t> versions;  // server write version per resident page
    std::vector<uint8_t> twin;       // server content as of the last sync (zero-padded)
    uint32_t synced_size = 0;        // logical size the server last confirmed
  };

  // One full RPC at a hook boundary: drops the kernel lock for the socket wait,
  // serializes the round trip on client_mu_, re-acquires the kernel lock, then
  // applies the reply's invalidations. A kError reply is an OK *result* — the
  // caller turns it into a Status so error codes survive the wire. |req| gets
  // its sequence number assigned (which is why it is mutable).
  Result<WireMsg> Call(WireMsg& req);
  // The retrying round trip; assumes client_mu_ is held. Assigns |req|'s seq
  // on first use, resends the identical frame through reconnect/resume until
  // the budget runs out, then degrades.
  Result<WireMsg> RoundTripLocked(WireMsg& req);
  // One send + recv-until-echo-matches attempt on the current socket. Stale
  // replies (a duplicated frame answered twice) are dropped, but their
  // invalidations are kept and ride on the matching reply.
  Result<WireMsg> TryRoundTripLocked(const WireMsg& req);
  // Dials the address list and re-establishes the session: HELLO with the
  // resume token, then a RESYNC of version claims; on a fresh session (grace
  // expired / server lost us) re-claims the locks this client believes it
  // holds. Invalidations from the handshake land in carried_invals_.
  Status ReconnectLocked();
  Status HandshakeLocked();
  void BackoffSleep(int attempt);
  // Applies invalidations in server order (kernel lock held, forwarding
  // bypassed). Page invalidations of resident pages re-fetch eagerly — the
  // page may be mapped into a running process, so its bytes must change in
  // place at this synchronization point. Nested fetch replies append to the
  // same worklist (iterative, no recursion). Tolerant of duplicates: a resync
  // after a resume may repeat records the client already applied.
  Status ApplyInvalsLocked(std::vector<WireInval> work);
  // Lands a fetch reply's pages: extent, twin, residency, versions.
  Status InstallPagesLocked(const WireMsg& reply);
  // Diffs |ino|'s extent against its twin and flushes dirty pages + size.
  Status FlushInode(uint32_t ino);
  InoCache& CacheOf(uint32_t ino);
  void Degrade(const Status& why);

  Machine* machine_ = nullptr;
  SharedFs* fs_ = nullptr;
  Conn conn_;
  NetClientOptions options_;
  std::vector<std::pair<std::string, int>> addrs_;
  size_t addr_index_ = 0;
  uint32_t session_ = 0;
  uint64_t token_ = 0;
  uint32_t epoch_ = 0;
  uint32_t next_seq_ = 0;
  bool degraded_ = false;

  // Serializes round trips across cores. The socket wait happens with the
  // kernel lock *released* and client_mu_ held; the lock is re-acquired before
  // client_mu_ is dropped, so local apply order always equals server order.
  std::mutex client_mu_;

  // Guarded by the kernel lock (every hook and every apply runs under it).
  std::map<uint32_t, InoCache> cache_;
  // Locks this client's processes hold on the server — re-claimed when a
  // reconnect lands on a fresh session. (ino, pid) pairs.
  std::set<std::pair<uint32_t, int>> held_locks_;
  // Invalidations salvaged from stale replies and reconnect handshakes,
  // waiting to ride on the next matching reply (guarded by client_mu_).
  std::vector<WireInval> carried_invals_;

  uint64_t* c_rpcs_ = nullptr;
  uint64_t* c_fetch_rpcs_ = nullptr;
  uint64_t* c_pages_fetched_ = nullptr;
  uint64_t* c_pages_flushed_ = nullptr;
  uint64_t* c_invals_applied_ = nullptr;
  uint64_t* c_degraded_ = nullptr;
  uint64_t* c_retries_ = nullptr;
  uint64_t* c_reconnects_ = nullptr;
  uint64_t* c_resumes_ = nullptr;
  uint64_t* c_replays_dropped_ = nullptr;
};

}  // namespace hemlock

#endif  // SRC_NET_CLIENT_H_
