// NetClient — the attach side of distributed shared segments.
//
// Mounts a hemserve partition over a loopback/LAN socket and keeps the local
// SharedFs a coherent replica of it (see docs/DISTRIBUTED.md):
//
//   * metadata mutations are forward-first (RemoteBacking hooks): the RPC runs
//     before the local mutation, every invalidation the server queued for this
//     session rides back on the reply and is applied first, so the replica's
//     deterministic inode allocator stays in lockstep with the server's;
//   * pages are fetched on demand at attach/fault time (EnsureResident) into
//     per-inode residency bitsets, with a *twin* copy of each fetched page kept
//     for dirty detection;
//   * release points (unlock, pending-clear, exit sweep, disconnect) diff the
//     extent against the twins and flush dirty pages — lazy release
//     consistency, so guest stores through mapped pages cost nothing extra;
//   * a blocking RPC drops the calling core's kernel lock (Machine::
//     EnterNetWait) for the socket wait, so a remote fetch stalls one core,
//     not the machine;
//   * any transport failure degrades the client: cached pages stay readable,
//     every new mutation or fetch fails with kIoError (counted in
//     net.client.degraded) — a partitioned node fails loudly, never silently
//     forks the shared state.
#ifndef SRC_NET_CLIENT_H_
#define SRC_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/base/metrics.h"
#include "src/net/transport.h"
#include "src/net/wire.h"
#include "src/sfs/remote_backing.h"
#include "src/sfs/shared_fs.h"
#include "src/vm/machine.h"

namespace hemlock {

class NetClient : public RemoteBacking {
 public:
  NetClient() = default;
  ~NetClient() override;

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Dials the server, shakes hands (version-gated), mounts the partition
  // snapshot into a fresh replica, installs it as |machine|'s shared partition,
  // and wires this client in as its RemoteBacking.
  Status Connect(const std::string& host, int port, Machine* machine);
  // Flushes every dirty page, says Bye, closes. Safe to call twice.
  void Disconnect();

  bool connected() const { return conn_.fd() >= 0; }
  bool degraded() const { return degraded_; }
  uint32_t session() const { return session_; }

  // Server-side introspection over the wire.
  Result<std::vector<std::pair<std::string, uint64_t>>> FetchServerStats();
  // Runs SfsCheck on the authoritative partition; returns (clean, report text).
  Result<std::pair<bool, std::string>> RemoteCheck();
  // Flushes all dirty pages now (tests and orderly shutdown).
  Status FlushAll();

  // RemoteBacking (called by the replica SharedFs under the kernel lock):
  Result<uint32_t> OnCreate(const std::string& path) override;
  Result<uint32_t> OnMkdir(const std::string& path) override;
  Result<uint32_t> OnSymlink(const std::string& path, const std::string& target) override;
  Status OnUnlink(const std::string& path, bool force) override;
  Status OnTruncate(uint32_t ino, uint32_t new_size) override;
  Status OnWriteAt(uint32_t ino, uint32_t offset, const uint8_t* data, uint32_t len) override;
  Status OnLock(uint32_t ino, int pid) override;
  Status OnUnlock(uint32_t ino, int pid) override;
  void OnReleaseLocks(int pid) override;
  Status OnSetPending(uint32_t ino, bool pending) override;
  Status EnsureResident(uint32_t ino, uint32_t offset, uint32_t len) override;

 private:
  struct InoCache {
    std::vector<bool> resident;  // kWirePagesPerFile bits: page holds server bytes
    std::vector<uint8_t> twin;   // server content as of the last sync (zero-padded)
    uint32_t synced_size = 0;    // logical size the server last confirmed
  };

  // One full RPC at a hook boundary: drops the kernel lock for the socket wait,
  // serializes the round trip on client_mu_, re-acquires the kernel lock, then
  // applies the reply's invalidations. A kError reply is an OK *result* — the
  // caller turns it into a Status so error codes survive the wire.
  Result<WireMsg> Call(const WireMsg& req);
  // The bare round trip; assumes client_mu_ is held. Degrades on any failure.
  Result<WireMsg> RoundTripLocked(const WireMsg& req);
  // Applies invalidations in server order (kernel lock held, forwarding
  // bypassed). Page invalidations of resident pages re-fetch eagerly — the
  // page may be mapped into a running process, so its bytes must change in
  // place at this synchronization point. Nested fetch replies append to the
  // same worklist (iterative, no recursion).
  Status ApplyInvalsLocked(std::vector<WireInval> work);
  // Lands a fetch reply's pages: extent, twin, residency.
  Status InstallPagesLocked(const WireMsg& reply);
  // Diffs |ino|'s extent against its twin and flushes dirty pages + size.
  Status FlushInode(uint32_t ino);
  InoCache& CacheOf(uint32_t ino);
  void Degrade(const Status& why);

  Machine* machine_ = nullptr;
  SharedFs* fs_ = nullptr;
  Conn conn_;
  uint32_t session_ = 0;
  bool degraded_ = false;

  // Serializes round trips across cores. The socket wait happens with the
  // kernel lock *released* and client_mu_ held; the lock is re-acquired before
  // client_mu_ is dropped, so local apply order always equals server order.
  std::mutex client_mu_;

  // Guarded by the kernel lock (every hook and every apply runs under it).
  std::map<uint32_t, InoCache> cache_;

  uint64_t* c_rpcs_ = nullptr;
  uint64_t* c_fetch_rpcs_ = nullptr;
  uint64_t* c_pages_fetched_ = nullptr;
  uint64_t* c_pages_flushed_ = nullptr;
  uint64_t* c_invals_applied_ = nullptr;
  uint64_t* c_degraded_ = nullptr;
};

}  // namespace hemlock

#endif  // SRC_NET_CLIENT_H_
