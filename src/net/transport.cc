#include "src/net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/base/faults.h"
#include "src/base/strings.h"
#include "src/net/chaos.h"

namespace hemlock {

namespace {

Status SendAll(int fd, const uint8_t* data, size_t len) {
  RETURN_IF_ERROR(FaultRegistry::Global().Check("net.send"));
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(StrFormat("net: send failed: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

// |eof_ok| distinguishes "peer hung up between frames" (a clean disconnect)
// from "peer died mid-frame" (a truncated transfer).
Status RecvAll(int fd, uint8_t* out, size_t len, bool eof_ok_at_start) {
  RETURN_IF_ERROR(FaultRegistry::Global().Check("net.recv"));
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return IoError(StrFormat("net: recv failed: %s", std::strerror(errno)));
    }
    if (n == 0) {
      if (got == 0 && eof_ok_at_start) {
        return IoError("net: peer closed the connection");
      }
      return IoError("net: connection truncated mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

Conn& Conn::operator=(Conn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status Conn::Send(const WireMsg& msg) {
  if (fd_ < 0) {
    return IoError("net: send on a closed connection");
  }
  std::vector<uint8_t> frame = EncodeFrame(msg);
  switch (ChaosEngine::Global().NextSendAction()) {
    case ChaosAction::kNone:
      break;
    case ChaosAction::kDrop:
      // Lost on the wire: the sender believes it went out; the peer's recv
      // deadline expires and the retry machinery takes it from there.
      return OkStatus();
    case ChaosAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      break;
    case ChaosAction::kDup:
      RETURN_IF_ERROR(SendAll(fd_, frame.data(), frame.size()));
      break;  // and send it again below
    case ChaosAction::kTrunc: {
      // Half a frame, then hang up: the peer sees a transfer truncated
      // mid-frame, this end's next call sees a closed connection.
      size_t half = frame.size() / 2;
      if (half > 0) {
        (void)SendAll(fd_, frame.data(), half);
      }
      Close();
      return IoError("net: chaos truncated the frame mid-send");
    }
    case ChaosAction::kSever:
      Close();
      return IoError("net: chaos severed the connection");
  }
  return SendAll(fd_, frame.data(), frame.size());
}

Status Conn::SendRaw(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) {
    return IoError("net: send on a closed connection");
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + payload.size());
  uint32_t len = static_cast<uint32_t>(payload.size());
  frame.push_back(static_cast<uint8_t>(len));
  frame.push_back(static_cast<uint8_t>(len >> 8));
  frame.push_back(static_cast<uint8_t>(len >> 16));
  frame.push_back(static_cast<uint8_t>(len >> 24));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return SendAll(fd_, frame.data(), frame.size());
}

Result<WireMsg> Conn::Recv() {
  if (fd_ < 0) {
    return IoError("net: recv on a closed connection");
  }
  uint8_t len_bytes[4];
  RETURN_IF_ERROR(RecvAll(fd_, len_bytes, sizeof(len_bytes), /*eof_ok_at_start=*/true));
  uint32_t len = static_cast<uint32_t>(len_bytes[0]) | (static_cast<uint32_t>(len_bytes[1]) << 8) |
                 (static_cast<uint32_t>(len_bytes[2]) << 16) |
                 (static_cast<uint32_t>(len_bytes[3]) << 24);
  if (len == 0 || len > kMaxWirePayload) {
    // Reject the length before allocating: a hostile 4 GB prefix must not
    // become an allocation bomb.
    return CorruptData(StrFormat("wire: frame length %u outside (0, %u]", len, kMaxWirePayload));
  }
  std::vector<uint8_t> payload(len);
  RETURN_IF_ERROR(RecvAll(fd_, payload.data(), len, /*eof_ok_at_start=*/false));
  return DecodePayload(payload);
}

Status Conn::SetRecvTimeoutMs(int64_t ms) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return IoError(StrFormat("net: setsockopt(SO_RCVTIMEO): %s", std::strerror(errno)));
  }
  return OkStatus();
}

void Conn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Conn> DialTcp(const std::string& host, int port) {
  RETURN_IF_ERROR(FaultRegistry::Global().Check("net.connect"));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("net: bad IPv4 host address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(StrFormat("net: socket: %s", std::strerror(errno)));
  }
  int r;
  do {
    r = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (r != 0 && errno == EINTR);
  if (r != 0) {
    Status st = IoError(StrFormat("net: connect %s:%d: %s", host.c_str(), port,
                                  std::strerror(errno)));
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Conn(fd);
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Listener> Listener::ListenTcp(const std::string& host, int port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgument("net: bad IPv4 host address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return IoError(StrFormat("net: socket: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = IoError(StrFormat("net: bind port %d: %s", port, std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st = IoError(StrFormat("net: listen: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    Status st = IoError(StrFormat("net: getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  Listener l;
  l.fd_ = fd;
  l.port_ = ntohs(addr.sin_port);
  return l;
}

Result<Conn> Listener::Accept() {
  RETURN_IF_ERROR(FaultRegistry::Global().Check("net.accept"));
  int fd;
  do {
    fd = ::accept(fd_, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return IoError(StrFormat("net: accept: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Conn(fd);
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace hemlock
