// The hemserve mutation journal ("HEMJ") — server restart without forking
// the region.
//
// The server's durable truth is two files: the SFS state image (--state) and
// this journal (--journal). A checkpoint writes both atomically-enough (state
// to tmp+rename, then the journal rewritten with a fresh nonce and an empty
// record tail); between checkpoints every *successful effectful* request is
// appended here as the raw wire payload plus the session that issued it, and
// session births/deaths are recorded so resume tokens survive. Restart =
// load state, decode the header's server-meta checkpoint, then re-dispatch
// the record tail: deterministic inode/pseudo-pid allocation replays into the
// exact pre-kill server state, including each detached session's pending
// invalidation queue and at-most-once reply cache.
//
// The file is written with write-behind discipline (flushed to the OS after
// every record, never fsynced): a SIGKILL of the server loses nothing, and a
// machine crash at worst drops a suffix. The reader tolerates a torn tail —
// a record whose length or CRC does not check out ends the replay, exactly
// like PosixStore's index recovery.
//
// A warm standby (`hemserve --standby`) loads the same two files and re-tails
// the journal on every poll round; the nonce in the header tells it when the
// primary checkpointed (full reload) vs merely appended (replay the delta).
#ifndef SRC_NET_JOURNAL_H_
#define SRC_NET_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace hemlock {

inline constexpr uint32_t kJournalMagic = 0x48454D4Au;  // "HEMJ"
inline constexpr uint16_t kJournalVersion = 1;

enum class JournalRecordType : uint8_t {
  kRequest = 1,         // |session| executed the wire request in |payload|
  kSessionCreated = 2,  // |session| was born with resume token |token|
  kSessionDropped = 3,  // |session| is gone for good (leases reclaimed)
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kRequest;
  uint32_t session = 0;
  uint64_t token = 0;
  std::vector<uint8_t> payload;

  bool operator==(const JournalRecord&) const = default;
};

// Everything a reader gets from one pass over the file.
struct JournalContents {
  uint64_t nonce = 0;  // header identity; bumps on every checkpoint rewrite
  std::vector<uint8_t> checkpoint;  // opaque server-meta blob
  std::vector<JournalRecord> records;  // the valid prefix; a torn tail is dropped
};

// The append side (the primary server).
class Journal {
 public:
  Journal() = default;
  ~Journal() { Close(); }
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens |path| for appending. An absent or empty file gets a fresh header
  // carrying |checkpoint|; an existing one is left as-is (the caller replays
  // it first via Load and keeps appending after the valid tail — which is the
  // whole file, because Load is what decided where the tail ends).
  Status Open(const std::string& path, const std::vector<uint8_t>& checkpoint);

  // Checkpoint: rewrites the file as header(nonce+1) + |checkpoint| with an
  // empty record tail, via tmp+rename so a crash leaves old or new, not soup.
  Status Rewrite(const std::vector<uint8_t>& checkpoint);

  Status Append(const JournalRecord& rec);

  bool open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  uint64_t nonce() const { return nonce_; }
  uint64_t records_appended() const { return records_appended_; }

  void Close();

  // The read side (restart and standby tailing). Rejects a bad magic/version;
  // tolerates — and silently drops — a torn record tail.
  static Result<JournalContents> Load(const std::string& path);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t nonce_ = 0;
  uint64_t records_appended_ = 0;
};

}  // namespace hemlock

#endif  // SRC_NET_JOURNAL_H_
