#include "src/net/server.h"

#include <poll.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <set>

#include "src/base/strings.h"
#include "src/sfs/sfs_check.h"

namespace hemlock {

namespace {

bool AllZero(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) {
      return false;
    }
  }
  return true;
}

// Ops that mutate the partition (or the lease table) get at-most-once
// treatment and a journal record; everything else re-executes freely on a
// retransmit.
bool IsEffectful(WireOp op) {
  switch (op) {
    case WireOp::kCreate:
    case WireOp::kMkdir:
    case WireOp::kSymlink:
    case WireOp::kUnlink:
    case WireOp::kTruncate:
    case WireOp::kWrite:
    case WireOp::kFlush:
    case WireOp::kLock:
    case WireOp::kUnlock:
    case WireOp::kReleaseLocks:
    case WireOp::kPending:
      return true;
    default:
      return false;
  }
}

void AppendInvalIfNew(std::vector<WireInval>* invals, const WireInval& inv) {
  if (std::find(invals->begin(), invals->end(), inv) == invals->end()) {
    invals->push_back(inv);
  }
}

}  // namespace

SegmentServer::SegmentServer(std::unique_ptr<SharedFs> fs,
                             SegmentServerOptions options)
    : fs_(fs != nullptr ? std::move(fs) : std::make_unique<SharedFs>()),
      options_(std::move(options)),
      standby_(options_.standby) {
  c_sessions_ = metrics_.Counter("net.server.sessions");
  c_disconnects_ = metrics_.Counter("net.server.disconnects");
  c_rpcs_ = metrics_.Counter("net.server.rpcs");
  c_pages_fetched_ = metrics_.Counter("net.server.pages_fetched");
  c_pages_flushed_ = metrics_.Counter("net.server.pages_flushed");
  c_invals_queued_ = metrics_.Counter("net.server.invals_queued");
  c_lock_waits_ = metrics_.Counter("net.server.lock_waits");
  c_leases_reclaimed_ = metrics_.Counter("net.server.leases_reclaimed");
  c_resumes_ = metrics_.Counter("net.server.resumes");
  c_replays_ = metrics_.Counter("net.server.replays");
  c_journal_records_ = metrics_.Counter("net.server.journal_records");
  c_checkpoints_ = metrics_.Counter("net.server.checkpoints");
  InstallPidProber();
}

void SegmentServer::InstallPidProber() {
  // Wire leases plug into PR 2's dead-holder detection: a lock owner is "alive"
  // exactly while the session that took it still exists — and a *detached*
  // session inside its resume grace still exists, which is what keeps a
  // briefly-partitioned client's leases from being swept out from under it.
  fs_->SetPidProber([this](int pid) {
    for (const auto& [id, session] : sessions_) {
      for (const auto& [client_pid, pseudo] : session.pseudo_pids) {
        if (pseudo == pid) {
          return true;
        }
      }
    }
    return false;
  });
}

SegmentServer::~SegmentServer() { Stop(); }

Status SegmentServer::Listen(const std::string& host, int port) {
  ASSIGN_OR_RETURN(listener_, Listener::ListenTcp(host, port));
  return OkStatus();
}

Status SegmentServer::Start() {
  if (!listener_.ok()) {
    return FailedPrecondition("net: server not listening");
  }
  if (serving_) {
    return FailedPrecondition("net: server already started");
  }
  stop_.store(false);
  serving_ = true;
  serve_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      (void)PollOnce(50);
    }
  });
  return OkStatus();
}

void SegmentServer::Stop() {
  if (!serving_) {
    return;
  }
  stop_.store(true);
  serve_thread_.join();
  serving_ = false;
}

size_t SegmentServer::SessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.attached) {
      ++n;
    }
  }
  return n;
}

size_t SegmentServer::TotalSessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

uint64_t SegmentServer::NewToken() {
  // Deterministic (journal replay must mint the same tokens) but unguessable
  // enough that a stray client cannot stumble into someone else's session by
  // echoing its own id back.
  return (++token_seq_) * 0x9E3779B97F4A7C15ull | 1;
}

void SegmentServer::JournalAppend(const JournalRecord& rec) {
  if (replaying_ || !journal_.open()) {
    return;
  }
  Status appended = journal_.Append(rec);
  if (!appended.ok()) {
    // A journal we can no longer write is worse than none: close it so restart
    // does not replay a history that stopped short of reality.
    std::fprintf(stderr, "[hemserve] journal disabled: %s\n",
                 appended.ToString().c_str());
    journal_.Close();
    return;
  }
  ++*c_journal_records_;
  if (options_.checkpoint_every != 0 && !options_.state_path.empty() &&
      journal_.records_appended() >= options_.checkpoint_every) {
    (void)Checkpoint();
  }
}

Status SegmentServer::PollOnce(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (standby_) {
    // Warm failover: track the primary through its journal and wait. The
    // first client to dial us is the signal that the primary is gone.
    struct pollfd pfd = {listener_.fd(), POLLIN, 0};
    int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0 && errno != EINTR) {
      return IoError(StrFormat("net: poll: %s", std::strerror(errno)));
    }
    RETURN_IF_ERROR(TailJournal());
    if (n <= 0 || (pfd.revents & POLLIN) == 0) {
      return OkStatus();
    }
    standby_ = false;
    if (!options_.journal_path.empty()) {
      (void)journal_.Open(options_.journal_path, EncodeMeta());
    }
    // Fall through and serve the connection that promoted us.
  }
  ReapExpiredSessions();
  std::vector<struct pollfd> fds;
  std::vector<uint32_t> ids;
  fds.push_back({listener_.fd(), POLLIN, 0});
  ids.push_back(0);
  for (const auto& [id, session] : sessions_) {
    if (!session.attached) {
      continue;  // a detached session has no socket until it resumes
    }
    fds.push_back({session.conn.fd(), POLLIN, 0});
    ids.push_back(id);
  }
  int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return OkStatus();
    }
    return IoError(StrFormat("net: poll: %s", std::strerror(errno)));
  }
  if (n == 0) {
    return OkStatus();
  }
  if (fds[0].revents & POLLIN) {
    Result<Conn> conn = listener_.Accept();
    if (conn.ok()) {
      Session s;
      s.id = next_session_++;
      s.conn = std::move(*conn);
      // A peer that stops mid-frame must not wedge the loop forever.
      (void)s.conn.SetRecvTimeoutMs(options_.recv_timeout_ms);
      ++*c_sessions_;
      sessions_.emplace(s.id, std::move(s));
    }
  }
  for (size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    Session* s = FindSession(ids[i]);
    if (s == nullptr || !s->attached) {
      continue;
    }
    Result<WireMsg> req = s->conn.Recv();
    if (!req.ok()) {
      Detach(ids[i], req.status().message().c_str());
      continue;
    }
    ++*c_rpcs_;
    if (req->op == WireOp::kHello) {
      HandleHello(ids[i], *req);
      continue;
    }
    if (!s->hello_done) {
      WireMsg err = Err(*s, req->op, FailedPrecondition("net: request before HELLO"));
      err.seq = req->seq;
      if (!s->conn.Send(err).ok()) {
        Detach(ids[i], "send failed");
      }
      continue;
    }
    WireMsg reply = ExecuteTracked(*s, *req);
    Status sent = s->conn.Send(reply);
    if (req->op == WireOp::kBye) {
      DropSession(ids[i], "bye");
    } else if (!sent.ok()) {
      Detach(ids[i], sent.message().c_str());
    }
  }
  return OkStatus();
}

void SegmentServer::HandleHello(uint32_t provisional_id, const WireMsg& req) {
  Session* prov = FindSession(provisional_id);
  if (prov == nullptr) {
    return;
  }
  if (req.version != kWireVersion) {
    WireMsg err = Err(*prov, WireOp::kHello,
                      UnsupportedVersion(StrFormat("net: protocol version %u, server speaks %u",
                                                   req.version, kWireVersion)));
    if (!prov->conn.Send(err).ok()) {
      DropSession(provisional_id, "hello send failed");
    }
    return;
  }
  if (prov->hello_done) {
    // A duplicated HELLO frame on an established session (chaos `dup`):
    // re-answer idempotently — rotating the token here would orphan the
    // client's copy and break every later resume.
    WireMsg again = Ack(*prov, WireOp::kHello);
    again.session = prov->id;
    again.version = kWireVersion;
    again.token = prov->token;
    again.epoch = prov->epoch;
    again.resumed = 0;
    if (!prov->conn.Send(again).ok()) {
      Detach(provisional_id, "hello re-send failed");
    }
    return;
  }
  Session* target = prov;
  uint8_t resumed = 0;
  if (req.resume_session != 0 && req.resume_token != 0) {
    Session* old = FindSession(req.resume_session);
    if (old != nullptr && old != prov && old->hello_done &&
        old->token == req.resume_token) {
      // The client is back inside its grace: adopt the new socket, keep every
      // lease, pending invalidation, and the at-most-once cache.
      old->conn = std::move(prov->conn);
      old->attached = true;
      ++old->epoch;
      sessions_.erase(provisional_id);
      target = old;
      resumed = 1;
      ++*c_resumes_;
    }
    // Unknown session or wrong token: fall through to a fresh session — the
    // client re-bootstraps (mount, lock re-claim) on its side.
  }
  if (resumed == 0) {
    target->hello_done = true;
    target->token = NewToken();
    target->epoch = 1;
    if (target->id >= next_session_) {
      next_session_ = target->id + 1;
    }
    JournalRecord rec;
    rec.type = JournalRecordType::kSessionCreated;
    rec.session = target->id;
    rec.token = target->token;
    JournalAppend(rec);
  }
  // The hello reply drains the pending queue: a resumed session's backlog of
  // missed invalidations rides home on the handshake itself.
  WireMsg reply = Ack(*target, WireOp::kHello);
  reply.session = target->id;
  reply.version = kWireVersion;
  reply.token = target->token;
  reply.epoch = target->epoch;
  reply.resumed = resumed;
  Status sent = target->conn.Send(reply);
  if (!sent.ok()) {
    Detach(target->id, sent.message().c_str());
  }
}

WireMsg SegmentServer::ExecuteTracked(Session& s, const WireMsg& req) {
  const bool effectful = IsEffectful(req.op);
  if (req.seq != 0) {
    if (effectful && req.seq == s.last_seq && s.has_cached &&
        s.cached_reply.seq == req.seq) {
      // A retransmit of the last effectful request: the state change already
      // happened, so replay the cached reply instead of applying it twice.
      // Invalidations that accrued since the original execution ride along.
      WireMsg replay = s.cached_reply;
      replay.replayed = 1;
      for (const WireInval& inv : s.pending) {
        AppendInvalIfNew(&replay.invals, inv);
      }
      s.pending.clear();
      ++*c_replays_;
      return replay;
    }
    if (req.seq < s.last_seq) {
      WireMsg err = Err(s, req.op,
                        FailedPrecondition("net: stale retransmit (sequence already executed)"));
      err.seq = req.seq;
      return err;
    }
  }
  WireMsg reply = Dispatch(s, req);
  reply.seq = req.seq;
  if (req.seq != 0) {
    s.last_seq = req.seq;
  }
  if (effectful && req.seq != 0) {
    if (reply.op == WireOp::kReply) {
      JournalRecord rec;
      rec.session = s.id;
      rec.payload = EncodePayload(req);
      JournalAppend(rec);
    }
    s.cached_reply = reply;
    s.has_cached = true;
  }
  return reply;
}

SegmentServer::Session* SegmentServer::FindSession(uint32_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

int SegmentServer::PseudoPid(Session& s, int32_t pid) {
  auto it = s.pseudo_pids.find(pid);
  if (it != s.pseudo_pids.end()) {
    return it->second;
  }
  int pseudo = next_pseudo_pid_++;
  s.pseudo_pids.emplace(pid, pseudo);
  return pseudo;
}

void SegmentServer::Detach(uint32_t id, const char* why) {
  Session* s = FindSession(id);
  if (s == nullptr) {
    return;
  }
  // A session that never finished HELLO has nothing worth resuming; with a
  // zero grace the old drop-on-disconnect behavior applies.
  if (!s->hello_done || options_.resume_grace_ms <= 0) {
    DropSession(id, why);
    return;
  }
  s->conn.Close();
  s->attached = false;
  s->detached_at = std::chrono::steady_clock::now();
  ++*c_disconnects_;
}

void SegmentServer::ReapExpiredSessions() {
  if (sessions_.empty()) {
    return;
  }
  auto now = std::chrono::steady_clock::now();
  std::vector<uint32_t> expired;
  for (const auto& [id, s] : sessions_) {
    if (!s.attached &&
        now - s.detached_at >= std::chrono::milliseconds(options_.resume_grace_ms)) {
      expired.push_back(id);
    }
  }
  for (uint32_t id : expired) {
    DropSession(id, "resume grace expired");
  }
}

void SegmentServer::DropSession(uint32_t id, const char* why) {
  Session* s = FindSession(id);
  if (s == nullptr) {
    return;
  }
  (void)why;
  // Dead-client reclamation: every wire lease the session held is released
  // (waking nothing here — remote waiters re-try their Lock RPC and find the
  // inode free), every cached-page claim is dropped.
  for (const auto& [client_pid, pseudo] : s->pseudo_pids) {
    for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
      if (fs_->LockOwner(ino) == pseudo) {
        ++*c_leases_reclaimed_;
      }
    }
    fs_->ReleaseLocksOf(pseudo);
  }
  directory_.DropSession(id);
  if (s->attached) {
    ++*c_disconnects_;
  }
  if (s->hello_done) {
    JournalRecord rec;
    rec.type = JournalRecordType::kSessionDropped;
    rec.session = id;
    JournalAppend(rec);
  }
  sessions_.erase(id);
}

void SegmentServer::QueueInvalTo(Session& s, const WireInval& inv) {
  if (std::find(s.pending.begin(), s.pending.end(), inv) != s.pending.end()) {
    return;  // an identical record is already queued
  }
  s.pending.push_back(inv);
  ++*c_invals_queued_;
}

void SegmentServer::QueueInval(uint32_t except, const WireInval& inv) {
  for (auto& [id, session] : sessions_) {
    if (id != except) {
      QueueInvalTo(session, inv);
    }
  }
}

WireMsg SegmentServer::Ack(Session& s, WireOp reply_to) {
  WireMsg m;
  m.op = WireOp::kReply;
  m.reply_to = static_cast<uint8_t>(reply_to);
  m.invals = std::move(s.pending);
  s.pending.clear();
  return m;
}

WireMsg SegmentServer::Err(Session& s, WireOp reply_to, const Status& st) {
  WireMsg m = WireErrorFrom(st);
  m.reply_to = static_cast<uint8_t>(reply_to);
  // Errors drain the queue too: a client spinning on a contended lock keeps
  // observing remote progress between retries.
  m.invals = std::move(s.pending);
  s.pending.clear();
  return m;
}

WireMsg SegmentServer::HandleMount(Session& s) {
  WireMsg reply = Ack(s, WireOp::kMount);
  for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
    Result<SfsStat> st = fs_->StatInode(ino);
    if (!st.ok()) {
      continue;
    }
    WireNode node;
    node.ino = ino;
    node.type = static_cast<uint8_t>(st->type);
    node.size = st->size;
    node.pending = fs_->CreationPending(ino) ? 1 : 0;
    Result<std::string> path = fs_->InodeToPath(ino);
    if (!path.ok()) {
      continue;
    }
    node.path = *path;
    Result<uint32_t> parent = fs_->Lookup(PathDirname(node.path));
    node.parent = parent.ok() ? *parent : 1;
    if (st->type == SfsNodeType::kSymlink) {
      Result<std::string> target = fs_->ReadLink(node.path);
      if (target.ok()) {
        node.target = *target;
      }
    }
    reply.nodes.push_back(std::move(node));
  }
  return reply;
}

WireMsg SegmentServer::HandleFetch(Session& s, const WireMsg& req) {
  Result<SfsStat> st = fs_->StatInode(req.ino);
  if (!st.ok()) {
    return Err(s, WireOp::kFetch, st.status());
  }
  if (st->type != SfsNodeType::kRegular) {
    return Err(s, WireOp::kFetch, InvalidArgument("net: fetch of a non-file inode"));
  }
  WireMsg reply = Ack(s, WireOp::kFetch);
  reply.ino = req.ino;
  reply.size = st->size;
  const uint8_t* data = fs_->DataPtr(req.ino);
  uint32_t extent = fs_->ExtentBytes(req.ino);
  for (uint32_t idx : req.page_list) {
    WirePage page;
    page.index = idx;
    uint32_t off = idx * kPageSize;
    if (off < extent) {
      uint32_t len = std::min<uint32_t>(kPageSize, extent - off);
      if (!AllZero(data + off, len)) {
        page.bytes.assign(data + off, data + off + len);
      }
    }
    // Pages past the extent (or all zero) travel as the empty marker.
    directory_.NoteFetch(req.ino, idx, s.id);
    page.version = directory_.VersionOf(req.ino, idx);
    ++*c_pages_fetched_;
    reply.pages.push_back(std::move(page));
  }
  return reply;
}

WireMsg SegmentServer::HandleFlush(Session& s, const WireMsg& req) {
  Result<SfsStat> st = fs_->StatInode(req.ino);
  if (!st.ok()) {
    return Err(s, WireOp::kFlush, st.status());
  }
  if (st->type != SfsNodeType::kRegular) {
    return Err(s, WireOp::kFlush, InvalidArgument("net: flush of a non-file inode"));
  }
  auto invalidate = [this, &req](uint32_t page_idx) {
    return [this, &req, page_idx](uint32_t session_id) {
      Session* other = FindSession(session_id);
      if (other != nullptr) {
        WireInval inv;
        inv.kind = WireInvalKind::kPage;
        inv.ino = req.ino;
        inv.value = page_idx;
        QueueInvalTo(*other, inv);
      }
    };
  };
  for (const WirePage& page : req.pages) {
    uint32_t off = page.index * kPageSize;
    uint32_t len = page.bytes.empty() ? kPageSize
                                      : static_cast<uint32_t>(page.bytes.size());
    uint32_t end = std::min<uint64_t>(static_cast<uint64_t>(off) + len, kSfsMaxFileBytes);
    Status grown = fs_->EnsureExtent(req.ino, end);
    if (!grown.ok()) {
      return Err(s, WireOp::kFlush, grown);
    }
    uint8_t* data = fs_->DataPtr(req.ino);
    if (page.bytes.empty()) {
      std::memset(data + off, 0, end - off);
    } else {
      std::memcpy(data + off, page.bytes.data(), page.bytes.size());
    }
    directory_.NoteWrite(req.ino, page.index, s.id, invalidate(page.index));
    ++*c_pages_flushed_;
  }
  if (req.size != st->size) {
    Status resized = fs_->Truncate(req.ino, req.size);
    if (!resized.ok()) {
      return Err(s, WireOp::kFlush, resized);
    }
    WireInval inv;
    inv.kind = WireInvalKind::kSize;
    inv.ino = req.ino;
    inv.value = req.size;
    QueueInval(s.id, inv);
  }
  WireMsg reply = Ack(s, WireOp::kFlush);
  // Version-only acks: the writer learns the new version of each page it just
  // flushed, so a later RESYNC claim revalidates instead of refetching.
  for (const WirePage& page : req.pages) {
    WirePage ack;
    ack.index = page.index;
    ack.version = directory_.VersionOf(req.ino, page.index);
    reply.pages.push_back(std::move(ack));
  }
  return reply;
}

WireMsg SegmentServer::HandleResync(Session& s, const WireMsg& req) {
  WireMsg reply = Ack(s, WireOp::kResync);
  std::set<uint32_t> claimed;
  for (const WireClaim& claim : req.claims) {
    if (claim.page == kWireSizeClaim) {
      claimed.insert(claim.ino);
      Result<SfsStat> st = fs_->StatInode(claim.ino);
      if (!st.ok()) {
        // The node died while the client was away. The client resolves the
        // path from its own replica by inode — the placeholder is never used.
        WireInval inv;
        inv.kind = WireInvalKind::kUnlinked;
        inv.ino = claim.ino;
        inv.path = "/";
        AppendInvalIfNew(&reply.invals, inv);
        continue;
      }
      if (st->type == SfsNodeType::kRegular) {
        if (st->size != claim.version) {
          WireInval inv;
          inv.kind = WireInvalKind::kSize;
          inv.ino = claim.ino;
          inv.value = st->size;
          AppendInvalIfNew(&reply.invals, inv);
        }
        WireInval pend;
        pend.kind = WireInvalKind::kPending;
        pend.ino = claim.ino;
        pend.value = fs_->CreationPending(claim.ino) ? 1 : 0;
        AppendInvalIfNew(&reply.invals, pend);
      }
    } else {
      // Page claim: a version match revalidates the cached copy (and re-joins
      // the reader set so future writes invalidate us again); a mismatch means
      // "your copy is stale — refetch".
      if (directory_.VersionOf(claim.ino, claim.page) == claim.version) {
        directory_.NoteFetch(claim.ino, claim.page, s.id);
      } else {
        WireInval inv;
        inv.kind = WireInvalKind::kPage;
        inv.ino = claim.ino;
        inv.value = claim.page;
        AppendInvalIfNew(&reply.invals, inv);
      }
    }
  }
  // Nodes born while the client was away were never claimed: announce them the
  // same way live creations are.
  for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
    if (claimed.count(ino) != 0) {
      continue;
    }
    Result<SfsStat> st = fs_->StatInode(ino);
    if (!st.ok()) {
      continue;
    }
    Result<std::string> path = fs_->InodeToPath(ino);
    if (!path.ok()) {
      continue;
    }
    WireInval inv;
    inv.kind = WireInvalKind::kCreated;
    inv.ino = ino;
    inv.node_type = static_cast<uint8_t>(st->type);
    inv.path = *path;
    if (st->type == SfsNodeType::kSymlink) {
      Result<std::string> target = fs_->ReadLink(*path);
      if (target.ok()) {
        inv.target = *target;
      }
    }
    AppendInvalIfNew(&reply.invals, inv);
    if (st->type == SfsNodeType::kRegular) {
      if (st->size != 0) {
        WireInval sz;
        sz.kind = WireInvalKind::kSize;
        sz.ino = ino;
        sz.value = st->size;
        AppendInvalIfNew(&reply.invals, sz);
      }
      if (fs_->CreationPending(ino)) {
        WireInval pend;
        pend.kind = WireInvalKind::kPending;
        pend.ino = ino;
        pend.value = 1;
        AppendInvalIfNew(&reply.invals, pend);
      }
    }
  }
  return reply;
}

WireMsg SegmentServer::Dispatch(Session& s, const WireMsg& req) {
  if (!s.hello_done) {
    return Err(s, req.op, FailedPrecondition("net: request before HELLO"));
  }
  switch (req.op) {
    case WireOp::kMount:
      return HandleMount(s);
    case WireOp::kFetch:
      return HandleFetch(s, req);
    case WireOp::kFlush:
      return HandleFlush(s, req);
    case WireOp::kResync:
      return HandleResync(s, req);
    case WireOp::kCreate: {
      Result<uint32_t> ino = fs_->Create(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kCreate, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kRegular);
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kCreate);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kMkdir: {
      Result<uint32_t> ino = fs_->Mkdir(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kMkdir, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kDirectory);
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kMkdir);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kSymlink: {
      Result<uint32_t> ino = fs_->Symlink(req.path, req.target);
      if (!ino.ok()) {
        return Err(s, WireOp::kSymlink, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kSymlink);
      inv.path = NormalizePath(req.path);
      inv.target = req.target;
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kSymlink);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kUnlink: {
      Result<uint32_t> ino = fs_->Lookup(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kUnlink, ino.status());
      }
      Status st = fs_->Unlink(req.path, req.flag != 0);
      if (!st.ok()) {
        return Err(s, WireOp::kUnlink, st);
      }
      directory_.DropInode(*ino);
      WireInval inv;
      inv.kind = WireInvalKind::kUnlinked;
      inv.ino = *ino;
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      return Ack(s, WireOp::kUnlink);
    }
    case WireOp::kTruncate: {
      Result<SfsStat> before = fs_->StatInode(req.ino);
      if (!before.ok()) {
        return Err(s, WireOp::kTruncate, before.status());
      }
      uint32_t old_extent = fs_->ExtentBytes(req.ino);
      Status st = fs_->Truncate(req.ino, req.size);
      if (!st.ok()) {
        return Err(s, WireOp::kTruncate, st);
      }
      WireInval inv;
      inv.kind = WireInvalKind::kSize;
      inv.ino = req.ino;
      inv.value = req.size;
      QueueInval(s.id, inv);
      // A shrink zeroed [new_size, extent): readers caching those pages hold
      // stale bytes now.
      for (uint32_t off = req.size & ~(kPageSize - 1); off < old_extent; off += kPageSize) {
        uint32_t page_idx = off / kPageSize;
        directory_.NoteWrite(req.ino, page_idx, s.id, [this, &req, page_idx](uint32_t id) {
          Session* other = FindSession(id);
          if (other != nullptr) {
            WireInval pinv;
            pinv.kind = WireInvalKind::kPage;
            pinv.ino = req.ino;
            pinv.value = page_idx;
            QueueInvalTo(*other, pinv);
          }
        });
      }
      return Ack(s, WireOp::kTruncate);
    }
    case WireOp::kWrite: {
      Result<SfsStat> before = fs_->StatInode(req.ino);
      if (!before.ok()) {
        return Err(s, WireOp::kWrite, before.status());
      }
      Status st = fs_->WriteAt(req.ino, req.offset, req.bytes.data(),
                               static_cast<uint32_t>(req.bytes.size()));
      if (!st.ok()) {
        return Err(s, WireOp::kWrite, st);
      }
      uint32_t first = 0;
      uint32_t last = 0;
      if (!req.bytes.empty()) {
        first = req.offset / kPageSize;
        last = (req.offset + static_cast<uint32_t>(req.bytes.size()) - 1) / kPageSize;
        for (uint32_t page_idx = first; page_idx <= last; ++page_idx) {
          directory_.NoteWrite(req.ino, page_idx, s.id, [this, &req, page_idx](uint32_t id) {
            Session* other = FindSession(id);
            if (other != nullptr) {
              WireInval pinv;
              pinv.kind = WireInvalKind::kPage;
              pinv.ino = req.ino;
              pinv.value = page_idx;
              QueueInvalTo(*other, pinv);
            }
          });
        }
      }
      Result<SfsStat> after = fs_->StatInode(req.ino);
      if (after.ok() && after->size != before->size) {
        WireInval inv;
        inv.kind = WireInvalKind::kSize;
        inv.ino = req.ino;
        inv.value = after->size;
        QueueInval(s.id, inv);
      }
      WireMsg reply = Ack(s, WireOp::kWrite);
      if (!req.bytes.empty()) {
        for (uint32_t page_idx = first; page_idx <= last; ++page_idx) {
          WirePage ack;
          ack.index = page_idx;
          ack.version = directory_.VersionOf(req.ino, page_idx);
          reply.pages.push_back(std::move(ack));
        }
      }
      return reply;
    }
    case WireOp::kLock: {
      Status st = fs_->LockInode(req.ino, PseudoPid(s, req.pid));
      if (!st.ok()) {
        if (st.code() == ErrorCode::kWouldBlock) {
          ++*c_lock_waits_;
        }
        return Err(s, WireOp::kLock, st);
      }
      return Ack(s, WireOp::kLock);
    }
    case WireOp::kUnlock: {
      Status st = fs_->UnlockInode(req.ino, PseudoPid(s, req.pid));
      if (!st.ok()) {
        return Err(s, WireOp::kUnlock, st);
      }
      return Ack(s, WireOp::kUnlock);
    }
    case WireOp::kReleaseLocks: {
      auto it = s.pseudo_pids.find(req.pid);
      if (it != s.pseudo_pids.end()) {
        fs_->ReleaseLocksOf(it->second);
        s.pseudo_pids.erase(it);
      }
      return Ack(s, WireOp::kReleaseLocks);
    }
    case WireOp::kPending: {
      Status st = fs_->SetCreationPending(req.ino, req.flag != 0);
      if (!st.ok()) {
        return Err(s, WireOp::kPending, st);
      }
      WireInval inv;
      inv.kind = WireInvalKind::kPending;
      inv.ino = req.ino;
      inv.value = req.flag;
      QueueInval(s.id, inv);
      return Ack(s, WireOp::kPending);
    }
    case WireOp::kCheck: {
      SfsCheckReport report;
      SfsCheck(fs_.get()).Run(/*at_boot=*/false, &report);
      WireMsg reply = Ack(s, WireOp::kCheck);
      reply.flag = report.structurally_clean() ? 1 : 0;
      reply.text = report.ToString();
      return reply;
    }
    case WireOp::kStats: {
      WireMsg reply = Ack(s, WireOp::kStats);
      MetricsSnapshot snap = metrics_.Snapshot();
      for (const auto& [name, value] : snap) {
        reply.stats.emplace_back(name, value);
      }
      reply.stats.emplace_back("net.server.coherence.downgrades", directory_.downgrades());
      reply.stats.emplace_back("net.server.coherence.invalidations", directory_.invalidations());
      return reply;
    }
    case WireOp::kBye:
      return Ack(s, WireOp::kBye);
    default:
      return Err(s, req.op, InvalidArgument("net: request opcode not servable"));
  }
}

// ---------------------------------------------------------------------------
// Journal: checkpoint meta, replay, standby tailing.

std::vector<uint8_t> SegmentServer::EncodeMeta() const {
  ByteWriter w;
  w.U32(next_session_);
  w.I32(next_pseudo_pid_);
  w.U64(token_seq_);
  directory_.Serialize(&w);
  uint32_t count = 0;
  for (const auto& [id, s] : sessions_) {
    if (s.hello_done) {
      ++count;
    }
  }
  w.U32(count);
  for (const auto& [id, s] : sessions_) {
    if (!s.hello_done) {
      continue;
    }
    w.U32(id);
    w.U64(s.token);
    w.U32(s.epoch);
    w.U32(s.last_seq);
    w.U32(static_cast<uint32_t>(s.pseudo_pids.size()));
    for (const auto& [pid, pseudo] : s.pseudo_pids) {
      w.I32(pid);
      w.I32(pseudo);
    }
    // Held leases by pseudo-pid: the SFS image's lock table is swept by the
    // at-boot fsck pass on reload, so the checkpoint re-asserts them itself.
    std::vector<std::pair<uint32_t, int>> locks;
    for (const auto& [pid, pseudo] : s.pseudo_pids) {
      for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
        if (fs_->LockOwner(ino) == pseudo) {
          locks.emplace_back(ino, pseudo);
        }
      }
    }
    w.U32(static_cast<uint32_t>(locks.size()));
    for (const auto& [ino, pseudo] : locks) {
      w.U32(ino);
      w.I32(pseudo);
    }
    w.U32(static_cast<uint32_t>(s.pending.size()));
    for (const WireInval& inv : s.pending) {
      EncodeInvalRecord(&w, inv);
    }
    w.U8(s.has_cached ? 1 : 0);
    if (s.has_cached) {
      w.Bytes(EncodePayload(s.cached_reply));
    }
  }
  return w.Take();
}

Status SegmentServer::RestoreMeta(const std::vector<uint8_t>& bytes) {
  sessions_.clear();
  directory_ = CoherenceDirectory();
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(next_session_, r.U32());
  ASSIGN_OR_RETURN(next_pseudo_pid_, r.I32());
  ASSIGN_OR_RETURN(token_seq_, r.U64());
  RETURN_IF_ERROR(directory_.Deserialize(&r));
  ASSIGN_OR_RETURN(uint32_t count, r.Count(24, 1u << 16));
  auto now = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < count; ++i) {
    Session s;
    ASSIGN_OR_RETURN(s.id, r.U32());
    ASSIGN_OR_RETURN(s.token, r.U64());
    ASSIGN_OR_RETURN(s.epoch, r.U32());
    ASSIGN_OR_RETURN(s.last_seq, r.U32());
    s.hello_done = true;
    // Every checkpointed session comes back detached: its client must dial in
    // and prove the resume token; the grace clock restarts at reboot.
    s.attached = false;
    s.detached_at = now;
    ASSIGN_OR_RETURN(uint32_t pids, r.Count(8, 1u << 16));
    for (uint32_t j = 0; j < pids; ++j) {
      ASSIGN_OR_RETURN(int32_t pid, r.I32());
      ASSIGN_OR_RETURN(int32_t pseudo, r.I32());
      s.pseudo_pids.emplace(pid, pseudo);
    }
    ASSIGN_OR_RETURN(uint32_t locks, r.Count(8, kSfsMaxInodes));
    for (uint32_t j = 0; j < locks; ++j) {
      ASSIGN_OR_RETURN(uint32_t ino, r.U32());
      ASSIGN_OR_RETURN(int32_t pseudo, r.I32());
      (void)fs_->LockInode(ino, pseudo);
    }
    ASSIGN_OR_RETURN(uint32_t pend, r.Count(1, 1u << 20));
    for (uint32_t j = 0; j < pend; ++j) {
      WireInval inv;
      RETURN_IF_ERROR(DecodeInvalRecord(&r, &inv));
      s.pending.push_back(inv);
    }
    ASSIGN_OR_RETURN(uint8_t cached, r.U8());
    if (cached > 1) {
      return CorruptData("journal: bad cached-reply flag");
    }
    if (cached == 1) {
      ASSIGN_OR_RETURN(std::vector<uint8_t> payload, r.Bytes());
      ASSIGN_OR_RETURN(s.cached_reply, DecodePayload(payload));
      s.has_cached = true;
    }
    uint32_t id = s.id;
    sessions_.emplace(id, std::move(s));
    if (id >= next_session_) {
      next_session_ = id + 1;
    }
  }
  return r.ExpectEnd("journal checkpoint meta");
}

void SegmentServer::ReplayRecords(const std::vector<JournalRecord>& records) {
  replaying_ = true;
  auto now = std::chrono::steady_clock::now();
  for (const JournalRecord& rec : records) {
    switch (rec.type) {
      case JournalRecordType::kSessionCreated: {
        Session s;
        s.id = rec.session;
        s.token = rec.token;
        s.epoch = 1;
        s.hello_done = true;
        s.attached = false;
        s.detached_at = now;
        uint32_t id = s.id;
        sessions_.emplace(id, std::move(s));
        if (id >= next_session_) {
          next_session_ = id + 1;
        }
        // Keep the token mint ahead of every replayed token so a post-replay
        // fresh session never collides.
        ++token_seq_;
        break;
      }
      case JournalRecordType::kSessionDropped:
        DropSession(rec.session, "journal replay");
        break;
      case JournalRecordType::kRequest: {
        Session* s = FindSession(rec.session);
        if (s == nullptr) {
          break;
        }
        Result<WireMsg> req = DecodePayload(rec.payload);
        if (!req.ok()) {
          break;
        }
        // Re-dispatching rebuilds everything the original did: the partition
        // mutation, page versions, pending invalidation queues, pseudo-pid
        // allocation, and the at-most-once reply cache.
        (void)ExecuteTracked(*s, *req);
        break;
      }
    }
  }
  replaying_ = false;
}

Status SegmentServer::AttachJournal() {
  if (options_.journal_path.empty()) {
    return FailedPrecondition("net: no journal path configured");
  }
  Result<JournalContents> loaded = Journal::Load(options_.journal_path);
  if (loaded.ok()) {
    if (!loaded->checkpoint.empty()) {
      RETURN_IF_ERROR(RestoreMeta(loaded->checkpoint));
    }
    ReplayRecords(loaded->records);
    journal_nonce_seen_ = loaded->nonce;
    journal_records_seen_ = loaded->records.size();
  } else if (loaded.status().code() != ErrorCode::kNotFound) {
    // Absent journal = fresh start; anything else (bad magic, wrong version)
    // deserves a loud failure, not a silent empty history.
    return loaded.status();
  }
  if (!standby_) {
    RETURN_IF_ERROR(journal_.Open(options_.journal_path, EncodeMeta()));
  }
  return OkStatus();
}

Status SegmentServer::ReloadStateFromDisk() {
  std::unique_ptr<SharedFs> fresh;
  std::ifstream in(options_.state_path, std::ios::binary);
  if (in) {
    std::vector<uint8_t> disk((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    ByteReader r(disk);
    SfsCheckReport report;
    ASSIGN_OR_RETURN(fresh, SharedFs::Deserialize(&r, &report));
  } else {
    fresh = std::make_unique<SharedFs>();
  }
  fs_ = std::move(fresh);
  InstallPidProber();
  return OkStatus();
}

Status SegmentServer::TailJournal() {
  Result<JournalContents> loaded = Journal::Load(options_.journal_path);
  if (!loaded.ok()) {
    // The primary may be mid-checkpoint (rename in flight) — try next round.
    return OkStatus();
  }
  if (loaded->nonce != journal_nonce_seen_) {
    // The primary checkpointed: the journal restarted from a new state image.
    RETURN_IF_ERROR(ReloadStateFromDisk());
    if (!loaded->checkpoint.empty()) {
      RETURN_IF_ERROR(RestoreMeta(loaded->checkpoint));
    } else {
      sessions_.clear();
      directory_ = CoherenceDirectory();
    }
    ReplayRecords(loaded->records);
    journal_nonce_seen_ = loaded->nonce;
    journal_records_seen_ = loaded->records.size();
    return OkStatus();
  }
  if (loaded->records.size() > journal_records_seen_) {
    std::vector<JournalRecord> delta(loaded->records.begin() + journal_records_seen_,
                                     loaded->records.end());
    ReplayRecords(delta);
    journal_records_seen_ = loaded->records.size();
  }
  return OkStatus();
}

Status SegmentServer::Checkpoint() {
  if (options_.state_path.empty()) {
    return FailedPrecondition("net: checkpoint needs a state path");
  }
  ByteWriter w;
  RETURN_IF_ERROR(fs_->Serialize(&w));
  std::string tmp = options_.state_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return IoError("net: cannot open for writing: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(w.buffer().data()),
              static_cast<std::streamsize>(w.buffer().size()));
    if (!out) {
      std::remove(tmp.c_str());
      return IoError("net: short write: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), options_.state_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return IoError("net: cannot rename the state image into place");
  }
  if (journal_.open()) {
    RETURN_IF_ERROR(journal_.Rewrite(EncodeMeta()));
  }
  ++*c_checkpoints_;
  return OkStatus();
}

}  // namespace hemlock
