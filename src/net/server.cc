#include "src/net/server.h"

#include <poll.h>

#include <algorithm>
#include <cstring>

#include "src/base/strings.h"
#include "src/sfs/sfs_check.h"

namespace hemlock {

namespace {

bool AllZero(const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

SegmentServer::SegmentServer(std::unique_ptr<SharedFs> fs)
    : fs_(fs != nullptr ? std::move(fs) : std::make_unique<SharedFs>()) {
  c_sessions_ = metrics_.Counter("net.server.sessions");
  c_disconnects_ = metrics_.Counter("net.server.disconnects");
  c_rpcs_ = metrics_.Counter("net.server.rpcs");
  c_pages_fetched_ = metrics_.Counter("net.server.pages_fetched");
  c_pages_flushed_ = metrics_.Counter("net.server.pages_flushed");
  c_invals_queued_ = metrics_.Counter("net.server.invals_queued");
  c_lock_waits_ = metrics_.Counter("net.server.lock_waits");
  c_leases_reclaimed_ = metrics_.Counter("net.server.leases_reclaimed");
  // Wire leases plug into PR 2's dead-holder detection: a lock owner is "alive"
  // exactly while the session that took it is still connected, so the lease
  // machinery (and SfsCheck's at-boot sweep) treats a vanished client like a
  // dead local process.
  fs_->SetPidProber([this](int pid) {
    for (const auto& [id, session] : sessions_) {
      for (const auto& [client_pid, pseudo] : session.pseudo_pids) {
        if (pseudo == pid) {
          return true;
        }
      }
    }
    return false;
  });
}

SegmentServer::~SegmentServer() { Stop(); }

Status SegmentServer::Listen(const std::string& host, int port) {
  ASSIGN_OR_RETURN(listener_, Listener::ListenTcp(host, port));
  return OkStatus();
}

Status SegmentServer::Start() {
  if (!listener_.ok()) {
    return FailedPrecondition("net: server not listening");
  }
  if (serving_) {
    return FailedPrecondition("net: server already started");
  }
  stop_.store(false);
  serving_ = true;
  serve_thread_ = std::thread([this] {
    while (!stop_.load(std::memory_order_relaxed)) {
      (void)PollOnce(50);
    }
  });
  return OkStatus();
}

void SegmentServer::Stop() {
  if (!serving_) {
    return;
  }
  stop_.store(true);
  serve_thread_.join();
  serving_ = false;
}

size_t SegmentServer::SessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

Status SegmentServer::PollOnce(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<struct pollfd> fds;
  std::vector<uint32_t> ids;
  fds.push_back({listener_.fd(), POLLIN, 0});
  ids.push_back(0);
  for (const auto& [id, session] : sessions_) {
    fds.push_back({session.conn.fd(), POLLIN, 0});
    ids.push_back(id);
  }
  int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return OkStatus();
    }
    return IoError(StrFormat("net: poll: %s", std::strerror(errno)));
  }
  if (n == 0) {
    return OkStatus();
  }
  if (fds[0].revents & POLLIN) {
    Result<Conn> conn = listener_.Accept();
    if (conn.ok()) {
      Session s;
      s.id = next_session_++;
      s.conn = std::move(*conn);
      // A peer that stops mid-frame must not wedge the loop forever.
      (void)s.conn.SetRecvTimeout(10);
      ++*c_sessions_;
      sessions_.emplace(s.id, std::move(s));
    }
  }
  for (size_t i = 1; i < fds.size(); ++i) {
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    Session* s = FindSession(ids[i]);
    if (s == nullptr) {
      continue;
    }
    Result<WireMsg> req = s->conn.Recv();
    if (!req.ok()) {
      DropSession(ids[i], req.status().message().c_str());
      continue;
    }
    ++*c_rpcs_;
    WireMsg reply = Dispatch(*s, *req);
    Status sent = s->conn.Send(reply);
    if (!sent.ok() || req->op == WireOp::kBye) {
      DropSession(ids[i], sent.ok() ? "bye" : sent.message().c_str());
    }
  }
  return OkStatus();
}

SegmentServer::Session* SegmentServer::FindSession(uint32_t id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

int SegmentServer::PseudoPid(Session& s, int32_t pid) {
  auto it = s.pseudo_pids.find(pid);
  if (it != s.pseudo_pids.end()) {
    return it->second;
  }
  int pseudo = next_pseudo_pid_++;
  s.pseudo_pids.emplace(pid, pseudo);
  return pseudo;
}

void SegmentServer::DropSession(uint32_t id, const char* why) {
  Session* s = FindSession(id);
  if (s == nullptr) {
    return;
  }
  (void)why;
  // Dead-client reclamation: every wire lease the session held is released
  // (waking nothing here — remote waiters re-try their Lock RPC and find the
  // inode free), every cached-page claim is dropped.
  for (const auto& [client_pid, pseudo] : s->pseudo_pids) {
    for (uint32_t ino = 1; ino <= kSfsMaxInodes; ++ino) {
      if (fs_->LockOwner(ino) == pseudo) {
        ++*c_leases_reclaimed_;
      }
    }
    fs_->ReleaseLocksOf(pseudo);
  }
  directory_.DropSession(id);
  sessions_.erase(id);
  ++*c_disconnects_;
}

void SegmentServer::QueueInvalTo(Session& s, const WireInval& inv) {
  if (std::find(s.pending.begin(), s.pending.end(), inv) != s.pending.end()) {
    return;  // an identical record is already queued
  }
  s.pending.push_back(inv);
  ++*c_invals_queued_;
}

void SegmentServer::QueueInval(uint32_t except, const WireInval& inv) {
  for (auto& [id, session] : sessions_) {
    if (id != except) {
      QueueInvalTo(session, inv);
    }
  }
}

WireMsg SegmentServer::Ack(Session& s, WireOp reply_to) {
  WireMsg m;
  m.op = WireOp::kReply;
  m.reply_to = static_cast<uint8_t>(reply_to);
  m.invals = std::move(s.pending);
  s.pending.clear();
  return m;
}

WireMsg SegmentServer::Err(Session& s, WireOp reply_to, const Status& st) {
  WireMsg m = WireErrorFrom(st);
  m.reply_to = static_cast<uint8_t>(reply_to);
  // Errors drain the queue too: a client spinning on a contended lock keeps
  // observing remote progress between retries.
  m.invals = std::move(s.pending);
  s.pending.clear();
  return m;
}

WireMsg SegmentServer::HandleMount(Session& s) {
  WireMsg reply = Ack(s, WireOp::kMount);
  for (uint32_t ino = 2; ino <= kSfsMaxInodes; ++ino) {
    Result<SfsStat> st = fs_->StatInode(ino);
    if (!st.ok()) {
      continue;
    }
    WireNode node;
    node.ino = ino;
    node.type = static_cast<uint8_t>(st->type);
    node.size = st->size;
    node.pending = fs_->CreationPending(ino) ? 1 : 0;
    Result<std::string> path = fs_->InodeToPath(ino);
    if (!path.ok()) {
      continue;
    }
    node.path = *path;
    Result<uint32_t> parent = fs_->Lookup(PathDirname(node.path));
    node.parent = parent.ok() ? *parent : 1;
    if (st->type == SfsNodeType::kSymlink) {
      Result<std::string> target = fs_->ReadLink(node.path);
      if (target.ok()) {
        node.target = *target;
      }
    }
    reply.nodes.push_back(std::move(node));
  }
  return reply;
}

WireMsg SegmentServer::HandleFetch(Session& s, const WireMsg& req) {
  Result<SfsStat> st = fs_->StatInode(req.ino);
  if (!st.ok()) {
    return Err(s, WireOp::kFetch, st.status());
  }
  if (st->type != SfsNodeType::kRegular) {
    return Err(s, WireOp::kFetch, InvalidArgument("net: fetch of a non-file inode"));
  }
  WireMsg reply = Ack(s, WireOp::kFetch);
  reply.ino = req.ino;
  reply.size = st->size;
  const uint8_t* data = fs_->DataPtr(req.ino);
  uint32_t extent = fs_->ExtentBytes(req.ino);
  for (uint32_t idx : req.page_list) {
    WirePage page;
    page.index = idx;
    uint32_t off = idx * kPageSize;
    if (off < extent) {
      uint32_t len = std::min<uint32_t>(kPageSize, extent - off);
      if (!AllZero(data + off, len)) {
        page.bytes.assign(data + off, data + off + len);
      }
    }
    // Pages past the extent (or all zero) travel as the empty marker.
    directory_.NoteFetch(req.ino, idx, s.id);
    ++*c_pages_fetched_;
    reply.pages.push_back(std::move(page));
  }
  return reply;
}

WireMsg SegmentServer::HandleFlush(Session& s, const WireMsg& req) {
  Result<SfsStat> st = fs_->StatInode(req.ino);
  if (!st.ok()) {
    return Err(s, WireOp::kFlush, st.status());
  }
  if (st->type != SfsNodeType::kRegular) {
    return Err(s, WireOp::kFlush, InvalidArgument("net: flush of a non-file inode"));
  }
  auto invalidate = [this, &req](uint32_t page_idx) {
    return [this, &req, page_idx](uint32_t session_id) {
      Session* other = FindSession(session_id);
      if (other != nullptr) {
        WireInval inv;
        inv.kind = WireInvalKind::kPage;
        inv.ino = req.ino;
        inv.value = page_idx;
        QueueInvalTo(*other, inv);
      }
    };
  };
  for (const WirePage& page : req.pages) {
    uint32_t off = page.index * kPageSize;
    uint32_t len = page.bytes.empty() ? kPageSize
                                      : static_cast<uint32_t>(page.bytes.size());
    uint32_t end = std::min<uint64_t>(static_cast<uint64_t>(off) + len, kSfsMaxFileBytes);
    Status grown = fs_->EnsureExtent(req.ino, end);
    if (!grown.ok()) {
      return Err(s, WireOp::kFlush, grown);
    }
    uint8_t* data = fs_->DataPtr(req.ino);
    if (page.bytes.empty()) {
      std::memset(data + off, 0, end - off);
    } else {
      std::memcpy(data + off, page.bytes.data(), page.bytes.size());
    }
    directory_.NoteWrite(req.ino, page.index, s.id, invalidate(page.index));
    ++*c_pages_flushed_;
  }
  if (req.size != st->size) {
    Status resized = fs_->Truncate(req.ino, req.size);
    if (!resized.ok()) {
      return Err(s, WireOp::kFlush, resized);
    }
    WireInval inv;
    inv.kind = WireInvalKind::kSize;
    inv.ino = req.ino;
    inv.value = req.size;
    QueueInval(s.id, inv);
  }
  return Ack(s, WireOp::kFlush);
}

WireMsg SegmentServer::Dispatch(Session& s, const WireMsg& req) {
  if (req.op == WireOp::kHello) {
    if (req.version != kWireVersion) {
      return Err(s, WireOp::kHello,
                 UnsupportedVersion(StrFormat("net: protocol version %u, server speaks %u",
                                              req.version, kWireVersion)));
    }
    s.hello_done = true;
    WireMsg reply = Ack(s, WireOp::kHello);
    reply.session = s.id;
    reply.version = kWireVersion;
    return reply;
  }
  if (!s.hello_done) {
    return Err(s, req.op, FailedPrecondition("net: request before HELLO"));
  }
  switch (req.op) {
    case WireOp::kMount:
      return HandleMount(s);
    case WireOp::kFetch:
      return HandleFetch(s, req);
    case WireOp::kFlush:
      return HandleFlush(s, req);
    case WireOp::kCreate: {
      Result<uint32_t> ino = fs_->Create(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kCreate, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kRegular);
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kCreate);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kMkdir: {
      Result<uint32_t> ino = fs_->Mkdir(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kMkdir, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kDirectory);
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kMkdir);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kSymlink: {
      Result<uint32_t> ino = fs_->Symlink(req.path, req.target);
      if (!ino.ok()) {
        return Err(s, WireOp::kSymlink, ino.status());
      }
      WireInval inv;
      inv.kind = WireInvalKind::kCreated;
      inv.ino = *ino;
      inv.node_type = static_cast<uint8_t>(SfsNodeType::kSymlink);
      inv.path = NormalizePath(req.path);
      inv.target = req.target;
      QueueInval(s.id, inv);
      WireMsg reply = Ack(s, WireOp::kSymlink);
      reply.ino = *ino;
      return reply;
    }
    case WireOp::kUnlink: {
      Result<uint32_t> ino = fs_->Lookup(req.path);
      if (!ino.ok()) {
        return Err(s, WireOp::kUnlink, ino.status());
      }
      Status st = fs_->Unlink(req.path, req.flag != 0);
      if (!st.ok()) {
        return Err(s, WireOp::kUnlink, st);
      }
      directory_.DropInode(*ino);
      WireInval inv;
      inv.kind = WireInvalKind::kUnlinked;
      inv.ino = *ino;
      inv.path = NormalizePath(req.path);
      QueueInval(s.id, inv);
      return Ack(s, WireOp::kUnlink);
    }
    case WireOp::kTruncate: {
      Result<SfsStat> before = fs_->StatInode(req.ino);
      if (!before.ok()) {
        return Err(s, WireOp::kTruncate, before.status());
      }
      uint32_t old_extent = fs_->ExtentBytes(req.ino);
      Status st = fs_->Truncate(req.ino, req.size);
      if (!st.ok()) {
        return Err(s, WireOp::kTruncate, st);
      }
      WireInval inv;
      inv.kind = WireInvalKind::kSize;
      inv.ino = req.ino;
      inv.value = req.size;
      QueueInval(s.id, inv);
      // A shrink zeroed [new_size, extent): readers caching those pages hold
      // stale bytes now.
      for (uint32_t off = req.size & ~(kPageSize - 1); off < old_extent; off += kPageSize) {
        uint32_t page_idx = off / kPageSize;
        directory_.NoteWrite(req.ino, page_idx, s.id, [this, &req, page_idx](uint32_t id) {
          Session* other = FindSession(id);
          if (other != nullptr) {
            WireInval pinv;
            pinv.kind = WireInvalKind::kPage;
            pinv.ino = req.ino;
            pinv.value = page_idx;
            QueueInvalTo(*other, pinv);
          }
        });
      }
      return Ack(s, WireOp::kTruncate);
    }
    case WireOp::kWrite: {
      Result<SfsStat> before = fs_->StatInode(req.ino);
      if (!before.ok()) {
        return Err(s, WireOp::kWrite, before.status());
      }
      Status st = fs_->WriteAt(req.ino, req.offset, req.bytes.data(),
                               static_cast<uint32_t>(req.bytes.size()));
      if (!st.ok()) {
        return Err(s, WireOp::kWrite, st);
      }
      if (!req.bytes.empty()) {
        uint32_t first = req.offset / kPageSize;
        uint32_t last = (req.offset + static_cast<uint32_t>(req.bytes.size()) - 1) / kPageSize;
        for (uint32_t page_idx = first; page_idx <= last; ++page_idx) {
          directory_.NoteWrite(req.ino, page_idx, s.id, [this, &req, page_idx](uint32_t id) {
            Session* other = FindSession(id);
            if (other != nullptr) {
              WireInval pinv;
              pinv.kind = WireInvalKind::kPage;
              pinv.ino = req.ino;
              pinv.value = page_idx;
              QueueInvalTo(*other, pinv);
            }
          });
        }
      }
      Result<SfsStat> after = fs_->StatInode(req.ino);
      if (after.ok() && after->size != before->size) {
        WireInval inv;
        inv.kind = WireInvalKind::kSize;
        inv.ino = req.ino;
        inv.value = after->size;
        QueueInval(s.id, inv);
      }
      return Ack(s, WireOp::kWrite);
    }
    case WireOp::kLock: {
      Status st = fs_->LockInode(req.ino, PseudoPid(s, req.pid));
      if (!st.ok()) {
        if (st.code() == ErrorCode::kWouldBlock) {
          ++*c_lock_waits_;
        }
        return Err(s, WireOp::kLock, st);
      }
      return Ack(s, WireOp::kLock);
    }
    case WireOp::kUnlock: {
      Status st = fs_->UnlockInode(req.ino, PseudoPid(s, req.pid));
      if (!st.ok()) {
        return Err(s, WireOp::kUnlock, st);
      }
      return Ack(s, WireOp::kUnlock);
    }
    case WireOp::kReleaseLocks: {
      auto it = s.pseudo_pids.find(req.pid);
      if (it != s.pseudo_pids.end()) {
        fs_->ReleaseLocksOf(it->second);
        s.pseudo_pids.erase(it);
      }
      return Ack(s, WireOp::kReleaseLocks);
    }
    case WireOp::kPending: {
      Status st = fs_->SetCreationPending(req.ino, req.flag != 0);
      if (!st.ok()) {
        return Err(s, WireOp::kPending, st);
      }
      WireInval inv;
      inv.kind = WireInvalKind::kPending;
      inv.ino = req.ino;
      inv.value = req.flag;
      QueueInval(s.id, inv);
      return Ack(s, WireOp::kPending);
    }
    case WireOp::kCheck: {
      SfsCheckReport report;
      SfsCheck(fs_.get()).Run(/*at_boot=*/false, &report);
      WireMsg reply = Ack(s, WireOp::kCheck);
      reply.flag = report.structurally_clean() ? 1 : 0;
      reply.text = report.ToString();
      return reply;
    }
    case WireOp::kStats: {
      WireMsg reply = Ack(s, WireOp::kStats);
      MetricsSnapshot snap = metrics_.Snapshot();
      for (const auto& [name, value] : snap) {
        reply.stats.emplace_back(name, value);
      }
      reply.stats.emplace_back("net.server.coherence.downgrades", directory_.downgrades());
      reply.stats.emplace_back("net.server.coherence.invalidations", directory_.invalidations());
      return reply;
    }
    case WireOp::kBye:
      return Ack(s, WireOp::kBye);
    default:
      return Err(s, req.op, InvalidArgument("net: request opcode not servable"));
  }
}

}  // namespace hemlock
