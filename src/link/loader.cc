#include "src/link/loader.h"

#include "src/base/layout.h"

namespace hemlock {

Result<ExecResult> ExecuteImage(Machine& machine, const LoadImage& image,
                                const ExecOptions& options) {
  // Deserialize validates files, but images can also arrive straight from lds or a
  // test harness: re-check geometry before any page is mapped so a bad image can
  // never leave a half-built process behind.
  RETURN_IF_ERROR(ValidateLoadImage(image));
  Process& proc = machine.CreateProcess();
  proc.env() = options.env;
  proc.set_cwd(options.cwd);

  // Map the image segments into private memory.
  uint32_t data_end = kDataBase;
  for (const ImageSegment& seg : image.segments) {
    uint32_t len = PageCeil(seg.mem_size);
    auto backing = std::make_shared<std::vector<uint8_t>>(len, 0);
    std::copy(seg.bytes.begin(), seg.bytes.end(), backing->begin());
    Prot prot = seg.executable ? Prot::kReadExec : Prot::kReadWrite;
    RETURN_IF_ERROR(proc.space().MapPrivate(seg.vaddr, len, prot, backing, 0));
    if (!seg.executable) {
      data_end = std::max(data_end, seg.vaddr + len);
    }
  }
  // Heap break starts after the data segment.
  proc.set_brk(data_end);

  // Stack: top of the private region, growing down.
  uint32_t stack_len = PageCeil(options.stack_bytes);
  uint32_t stack_base = kStackLimit - stack_len;
  auto stack = std::make_shared<std::vector<uint8_t>>(stack_len, 0);
  RETURN_IF_ERROR(proc.space().MapPrivate(stack_base, stack_len, Prot::kReadWrite, stack, 0));
  proc.cpu().regs[kRegSp] = kStackLimit - 16;
  proc.cpu().regs[kRegFp] = kStackLimit - 16;

  // The dynamic linker: startup duties, then the fault handler.
  auto ldl = std::make_shared<Ldl>(&machine, image, options.ldl);
  RETURN_IF_ERROR(ldl->Startup(proc));
  proc.PushFaultHandler([ldl](Machine& m, Process& p, const Fault& fault) {
    return ldl->HandleFault(m, p, fault);
  });

  proc.cpu().pc = image.entry;
  ExecResult result;
  result.pid = proc.pid();
  result.ldl = std::move(ldl);
  return result;
}

Result<ExecResult> ExecuteFile(Machine& machine, const std::string& image_path,
                               const ExecOptions& options) {
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, machine.vfs().ReadFile(image_path));
  ASSIGN_OR_RETURN(LoadImage image, LoadImage::Deserialize(bytes));
  return ExecuteImage(machine, image, options);
}

void InstallSpawnHandler(Machine& machine, const ExecOptions& options) {
  machine.SetSpawnHandler([options](Machine& m, const std::string& path) -> Result<int> {
    ASSIGN_OR_RETURN(ExecResult exec, ExecuteFile(m, path, options));
    return exec.pid;
  });
}

}  // namespace hemlock
