// Link-time artefact formats.
//
// HXE — the executable load image produced by lds. Because the IRIX ld "refuses to
// retain relocation information for an executable program", the paper's lds saves it
// "in an explicit data structure"; HXE makes that data structure the on-disk format:
// pending relocations, the dynamic-module records, the saved search-path description,
// and the absolute symbol table all travel with the image for ldl to use.
//
// HML — a *linked module*: the form in which a public module lives in a shared-file-
// system file. The memory image (text+data+bss, internally relocated to the module's
// globally agreed base address) occupies the file from offset 0, so mapping the file at
// its address is exactly mapping the module; linker metadata (exports, still-pending
// relocations, scoped-linking search information) sits in a trailer past the mapped
// pages, found via a fixed-size footer at the end of the file.
#ifndef SRC_LINK_IMAGE_H_
#define SRC_LINK_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"
#include "src/obj/object_file.h"

namespace hemlock {

// The four sharing classes of paper Table 1.
enum class ShareClass : uint8_t {
  kStaticPrivate = 0,
  kDynamicPrivate = 1,
  kStaticPublic = 2,
  kDynamicPublic = 3,
};

const char* ShareClassName(ShareClass cls);
inline bool IsPublic(ShareClass cls) {
  return cls == ShareClass::kStaticPublic || cls == ShareClass::kDynamicPublic;
}
inline bool IsDynamic(ShareClass cls) {
  return cls == ShareClass::kDynamicPrivate || cls == ShareClass::kDynamicPublic;
}

// A relocation whose site is an absolute virtual address (post-layout form of
// obj::Relocation). |addend| keeps the original semantics: target = S + A.
struct PendingReloc {
  RelocType type = RelocType::kWord32;
  uint32_t site = 0;  // absolute address of the relocated cell
  std::string symbol;
  int32_t addend = 0;

  bool operator==(const PendingReloc&) const = default;
};

// A symbol at an absolute address.
struct AbsSymbol {
  std::string name;
  uint32_t addr = 0;
  bool is_function = false;

  bool operator==(const AbsSymbol&) const = default;
};

// One loadable region of an executable image.
struct ImageSegment {
  uint32_t vaddr = 0;
  uint32_t mem_size = 0;            // full size including zero-fill (bss)
  bool executable = false;          // R-X vs RW-
  std::vector<uint8_t> bytes;       // initialized prefix (<= mem_size)
};

// A dynamic module requested on the lds command line: resolved by ldl at run time.
struct DynModuleRecord {
  std::string name;        // as given to lds (path or bare name)
  ShareClass cls = ShareClass::kDynamicPublic;
};

// A static public module the image references: ldl maps it at startup.
struct StaticPublicRef {
  std::string module_path;  // the HML file (on the shared partition)
  uint32_t addr = 0;
};

struct LoadImage {
  uint32_t entry = 0;
  std::vector<ImageSegment> segments;
  std::vector<AbsSymbol> symbols;            // exports of the statically linked portion
  std::vector<PendingReloc> pending;         // references left for ldl
  std::vector<DynModuleRecord> dynamic_modules;
  std::vector<StaticPublicRef> static_publics;
  // The search strategy lds used for static modules, passed on to ldl (paper §3):
  // link-time cwd, command-line dirs, link-time LD_LIBRARY_PATH dirs, defaults.
  std::vector<std::string> search_path;

  std::vector<uint8_t> Serialize() const;
  static Result<LoadImage> Deserialize(const std::vector<uint8_t>& bytes);
};

// A linked module (public-module file contents / in-memory form for private
// instances). Layout in memory: text at |base|, data at text end (word aligned),
// bss after data; total mem_size page-rounds for mapping.
struct LinkedModule {
  std::string name;
  uint32_t base = 0;
  uint32_t text_size = 0;
  uint32_t data_size = 0;
  uint32_t bss_size = 0;
  std::vector<uint8_t> payload;  // text+data initialized bytes (bss implied zero)
  std::vector<AbsSymbol> exports;
  std::vector<PendingReloc> pending;
  std::vector<std::string> module_list;   // scoped linking: this module's own list
  std::vector<std::string> search_path;   // ... and its own search path
  // Content identity assigned by LinkModuleAtBase (a digest of the template and the
  // base address). Stable across trailer rewrites — ldl's resolution-manifest entries
  // are keyed by it, so a relinked-from-changed-content module invalidates them.
  // 0 = pre-hash file (never matches a manifest entry).
  uint64_t template_hash = 0;

  uint32_t MemSize() const { return text_size + data_size + bss_size; }
  bool FullyLinked() const { return pending.empty(); }

  // Serializes to the HML file layout described above (image @0, trailer, footer).
  std::vector<uint8_t> SerializeFile() const;
  static Result<LinkedModule> DeserializeFile(const std::vector<uint8_t>& bytes);
  // True if |bytes| carries the HML footer (distinguishes module files from plain
  // data segments when the fault handler maps by address).
  static bool LooksLikeModuleFile(const std::vector<uint8_t>& bytes);
};

// Structural validation of a parsed load image: page-aligned non-overlapping
// segments confined to the private region, entry inside an executable segment,
// pending relocation sites inside the image. Deserialize runs this automatically;
// the loader runs it again on any image it is about to map (images can also be
// built in memory by lds).
Status ValidateLoadImage(const LoadImage& img);

// Applies one relocation to a byte buffer that will live at |buf_base|.
// |target| is the resolved S + A value. The site must lie inside the buffer.
Status ApplyReloc(std::vector<uint8_t>* buf, uint32_t buf_base, RelocType type, uint32_t site,
                  uint32_t target);

}  // namespace hemlock

#endif  // SRC_LINK_IMAGE_H_
