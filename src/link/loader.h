// The program loader: turns an HXE load image into a runnable simulated process.
//
// This plays the role of exec + the paper's special crt0: it maps the image segments
// and stack, instantiates the process's dynamic linker, runs ldl's start-up duties
// (mapping static publics, locating/creating dynamic modules, resolving main-image
// references), installs the Hemlock SIGSEGV handler, and finally points the PC at the
// image entry (the tiny synthesized crt0 that calls main and exits).
#ifndef SRC_LINK_LOADER_H_
#define SRC_LINK_LOADER_H_

#include <map>
#include <memory>
#include <string>

#include "src/base/status.h"
#include "src/link/image.h"
#include "src/link/ldl.h"
#include "src/vm/machine.h"

namespace hemlock {

struct ExecOptions {
  LdlOptions ldl;
  std::map<std::string, std::string> env;
  std::string cwd = "/home/user";
  uint32_t stack_bytes = 64 * 1024;
};

struct ExecResult {
  int pid = 0;
  // The process's dynamic linker; shared so tests/benches can inspect stats. Lives as
  // long as any fault-handler closure referencing it (i.e., the process) does.
  std::shared_ptr<Ldl> ldl;
};

// Creates a process from |image| (mapped, linked, ready to run — drive it with
// Machine::RunProcess / RunAll).
Result<ExecResult> ExecuteImage(Machine& machine, const LoadImage& image,
                                const ExecOptions& options = {});

// Convenience: read an HXE file from the VFS and execute it.
Result<ExecResult> ExecuteFile(Machine& machine, const std::string& image_path,
                               const ExecOptions& options = {});

// Wires sys_spawn: new processes are exec'd from their HXE path with |options|'
// linker settings (the syscall layer then overlays the spawner's env/cwd/priority).
// Each spawned process gets its own Ldl, kept alive by its fault-handler closure.
void InstallSpawnHandler(Machine& machine, const ExecOptions& options = {});

}  // namespace hemlock

#endif  // SRC_LINK_LOADER_H_
