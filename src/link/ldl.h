// ldl — the Hemlock lazy dynamic linker (paper §2-§3).
//
// One Ldl instance serves a process tree (the state it keeps is either per-address
// (identical in parent and child after fork) or shared-by-design for public modules;
// per-process facts such as "are this module's pages accessible yet" are derived from
// the process's own page protections, so a forked child lazily re-links on its own
// faults).
//
// Duties, in paper order:
//   * locates dynamic modules with the run-time search strategy (current
//     LD_LIBRARY_PATH first, then the directories lds searched);
//   * creates a new instance of each dynamic *private* module, and of each dynamic
//     *public* module that does not yet exist (file creation under an advisory lock —
//     fn. 3: "Ldl uses file locking to synchronize the creation of shared segments");
//   * maps static public modules and all dynamic modules into the address space; a
//     module that still contains undefined references is mapped *without access
//     permissions* so its first touch faults;
//   * resolves undefined references from the main load image to objects in dynamic
//     modules — even though nothing about those symbols was known at static link time;
//   * on a lazy-link fault, resolves the references in (all pages of) the touched
//     module, mapping in — possibly inaccessibly — any new modules that are needed
//     (the recursive "reachability graph");
//   * scoped linking: a module's references resolve first against the modules on its
//     own module list / search path, then its parent's, its grandparent's, and so on
//     to the root; references undefined at the root stay unresolved and fault at use.
//
// Resolution fast path: every module carries a hashed export index, the root scope
// keeps an incremental first-wins symbol index, and each module memoizes its scoped
// lookups (positive results are stable because exports are fixed at registration;
// negative results are invalidated whenever a new module is registered and at each
// fault, preserving the paper's retry-on-later-fault semantics). Every resolution
// decision is counted in the linker's MetricsRegistry and, when enabled, recorded in
// the machine's TraceBuffer.
#ifndef SRC_LINK_LDL_H_
#define SRC_LINK_LDL_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"
#include "src/base/trace.h"
#include "src/link/image.h"
#include "src/link/manifest.h"
#include "src/vm/machine.h"

namespace hemlock {

// Ablation switches (DESIGN.md E5).
struct LdlOptions {
  // Paper behaviour: map partially linked modules inaccessible and resolve on first
  // touch. false = resolve everything transitively at startup (eager).
  bool lazy = true;
  // Paper behaviour resolves "(all pages of) the module that has just been accessed".
  // true = resolve only the touched page (finer laziness; more faults).
  bool page_granular = false;
  // The SunOS jump-table optimization the paper planned to adopt ("modules first
  // accessed by calling a (named) function will be linked without fault-handling
  // overhead" — §3): partially linked modules are mapped *accessible*; their far-call
  // trampolines initially aim at per-symbol sentinel addresses, and the first call
  // resolves just that function and patches the trampoline. Data references are
  // resolved at map time (the SunOS scheme "works only for functions" laziness-wise,
  // exactly as the paper notes). Overrides page_granular.
  bool function_lazy = false;
  // Stable linking (docs/STABLE_LINKING.md): maintain a persistent resolution
  // manifest on the shared partition. Warm starts whose image and module contents
  // all verify against the manifest install the recorded resolutions directly and
  // skip scope walks entirely; any mismatch falls back to scoped resolution and
  // the manifest is rebuilt. Off by default (opt in via hemrun --manifest).
  bool use_manifest = false;
};

// Legacy stats view. The single source of truth is the linker's MetricsRegistry
// ("ldl.*" counters); this struct is materialized from it on demand so existing
// callers keep working while new code reads the registry directly.
struct LdlStats {
  uint32_t modules_located = 0;
  uint32_t publics_created = 0;   // dynamic public modules created from templates
  uint32_t publics_rebuilt = 0;   // half-created/corrupt public modules recreated
  uint32_t publics_attached = 0;  // existing public modules mapped
  uint32_t privates_instantiated = 0;
  uint32_t link_faults = 0;       // faults that triggered lazy resolution
  uint32_t map_faults = 0;        // pointer-follow faults that mapped an SFS segment
  uint32_t plt_faults = 0;        // function-lazy: first-call bindings through sentinels
  uint32_t relocs_applied = 0;
  uint32_t lock_acquisitions = 0;
  uint32_t lock_retries = 0;      // creation-lock attempts that found it held
  uint32_t lock_waits = 0;        // faults parked waiting for a live creator's lock
  uint32_t unresolved_refs = 0;   // lookups that failed (left for fault-time recovery)
  uint32_t deps_missing = 0;      // distinct module-list entries that could not be located
  uint32_t lookups = 0;           // scoped symbol lookups requested
  uint32_t cache_hits = 0;        // answered from a module's memoized scope cache
  uint32_t cache_misses = 0;      // required a scope walk
  uint32_t manifest_hits = 0;     // modules whose resolutions came from the manifest
  uint32_t manifest_misses = 0;   // manifest records that failed verification
  uint32_t manifest_rebuilds = 0; // manifest flushes written to disk
  uint32_t manifest_rejected = 0; // manifests/records discarded as unusable
  uint32_t manifest_negative_hits = 0;   // lookups answered by recorded absences
  uint32_t manifest_shared_parses = 0;   // warm starts that reused a verified parse
};

class Ldl {
 public:
  Ldl(Machine* machine, LoadImage image, LdlOptions options);

  // Runs the start-up duties for |proc| (called by the loader before entry).
  Status Startup(Process& proc);

  // The fault-handler entry point: returns true if the fault was resolved and the
  // instruction should be retried. When resolution runs into a public segment that
  // a *live* process is still creating, the faulting process is parked on the
  // segment's address (Machine::BlockProcessOnAddr) and true is returned — the
  // retried instruction finds the finished segment after the creator's unlock, and
  // the waiter attaches instead of rebuilding.
  bool HandleFault(Machine& machine, Process& proc, const Fault& fault);

  // Explicitly resolves a module by name in |proc| (eager ablation / tests).
  Status ResolveAll(Process& proc);

  // This linker's counters ("ldl.*"). Per-process by construction: every Exec makes a
  // fresh Ldl, so its registry starts at zero.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Legacy view, materialized from metrics() (see LdlStats).
  LdlStats stats() const;
  const LoadImage& image() const { return image_; }

  // Looks up a symbol the way the *root* scope sees it (main image + root modules).
  Result<uint32_t> LookupRootSymbol(const std::string& name);

  // Number of modules currently known to the linker (mapped or registered).
  size_t ModuleCount() const { return modules_.size(); }
  // Introspection for tests: index of a module by its identity key, -1 if unknown.
  int FindModuleIndex(const std::string& key) const;
  // Pending (still unresolved) reference count of module |index|.
  uint32_t UnresolvedCountOf(int index) const;

 private:
  struct RtModule {
    std::string key;   // identity: module-file path (public) / template path (private)
    std::string name;  // diagnostic name
    ShareClass cls = ShareClass::kDynamicPublic;
    uint32_t base = 0;
    uint32_t mem_size = 0;
    uint32_t text_size = 0;
    uint32_t ino = 0;  // public modules: backing inode
    // Content identity for the resolution manifest: the template_hash stamped by
    // LinkModuleAtBase (0 for modules from pre-hash HML files — never recorded).
    uint64_t src_hash = 0;
    int parent = -1;   // scoped-linking parent (-1 = root)
    std::vector<std::string> module_list;
    std::vector<std::string> search_path;
    // All external references, kept (not drained) so resolution is idempotent and can
    // be re-applied in a forked child's address space.
    std::vector<PendingReloc> relocs;
    std::vector<AbsSymbol> exports;
    // Hashed export index (first definition wins, matching the linear-scan order the
    // exports vector used to be searched in).
    std::unordered_map<std::string, uint32_t> export_index;
    // Resolution decisions: symbol -> absolute address (shared across processes —
    // public resolutions are shared memory anyway; private modules resolve to the
    // same addresses in parent and child by construction).
    std::map<std::string, uint32_t> resolved;
    std::set<std::string> unresolved;  // failed lookups, retried on later faults
    // Memoized scoped-lookup results for references *out of* this module. Positive
    // entries are stable (exports never change after registration); negative entries
    // are cleared on every module registration and at each fault.
    std::unordered_map<std::string, uint32_t> scope_cache;
    std::unordered_set<std::string> scope_negative;
    // Negative knowledge carried over from the manifest: symbols recorded absent
    // at the last run's teardown. Unlike scope_negative these survive
    // InvalidateNegativeCaches — the verified module set is identical to the
    // recording run's, so a symbol absent then is absent now (hits are counted
    // in ldl.manifest.negative_hits).
    std::unordered_set<std::string> manifest_negative;
    // Located module-list dependencies (name -> module index; -1 memoizes a locate
    // failure). Negative entries are dropped by InvalidateNegativeCaches (every
    // registration and every fault) so later-registered modules get found —
    // positive entries are stable, a located module never un-registers.
    std::unordered_map<std::string, int> dep_cache;
    // Missing dependencies already counted/traced (so retries don't inflate them).
    std::unordered_set<std::string> deps_reported_missing;
    bool payload_private = false;      // private instance: payload mapped per process
    std::shared_ptr<std::vector<uint8_t>> private_backing;  // private instance bytes
    // Fully-linked module verified against the manifest: its resolution table was
    // left in |warm_| (the segment bytes embody it) and WriteManifest merges it.
    bool warm_covered = false;
  };

  // Locates + registers + maps a dynamic module (creating it if needed).
  // |parent| is the scoped-linking parent index (-1 for root).
  Result<int> AcquireModule(Process& proc, const std::string& name, ShareClass cls, int parent,
                            const std::vector<std::string>& dirs);
  // Registers an already-linked module (static publics at startup, or an HML file
  // discovered through a pointer-follow fault).
  Result<int> RegisterLinked(Process& proc, LinkedModule mod, ShareClass cls,
                             const std::string& key, uint32_t ino, int parent);
  Status MapModule(Process& proc, RtModule& m, bool accessible);

  // Builds (or rebuilds) a public module's segment from its template object, under
  // the creation protocol: creation_pending marker -> lock -> link -> truncate ->
  // write -> clear marker -> unlock. |rebuild| means the file existed but its
  // contents cannot be trusted (pending marker set, or unparseable).
  Result<int> CreatePublicModule(Process& proc, const ObjectFile& tpl,
                                 const std::string& module_path, uint32_t existing_ino,
                                 bool rebuild, ShareClass cls, int parent);
  // LockInode with bounded retry. A *dead* holder's lease is burned off with
  // exponential clock backoff so the lock breaks rather than the attacher failing
  // forever. A *live* holder inside fault handling instead sets |blocked_on_addr_|
  // (see HandleFault): breaking a live creator's lease would let two processes
  // write the same segment at once.
  Status LockInodeWithRetry(uint32_t ino, int pid);
  // True when the creation lock on |ino| is held by a live process other than
  // |pid| and we are inside fault handling (the only context that can block).
  bool CreatorBlocksUs(uint32_t ino, int pid);

  // Resolves the module's references (whole module, or just the page containing
  // |fault_addr| in page-granular mode) and makes the pages accessible.
  Status ResolveModule(Process& proc, int index, uint32_t fault_addr);
  // Applies every reloc whose symbol has a resolution, into this process's memory.
  Status ApplyResolved(Process& proc, RtModule& m, uint32_t page_filter);

  // Scoped symbol lookup for references out of module |index|.
  Result<uint32_t> LookupScoped(Process& proc, int index, const std::string& symbol);
  // Looks for |symbol| among the exports of the modules on |index|'s own list,
  // instantiating them (possibly inaccessibly) on demand.
  Result<uint32_t> LookupInOwnScope(Process& proc, int index, const std::string& symbol);

  // Drops every module's memoized *negative* lookups (called when a registration or a
  // new fault could turn an old miss into a hit).
  void InvalidateNegativeCaches();

  // Module whose mapping contains |addr|, -1 if none (ordered interval lookup).
  int FindModuleAt(uint32_t addr) const;

  // The directory list used to locate modules named by module |index|'s list.
  std::vector<std::string> DirsFor(Process& proc, int index);
  std::vector<std::string> RootDirs(Process& proc);
  // Convention: a dependency found on the shared partition is public, else private.
  ShareClass ClassForDependency(const std::string& name, const std::vector<std::string>& dirs);

  Status UpdatePublicTrailer(RtModule& m);

  // --- function-lazy (jump-table) machinery ---
  // Partitions a freshly registered module's pendings: trampoline call slots get
  // sentinel targets (bound on first call); data references resolve immediately.
  Status SetUpFunctionLazy(Process& proc, int index);
  // Binds one sentinel: resolves the symbol, patches its trampoline, redirects pc.
  bool HandlePltFault(Process& proc, uint32_t sentinel);

  bool HandleFaultImpl(Machine& machine, Process& proc, const Fault& fault);

  // Startup's body; the public wrapper times it into ldl.startup_ns.
  Status StartupImpl(Process& proc);

  // --- stable linking (resolution manifest) machinery ---
  // Reads + verifies the on-disk manifest against this image and the current
  // module bytes; verified records are staged in |warm_| for RegisterLinked to
  // install. Never fails the program: a bad manifest counts rejected/missed and
  // resolution proceeds cold.
  void LoadManifest(Process& proc);
  // Rebuilds this image's record from current decisions and persists the manifest
  // with the torn-write discipline (pending marker + fault points
  // "ldl.manifest.write"/"ldl.manifest.written"). Crash statuses propagate.
  Status WriteManifest();

  Machine* machine_;
  LoadImage image_;
  LdlOptions options_;

  // Set while inside HandleFault — the only context where blocking on another
  // process's creation lock is possible (Startup runs with no scheduler to return
  // to). |blocked_on_addr_| carries the wait target up through the lookup stack.
  bool in_fault_ = false;
  uint32_t blocked_on_addr_ = 0;

  // Observability: this linker's own registry (per-process counters) plus the
  // machine-wide trace ring.
  MetricsRegistry metrics_;
  TraceBuffer* trace_;
  uint64_t* c_modules_located_;
  uint64_t* c_publics_created_;
  uint64_t* c_publics_rebuilt_;
  uint64_t* c_publics_attached_;
  uint64_t* c_privates_instantiated_;
  uint64_t* c_link_faults_;
  uint64_t* c_map_faults_;
  uint64_t* c_plt_faults_;
  uint64_t* c_relocs_applied_;
  uint64_t* c_lock_acquisitions_;
  uint64_t* c_lock_retries_;
  uint64_t* c_lock_waits_;
  uint64_t* c_unresolved_refs_;
  uint64_t* c_deps_missing_;
  uint64_t* c_lookups_;
  uint64_t* c_cache_hits_;
  uint64_t* c_cache_misses_;
  uint64_t* c_scope_walks_;
  uint64_t* c_root_lookups_;
  uint64_t* c_manifest_hits_;      // modules whose recorded resolutions were installed
  uint64_t* c_manifest_misses_;    // warm start attempted, no verifiable record
  uint64_t* c_manifest_rebuilds_;  // manifest (re)written with fresh decisions
  uint64_t* c_manifest_rejected_;  // manifest unreadable/pending/corrupt, ignored
  uint64_t* c_manifest_negative_hits_;   // lookups short-circuited by recorded absences
  uint64_t* c_manifest_shared_parses_;   // verified parses reused across Execs
  uint64_t* c_startup_ns_;         // wall time spent inside Startup (link time)

  std::vector<RtModule> modules_;
  std::map<std::string, int> by_key_;
  // Ordered interval index over module mappings: base -> module index.
  std::map<uint32_t, int> by_base_;
  std::map<std::string, AbsSymbol> image_syms_;
  // Incremental first-wins index over the root scope (image symbols shadow modules;
  // modules shadow each other in registration order) — what LookupRootSymbol's
  // nested scan used to compute, now O(1).
  std::unordered_map<std::string, uint32_t> root_index_;
  uint32_t private_arena_ = 0x04000000;  // dynamic private instances grow from here
  // function-lazy: sentinel address -> (module index, symbol). Sentinels live in an
  // always-unmapped band below the stack, so calling an unbound function faults here.
  std::map<uint32_t, std::pair<int, std::string>> plt_sentinels_;
  uint32_t next_sentinel_ = 0x7F100000;

  // Stable linking state (use_manifest only). |warm_| holds the verified records
  // for this image, keyed by module identity; RegisterLinked consumes them.
  ResolutionManifest manifest_;
  std::unordered_map<std::string, ManifestModule> warm_;
  // Modules parsed while verifying the manifest, kept so the attach path does not
  // read + parse the same file again moments later. Entries are consumed (moved
  // out) on first attach; populated only when the whole image verified.
  std::unordered_map<std::string, LinkedModule> warm_parsed_;
  uint64_t image_hash_ = 0;
  bool manifest_dirty_ = false;
};

}  // namespace hemlock

#endif  // SRC_LINK_LDL_H_
