#include "src/link/ldl.h"

#include "src/base/faults.h"
#include "src/base/layout.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/link/lds.h"
#include "src/link/search.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>

namespace hemlock {

namespace {

// One verified manifest parse, shared across the processes of a scheduled
// --procs run (every Exec makes a fresh Ldl; the partition cannot change
// between the back-to-back Execs of one run). Single entry: the most recent
// verification wins, which is exactly the shape a --procs loop produces.
struct SharedManifestParse {
  std::mutex mu;
  const Machine* machine = nullptr;
  uint64_t bytes_hash = 0;
  uint64_t image_hash = 0;
  ResolutionManifest manifest;
  std::unordered_map<std::string, ManifestModule> warm;
  std::unordered_map<std::string, LinkedModule> warm_parsed;
};

SharedManifestParse& SharedParse() {
  static SharedManifestParse* cache = new SharedManifestParse();
  return *cache;
}

// Applies a pending reloc directly into process memory (kernel write path, so it works
// on pages mapped inaccessible).
Status WriteRelocToSpace(Process& proc, const PendingReloc& rel, uint32_t target) {
  uint8_t cell[4];
  RETURN_IF_ERROR(proc.space().ReadBytes(rel.site, cell, 4));
  std::vector<uint8_t> buf(cell, cell + 4);
  RETURN_IF_ERROR(ApplyReloc(&buf, rel.site, rel.type, rel.site, target));
  return proc.space().WriteBytes(rel.site, buf.data(), 4);
}

}  // namespace

Ldl::Ldl(Machine* machine, LoadImage image, LdlOptions options)
    : machine_(machine), image_(std::move(image)), options_(options), trace_(&machine->trace()) {
  c_modules_located_ = metrics_.Counter("ldl.modules_located");
  c_publics_created_ = metrics_.Counter("ldl.publics_created");
  c_publics_rebuilt_ = metrics_.Counter("ldl.publics_rebuilt");
  c_publics_attached_ = metrics_.Counter("ldl.publics_attached");
  c_privates_instantiated_ = metrics_.Counter("ldl.privates_instantiated");
  c_link_faults_ = metrics_.Counter("ldl.link_faults");
  c_map_faults_ = metrics_.Counter("ldl.map_faults");
  c_plt_faults_ = metrics_.Counter("ldl.plt_faults");
  c_relocs_applied_ = metrics_.Counter("ldl.relocs_applied");
  c_lock_acquisitions_ = metrics_.Counter("ldl.lock_acquisitions");
  c_lock_retries_ = metrics_.Counter("ldl.lock_retries");
  c_lock_waits_ = metrics_.Counter("ldl.lock_waits");
  c_unresolved_refs_ = metrics_.Counter("ldl.unresolved_refs");
  c_deps_missing_ = metrics_.Counter("ldl.deps_missing");
  c_lookups_ = metrics_.Counter("ldl.lookups");
  c_cache_hits_ = metrics_.Counter("ldl.cache_hits");
  c_cache_misses_ = metrics_.Counter("ldl.cache_misses");
  c_scope_walks_ = metrics_.Counter("ldl.scope_walks");
  c_root_lookups_ = metrics_.Counter("ldl.root_lookups");
  c_manifest_hits_ = metrics_.Counter("ldl.manifest.hits");
  c_manifest_misses_ = metrics_.Counter("ldl.manifest.misses");
  c_manifest_rebuilds_ = metrics_.Counter("ldl.manifest.rebuilds");
  c_manifest_rejected_ = metrics_.Counter("ldl.manifest.rejected");
  c_manifest_negative_hits_ = metrics_.Counter("ldl.manifest.negative_hits");
  c_manifest_shared_parses_ = metrics_.Counter("ldl.manifest.shared_parses");
  c_startup_ns_ = metrics_.Counter("ldl.startup_ns");
  for (const AbsSymbol& sym : image_.symbols) {
    image_syms_.emplace(sym.name, sym);
    root_index_.emplace(sym.name, sym.addr);
  }
}

LdlStats Ldl::stats() const {
  LdlStats s;
  s.modules_located = static_cast<uint32_t>(*c_modules_located_);
  s.publics_created = static_cast<uint32_t>(*c_publics_created_);
  s.publics_rebuilt = static_cast<uint32_t>(*c_publics_rebuilt_);
  s.publics_attached = static_cast<uint32_t>(*c_publics_attached_);
  s.privates_instantiated = static_cast<uint32_t>(*c_privates_instantiated_);
  s.link_faults = static_cast<uint32_t>(*c_link_faults_);
  s.map_faults = static_cast<uint32_t>(*c_map_faults_);
  s.plt_faults = static_cast<uint32_t>(*c_plt_faults_);
  s.relocs_applied = static_cast<uint32_t>(*c_relocs_applied_);
  s.lock_acquisitions = static_cast<uint32_t>(*c_lock_acquisitions_);
  s.lock_retries = static_cast<uint32_t>(*c_lock_retries_);
  s.lock_waits = static_cast<uint32_t>(*c_lock_waits_);
  s.unresolved_refs = static_cast<uint32_t>(*c_unresolved_refs_);
  s.deps_missing = static_cast<uint32_t>(*c_deps_missing_);
  s.lookups = static_cast<uint32_t>(*c_lookups_);
  s.cache_hits = static_cast<uint32_t>(*c_cache_hits_);
  s.cache_misses = static_cast<uint32_t>(*c_cache_misses_);
  s.manifest_hits = static_cast<uint32_t>(*c_manifest_hits_);
  s.manifest_misses = static_cast<uint32_t>(*c_manifest_misses_);
  s.manifest_rebuilds = static_cast<uint32_t>(*c_manifest_rebuilds_);
  s.manifest_rejected = static_cast<uint32_t>(*c_manifest_rejected_);
  s.manifest_negative_hits = static_cast<uint32_t>(*c_manifest_negative_hits_);
  s.manifest_shared_parses = static_cast<uint32_t>(*c_manifest_shared_parses_);
  return s;
}

int Ldl::FindModuleIndex(const std::string& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? -1 : it->second;
}

uint32_t Ldl::UnresolvedCountOf(int index) const {
  if (index < 0 || index >= static_cast<int>(modules_.size())) {
    return 0;
  }
  const RtModule& m = modules_[index];
  uint32_t n = 0;
  for (const PendingReloc& rel : m.relocs) {
    if (m.resolved.count(rel.symbol) == 0) {
      ++n;
    }
  }
  return n;
}

int Ldl::FindModuleAt(uint32_t addr) const {
  // Greatest base <= addr, then a bounds check — module mappings are disjoint.
  auto it = by_base_.upper_bound(addr);
  if (it == by_base_.begin()) {
    return -1;
  }
  --it;
  const RtModule& m = modules_[it->second];
  return (addr >= m.base && addr < m.base + m.mem_size) ? it->second : -1;
}

void Ldl::InvalidateNegativeCaches() {
  for (RtModule& m : modules_) {
    m.scope_negative.clear();
    // Negative dep_cache entries (-1: locate failed) go with them — a freshly
    // registered module may be exactly the dependency that could not be found.
    // Positive entries are stable (a located module never un-registers).
    for (auto it = m.dep_cache.begin(); it != m.dep_cache.end();) {
      it = it->second < 0 ? m.dep_cache.erase(it) : std::next(it);
    }
  }
}

std::vector<std::string> Ldl::RootDirs(Process& proc) {
  // Run-time order (paper §3): current LD_LIBRARY_PATH, then the saved static dirs.
  return DynamicSearchDirs(proc.GetEnv(kLdLibraryPathVar), image_.search_path);
}

std::vector<std::string> Ldl::DirsFor(Process& proc, int index) {
  if (index < 0) {
    return RootDirs(proc);
  }
  // A module's own search path; scoped fallback walks the parent chain separately.
  return modules_[index].search_path;
}

Status Ldl::Startup(Process& proc) {
  auto t0 = std::chrono::steady_clock::now();
  Status status = StartupImpl(proc);
  *c_startup_ns_ += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - t0)
          .count());
  return status;
}

Status Ldl::StartupImpl(Process& proc) {
  // (0) Stable linking: read + verify the persistent resolution manifest. Verified
  // records are staged in |warm_|; RegisterLinked installs them as the modules
  // appear, so every path below (static publics, dynamic acquires, lazy faults)
  // benefits without knowing the manifest exists.
  if (options_.use_manifest) {
    LoadManifest(proc);
  }

  // (2) Map static public modules (created by lds; "Ldl also creates any static
  // public modules that do not yet exist" — covered by AcquireModule's create path
  // when a static public template appears only at run time).
  for (const StaticPublicRef& ref : image_.static_publics) {
    if (by_key_.count(ref.module_path) != 0) {
      continue;
    }
    LinkedModule mod;
    auto cached = warm_parsed_.find(ref.module_path);
    if (cached != warm_parsed_.end()) {
      mod = std::move(cached->second);
      warm_parsed_.erase(cached);
    } else {
      ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, machine_->vfs().ReadFile(ref.module_path));
      ASSIGN_OR_RETURN(mod, LinkedModule::DeserializeFile(bytes));
    }
    ASSIGN_OR_RETURN(SfsStat st, machine_->sfs().Stat(Vfs::SfsRelative(ref.module_path)));
    ASSIGN_OR_RETURN(int idx, RegisterLinked(proc, std::move(mod), ShareClass::kStaticPublic,
                                             ref.module_path, st.ino, /*parent=*/-1));
    (void)idx;
    ++*c_publics_attached_;
  }

  // (1)+(3) Locate dynamic modules; instantiate privates; create missing publics; map.
  std::vector<std::string> dirs = RootDirs(proc);
  for (const DynModuleRecord& rec : image_.dynamic_modules) {
    Result<int> idx = AcquireModule(proc, rec.name, rec.cls, /*parent=*/-1, dirs);
    if (!idx.ok()) {
      if (IsCrash(idx.status())) {
        return idx.status();  // an injected crash kills the machine, not just this module
      }
      // Still missing at run time: leave its symbols unresolved (faults at use are
      // the application's recovery hook).
      HLOG(Warning) << "ldl: dynamic module '" << rec.name
                    << "' not found at startup: " << idx.status().ToString();
    }
  }

  // (4) Resolve undefined references from the main load image against the dynamic
  // modules — "even when the location of those symbols was not known at static link
  // time".
  for (const PendingReloc& rel : image_.pending) {
    Result<uint32_t> addr = LookupRootSymbol(rel.symbol);
    if (!addr.ok()) {
      ++*c_unresolved_refs_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kUnresolved, rel.symbol, "<image>");
      HLOG(Info) << "ldl: image reference to '" << rel.symbol << "' left unresolved";
      continue;
    }
    uint32_t target = *addr + static_cast<uint32_t>(rel.addend);
    RETURN_IF_ERROR(WriteRelocToSpace(proc, rel, target));
    ++*c_relocs_applied_;
  }

  if (!options_.lazy) {
    RETURN_IF_ERROR(ResolveAll(proc));
  }

  // Persist the resolution decisions made so far. A write failure never fails the
  // program (the manifest is an optimization), but an injected crash kills the
  // machine mid-write exactly like the module-creation fault points do.
  if (options_.use_manifest) {
    Status ws = WriteManifest();
    if (!ws.ok()) {
      if (IsCrash(ws)) {
        return ws;
      }
      HLOG(Warning) << "ldl: resolution manifest not written: " << ws.ToString();
    }
  }
  return OkStatus();
}

Result<int> Ldl::AcquireModule(Process& proc, const std::string& name, ShareClass cls, int parent,
                               const std::vector<std::string>& dirs) {
  Vfs& vfs = machine_->vfs();
  ASSIGN_OR_RETURN(std::string found, FindModuleFile(vfs, name, dirs));
  ++*c_modules_located_;

  if (IsPublic(cls)) {
    // The module file lives next to where the *name* was found (symlinks included —
    // the Presto temp-directory recipe depends on this), named by dropping ".o".
    std::string module_path = StripExtension(found);
    if (!Vfs::OnSharedPartition(module_path)) {
      return InvalidArgument("ldl: public module '" + name +
                             "' must reside on the shared partition (found at " + found + ")");
    }
    auto it = by_key_.find(module_path);
    if (it != by_key_.end()) {
      // Already known to this linker; make sure it is mapped in this process.
      RtModule& m = modules_[it->second];
      if (!proc.space().IsMapped(m.base)) {
        bool accessible = options_.function_lazy || UnresolvedCountOf(it->second) == 0;
        RETURN_IF_ERROR(MapModule(proc, m, accessible));
      }
      return it->second;
    }
    if (vfs.Exists(module_path)) {
      ASSIGN_OR_RETURN(SfsStat st, machine_->sfs().Stat(Vfs::SfsRelative(module_path)));
      // Attach only a segment whose creation provably completed: the pending marker
      // must be clear and the contents must parse. Anything else is a creator's
      // corpse (crash between Create and the final write) — rebuild from template.
      bool trustworthy = !machine_->sfs().CreationPending(st.ino);
      if (trustworthy) {
        auto cached = warm_parsed_.find(module_path);
        if (cached != warm_parsed_.end()) {
          // Manifest verification already read and parsed this exact file.
          LinkedModule mod = std::move(cached->second);
          warm_parsed_.erase(cached);
          ++*c_publics_attached_;
          return RegisterLinked(proc, std::move(mod), cls, module_path, st.ino, parent);
        }
        ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, vfs.ReadFile(module_path));
        Result<LinkedModule> mod = LinkedModule::DeserializeFile(bytes);
        if (mod.ok()) {
          ++*c_publics_attached_;
          return RegisterLinked(proc, std::move(*mod), cls, module_path, st.ino, parent);
        }
        trustworthy = false;
      }
      if (!trustworthy) {
        // Untrustworthy because a *live* process is mid-creation (pending marker up,
        // lock held)? Then this is contention, not a corpse: park the faulting
        // process until the creator unlocks, and attach the finished segment on
        // retry. Rebuilding here would race the creator's writes.
        if (CreatorBlocksUs(st.ino, proc.pid())) {
          blocked_on_addr_ = SfsAddressForInode(st.ino);
          return WouldBlock("ldl: public module '" + module_path +
                            "' is being created by pid " +
                            std::to_string(machine_->sfs().LockOwner(st.ino)));
        }
        ASSIGN_OR_RETURN(std::vector<uint8_t> tpl_bytes, vfs.ReadFile(found));
        ASSIGN_OR_RETURN(ObjectFile tpl, ObjectFile::Deserialize(tpl_bytes));
        return CreatePublicModule(proc, tpl, module_path, st.ino, /*rebuild=*/true, cls, parent);
      }
    }
    // Create the public module from its template, under the creation lock (fn. 3).
    ASSIGN_OR_RETURN(std::vector<uint8_t> tpl_bytes, vfs.ReadFile(found));
    ASSIGN_OR_RETURN(ObjectFile tpl, ObjectFile::Deserialize(tpl_bytes));
    return CreatePublicModule(proc, tpl, module_path, /*existing_ino=*/0, /*rebuild=*/false, cls,
                              parent);
  }

  // Dynamic private: a fresh instance per process tree, in private memory.
  auto it = by_key_.find(found);
  if (it != by_key_.end()) {
    return it->second;
  }
  ASSIGN_OR_RETURN(std::vector<uint8_t> tpl_bytes, vfs.ReadFile(found));
  ASSIGN_OR_RETURN(ObjectFile tpl, ObjectFile::Deserialize(tpl_bytes));
  uint32_t base = private_arena_;
  uint32_t trampolines = 0;
  ASSIGN_OR_RETURN(LinkedModule mod,
                   LinkModuleAtBase(tpl, base, StripExtension(PathBasename(found)), &trampolines));
  private_arena_ += PageCeil(mod.MemSize()) + kPageSize;  // guard page between instances
  ++*c_privates_instantiated_;
  return RegisterLinked(proc, std::move(mod), ShareClass::kDynamicPrivate, found, /*ino=*/0,
                        parent);
}

bool Ldl::CreatorBlocksUs(uint32_t ino, int pid) {
  if (!in_fault_) {
    return false;  // Startup has no scheduler context to block in
  }
  int owner = machine_->sfs().LockOwner(ino);
  if (owner < 0 || owner == pid) {
    return false;
  }
  Process* holder = machine_->FindProcess(owner);
  return holder != nullptr && holder->state() != ProcState::kZombie;
}

Status Ldl::LockInodeWithRetry(uint32_t ino, int pid) {
  SharedFs& sfs = machine_->sfs();
  // Backoff in simulated partition ops: eight doublings from lease/8 add up to ~32
  // leases, so a holder that died without unlocking is guaranteed to expire.
  uint64_t backoff = std::max<uint64_t>(1, sfs.lock_lease_ops() / 8);
  Status st = OkStatus();
  for (int attempt = 0; attempt < 8; ++attempt) {
    st = sfs.LockInode(ino, pid);
    if (st.ok() || st.code() != ErrorCode::kWouldBlock) {
      return st;
    }
    ++*c_lock_retries_;
    // Burning the clock is how a *dead* holder's lease expires. Against a *live*
    // holder it would break a lease that is still protecting in-progress writes —
    // block on the inode's segment address instead and retry after its unlock.
    if (CreatorBlocksUs(ino, pid)) {
      blocked_on_addr_ = SfsAddressForInode(ino);
      return st;
    }
    sfs.AdvanceClock(backoff);
    backoff *= 2;
  }
  return st;
}

Result<int> Ldl::CreatePublicModule(Process& proc, const ObjectFile& tpl,
                                    const std::string& module_path, uint32_t existing_ino,
                                    bool rebuild, ShareClass cls, int parent) {
  SharedFs& sfs = machine_->sfs();
  FaultRegistry& faults = FaultRegistry::Global();
  std::string rel_path = Vfs::SfsRelative(module_path);
  uint32_t ino = existing_ino;
  if (!rebuild) {
    ASSIGN_OR_RETURN(ino, sfs.Create(rel_path));
  }
  // Crash-safe creation protocol: the pending marker goes up first, so every crash
  // window from here to the final write leaves a segment attachers will rebuild
  // instead of trusting.
  RETURN_IF_ERROR(sfs.SetCreationPending(ino, true));
  RETURN_IF_ERROR(faults.Check("ldl.create.pending"));
  RETURN_IF_ERROR(LockInodeWithRetry(ino, proc.pid()));
  ++*c_lock_acquisitions_;
  Status fault = faults.Check("ldl.create.locked");
  if (!fault.ok()) {
    if (!IsCrash(fault)) {
      (void)sfs.UnlockInode(ino, proc.pid());
    }
    return fault;  // a crash dies holding the lock — lease/boot cleanup's problem
  }
  uint32_t base = SfsAddressForInode(ino);
  uint32_t trampolines = 0;
  Result<LinkedModule> mod = LinkModuleAtBase(tpl, base, PathBasename(module_path), &trampolines);
  if (!mod.ok()) {
    (void)sfs.UnlockInode(ino, proc.pid());
    if (!rebuild) {
      (void)sfs.Unlink(rel_path);  // fresh create: leave no half-made file behind
    }
    return mod.status();
  }
  std::vector<uint8_t> file = mod->SerializeFile();
  // Drop any stale occupant bytes before the write: a rebuild over a torn segment
  // must not leave a previous creator's tail past the new module's end.
  RETURN_IF_ERROR(sfs.Truncate(ino, 0));
  RETURN_IF_ERROR(sfs.WriteAt(ino, 0, file.data(), static_cast<uint32_t>(file.size())));
  RETURN_IF_ERROR(faults.Check("ldl.create.written"));
  RETURN_IF_ERROR(sfs.SetCreationPending(ino, false));
  RETURN_IF_ERROR(sfs.UnlockInode(ino, proc.pid()));
  ++*(rebuild ? c_publics_rebuilt_ : c_publics_created_);
  return RegisterLinked(proc, std::move(*mod), cls, module_path, ino, parent);
}

Result<int> Ldl::RegisterLinked(Process& proc, LinkedModule mod, ShareClass cls,
                                const std::string& key, uint32_t ino, int parent) {
  RtModule m;
  m.key = key;
  m.name = mod.name;
  m.cls = cls;
  m.base = mod.base;
  m.mem_size = mod.MemSize();
  m.text_size = mod.text_size;
  m.ino = ino;
  m.src_hash = mod.template_hash;
  m.parent = parent;
  m.module_list = mod.module_list;
  m.search_path = mod.search_path;
  m.relocs = mod.pending;
  m.exports = mod.exports;
  m.export_index.reserve(m.exports.size());
  for (const AbsSymbol& sym : m.exports) {
    m.export_index.emplace(sym.name, sym.addr);  // first definition wins
  }
  if (!IsPublic(cls)) {
    m.payload_private = true;
    auto backing = std::make_shared<std::vector<uint8_t>>(PageCeil(m.mem_size), 0);
    std::copy(mod.payload.begin(), mod.payload.end(), backing->begin());
    m.private_backing = std::move(backing);
  }
  int index = static_cast<int>(modules_.size());
  modules_.push_back(std::move(m));
  by_key_[key] = index;
  by_base_[modules_[index].base] = index;
  // Root scope sees modules in registration order; try_emplace keeps the first
  // winner without allocating a node for shadowed duplicates.
  for (const AbsSymbol& sym : modules_[index].exports) {
    root_index_.try_emplace(sym.name, sym.addr);
  }
  // A new module can only turn old misses into hits: drop memoized negatives.
  InvalidateNegativeCaches();
  RtModule& ref = modules_[index];
  // Stable linking: adopt the manifest's recorded resolutions for this module.
  // LoadManifest already verified content hashes against the bytes on disk, but the
  // identity is re-checked here against the module *actually registered* — the
  // install-time belt under the load-time suspenders.
  if (options_.use_manifest) {
    bool covered = false;
    auto rec = warm_.find(key);
    if (rec != warm_.end()) {
      const ManifestModule& wm = rec->second;
      if (wm.base == ref.base && ref.src_hash != 0 && wm.src_hash == ref.src_hash) {
        ref.manifest_negative.insert(wm.negatives.begin(), wm.negatives.end());
        if (!ref.relocs.empty()) {
          // Partially linked (function-lazy trailers): seed `resolved` so the
          // remaining bindings skip their lookups and `scope_cache` so residual
          // lookups stay cache hits.
          for (const auto& [symbol, addr] : wm.resolved) {
            ref.resolved.emplace(symbol, addr);
            ref.scope_cache.emplace(symbol, addr);
          }
        } else {
          // Fully linked: the shared segment bytes already carry every patched
          // site, so copying ~the whole resolution table into maps would be pure
          // bookkeeping. Mark the module covered; WriteManifest merges the
          // record back from |warm_| if the manifest ever goes dirty.
          ref.warm_covered = true;
        }
        ++*c_manifest_hits_;
        covered = true;
      } else {
        ++*c_manifest_rejected_;
        warm_.erase(rec);  // stale record: never merge it into a future write
      }
    }
    // A verifiable module the manifest did not cover means the persisted record
    // is stale or incomplete — even if this module needs no fresh resolutions
    // (trailer-restored state), the next flush must re-record the full set.
    if (!covered && ref.src_hash != 0) {
      manifest_dirty_ = true;
    }
  }
  bool fully_linked = ref.relocs.empty();
  if (options_.function_lazy && !fully_linked) {
    // Jump-table scheme: the module is accessible from the start; calls bind lazily
    // through sentinels, data references resolve now.
    RETURN_IF_ERROR(MapModule(proc, ref, /*accessible=*/true));
    RETURN_IF_ERROR(SetUpFunctionLazy(proc, index));
    return index;
  }
  RETURN_IF_ERROR(MapModule(proc, ref, /*accessible=*/fully_linked || !options_.lazy));
  if (!options_.lazy && !fully_linked) {
    RETURN_IF_ERROR(ResolveModule(proc, index, /*fault_addr=*/0));
  }
  return index;
}

Status Ldl::SetUpFunctionLazy(Process& proc, int index) {
  // Identify trampoline slots: a pending HI16 at s with a matching LO16 at s+4 for the
  // same symbol, inside the text region, followed by `jr $at` — the fragment layout
  // LinkModuleAtBase emits for external calls.
  struct PltSlot {
    uint32_t hi_site = 0;
    std::string symbol;
  };
  std::vector<PltSlot> plt;
  std::set<std::string> plt_symbols;
  std::vector<std::string> data_symbols;
  {
    const RtModule& m = modules_[index];
    const uint32_t jr_at = EncodeJr(kRegAt);
    std::set<uint32_t> plt_sites;
    for (size_t i = 0; i < m.relocs.size(); ++i) {
      const PendingReloc& rel = m.relocs[i];
      if (rel.type != RelocType::kHi16 || rel.site < m.base ||
          rel.site >= m.base + m.text_size) {
        continue;
      }
      bool has_lo = false;
      for (const PendingReloc& other : m.relocs) {
        if (other.type == RelocType::kLo16 && other.site == rel.site + 4 &&
            other.symbol == rel.symbol) {
          has_lo = true;
          break;
        }
      }
      uint8_t word[4];
      if (!has_lo || !proc.space().ReadBytes(rel.site + 8, word, 4).ok()) {
        continue;
      }
      uint32_t jr = 0;
      std::memcpy(&jr, word, 4);
      if (jr != jr_at) {
        continue;
      }
      plt.push_back(PltSlot{rel.site, rel.symbol});
      plt_symbols.insert(rel.symbol);
      plt_sites.insert(rel.site);
      plt_sites.insert(rel.site + 4);
    }
    for (const PendingReloc& rel : m.relocs) {
      if (plt_sites.count(rel.site) == 0 &&
          modules_[index].resolved.count(rel.symbol) == 0) {
        data_symbols.push_back(rel.symbol);
      }
    }
  }

  // Data references resolve at map time — the SunOS scheme's non-lazy half.
  for (const std::string& symbol : data_symbols) {
    if (modules_[index].resolved.count(symbol) != 0 || plt_symbols.count(symbol) != 0) {
      continue;
    }
    Result<uint32_t> addr = LookupScoped(proc, index, symbol);
    if (addr.ok()) {
      modules_[index].resolved[symbol] = *addr;
      manifest_dirty_ = true;
    } else if (modules_[index].unresolved.insert(symbol).second) {
      ++*c_unresolved_refs_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kUnresolved, symbol, modules_[index].name);
    }
  }
  // Apply everything resolved so far, except the call slots that stay lazy.
  {
    RtModule& m = modules_[index];
    for (const PendingReloc& rel : m.relocs) {
      if (plt_symbols.count(rel.symbol) != 0) {
        continue;
      }
      auto it = m.resolved.find(rel.symbol);
      if (it == m.resolved.end()) {
        continue;
      }
      RETURN_IF_ERROR(
          WriteRelocToSpace(proc, rel, it->second + static_cast<uint32_t>(rel.addend)));
      ++*c_relocs_applied_;
    }
  }
  // Aim each call slot at its sentinel (one sentinel per (module, symbol)).
  std::map<std::string, uint32_t> symbol_sentinel;
  for (const auto& [sentinel, entry] : plt_sentinels_) {
    if (entry.first == index) {
      symbol_sentinel[entry.second] = sentinel;
    }
  }
  RtModule& m = modules_[index];
  for (const PltSlot& slot : plt) {
    uint32_t sentinel = 0;
    auto found = symbol_sentinel.find(slot.symbol);
    if (found != symbol_sentinel.end()) {
      sentinel = found->second;
    } else {
      sentinel = next_sentinel_;
      next_sentinel_ += 16;
      plt_sentinels_[sentinel] = {index, slot.symbol};
      symbol_sentinel[slot.symbol] = sentinel;
    }
    PendingReloc hi{RelocType::kHi16, slot.hi_site, slot.symbol, 0};
    PendingReloc lo{RelocType::kLo16, slot.hi_site + 4, slot.symbol, 0};
    RETURN_IF_ERROR(WriteRelocToSpace(proc, hi, sentinel));
    RETURN_IF_ERROR(WriteRelocToSpace(proc, lo, sentinel));
  }
  (void)m;
  return OkStatus();
}

bool Ldl::HandlePltFault(Process& proc, uint32_t sentinel) {
  auto it = plt_sentinels_.find(sentinel);
  if (it == plt_sentinels_.end()) {
    return false;
  }
  auto [index, symbol] = it->second;
  uint32_t target = 0;
  auto resolved = modules_[index].resolved.find(symbol);
  if (resolved != modules_[index].resolved.end()) {
    target = resolved->second;
  } else {
    Result<uint32_t> addr = LookupScoped(proc, index, symbol);
    if (!addr.ok()) {
      HLOG(Info) << "ldl: call to unresolved '" << symbol << "' (function-lazy)";
      return false;  // calling a symbol nobody defines: fatal, as in the paper
    }
    target = *addr;
    modules_[index].resolved[symbol] = target;
    manifest_dirty_ = true;
  }
  // Bind: patch every call slot for this symbol so later calls go direct.
  for (const PendingReloc& rel : modules_[index].relocs) {
    if (rel.symbol != symbol) {
      continue;
    }
    if (!WriteRelocToSpace(proc, rel, target + static_cast<uint32_t>(rel.addend)).ok()) {
      return false;
    }
    ++*c_relocs_applied_;
  }
  ++*c_plt_faults_;
  if (trace_->enabled()) trace_->Emit(TraceKind::kFaultHandled, "plt", symbol, sentinel, target);
  if (modules_[index].ino != 0) {
    (void)UpdatePublicTrailer(modules_[index]);
  }
  // The call is already in flight ($ra holds the return address); continue directly
  // at the freshly bound callee.
  proc.cpu().pc = target;
  return true;
}

Status Ldl::MapModule(Process& proc, RtModule& m, bool accessible) {
  Prot prot = accessible ? Prot::kAll : Prot::kNone;
  if (trace_->enabled()) trace_->Emit(TraceKind::kModuleMapped, m.name, "", m.base, accessible ? 1 : 0);
  if (m.payload_private) {
    return proc.space().MapPrivate(m.base, m.mem_size, prot, m.private_backing, 0);
  }
  RETURN_IF_ERROR(machine_->sfs().EnsureExtent(m.ino, PageCeil(m.mem_size)));
  return proc.space().MapPublic(m.base, m.mem_size, prot, m.ino, 0);
}

Result<uint32_t> Ldl::LookupRootSymbol(const std::string& name) {
  ++*c_root_lookups_;
  // root_index_ holds the image's symbols plus every registered module's exports,
  // first definition wins — exactly the old nested scan, precomputed.
  auto it = root_index_.find(name);
  if (it != root_index_.end()) {
    return it->second;
  }
  return NotFound("symbol '" + name + "' not found in the root scope");
}

Result<uint32_t> Ldl::LookupInOwnScope(Process& proc, int index, const std::string& symbol) {
  // Instantiate (lazily, possibly inaccessibly) the modules on this module's own list
  // and search their exports. Copy the list: AcquireModule may grow modules_ and
  // invalidate references into it.
  std::vector<std::string> dep_names = modules_[index].module_list;
  for (const std::string& dep_name : dep_names) {
    int dep_index = -1;
    auto cached = modules_[index].dep_cache.find(dep_name);
    if (cached != modules_[index].dep_cache.end()) {
      dep_index = cached->second;
      if (dep_index < 0) {
        continue;  // memoized locate failure; dropped on registration / next fault
      }
    } else {
      // "If this strategy fails, it reverts to the strategy of the module(s) that make
      // references into the new module": walk ancestor dir lists on locate failure.
      Result<int> dep = NotFound("unresolved dependency");
      int scope = index;
      while (true) {
        std::vector<std::string> dirs = DirsFor(proc, scope);
        dep = AcquireModule(proc, dep_name, ClassForDependency(dep_name, dirs), index, dirs);
        if (dep.ok() || scope < 0) {
          break;
        }
        scope = modules_[scope].parent;
      }
      if (!dep.ok()) {
        if (blocked_on_addr_ != 0) {
          // Not missing — being created by a live process right now. Propagate so
          // the fault handler parks this process instead of recording a false miss.
          return dep.status();
        }
        // Dependency missing entirely; its symbols stay unresolved. This used to be a
        // silent `continue` — record it once per (module, dependency) so lost
        // dependencies are diagnosable.
        RtModule& m = modules_[index];
        if (m.deps_reported_missing.insert(dep_name).second) {
          ++*c_deps_missing_;
          if (trace_->enabled()) trace_->Emit(TraceKind::kDepMissing, dep_name, m.name);
          HLOG(Warning) << "ldl: module '" << m.name << "' lists dependency '" << dep_name
                        << "' which could not be located";
        }
        // Memoize the failure like a negative symbol lookup: retrying the whole
        // ancestor dir walk on every lookup is wasted work until something changes.
        // InvalidateNegativeCaches drops it, so a registration (or the next fault)
        // gives the dependency another chance — the stale-failure bug was keeping
        // dep misses forever while symbol misses were correctly invalidated.
        m.dep_cache.emplace(dep_name, -1);
        continue;
      }
      dep_index = *dep;
      modules_[index].dep_cache.emplace(dep_name, dep_index);
    }
    const RtModule& dep_mod = modules_[dep_index];
    auto sym = dep_mod.export_index.find(symbol);
    if (sym != dep_mod.export_index.end()) {
      return sym->second;
    }
  }
  return NotFound("not in own scope");
}

// Convention: a dependency whose template is found on the shared partition is a public
// module; anything else instantiates privately.
ShareClass Ldl::ClassForDependency(const std::string& name,
                                   const std::vector<std::string>& dirs) {
  Result<std::string> found = FindModuleFile(machine_->vfs(), name, dirs);
  if (found.ok()) {
    Result<std::string> resolved = machine_->vfs().Resolve(*found);
    std::string target = resolved.ok() ? *resolved : *found;
    if (Vfs::OnSharedPartition(StripExtension(*found)) || Vfs::OnSharedPartition(target)) {
      return ShareClass::kDynamicPublic;
    }
  }
  return ShareClass::kDynamicPrivate;
}

Result<uint32_t> Ldl::LookupScoped(Process& proc, int index, const std::string& symbol) {
  ++*c_lookups_;
  {
    RtModule& m = modules_[index];
    auto hit = m.scope_cache.find(symbol);
    if (hit != m.scope_cache.end()) {
      ++*c_cache_hits_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kCacheHit, symbol, m.name, hit->second);
      return hit->second;
    }
    if (m.scope_negative.count(symbol) != 0) {
      ++*c_cache_hits_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kCacheHit, symbol, m.name);
      return NotFound("symbol '" + symbol + "' not found (memoized miss)");
    }
    if (m.manifest_negative.count(symbol) != 0) {
      // Recorded absent at the last run's teardown; the verified module set is
      // the same, so skip the walk — and the retry-on-later-fault churn.
      ++*c_manifest_negative_hits_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kCacheHit, symbol, m.name);
      return NotFound("symbol '" + symbol + "' not found (recorded absent)");
    }
  }
  ++*c_cache_misses_;
  if (trace_->enabled()) trace_->Emit(TraceKind::kCacheMiss, symbol, modules_[index].name);

  // Up the DAG: own scope, then parent's, then grandparent's, ... then root.
  uint32_t depth = 0;
  Result<uint32_t> addr = NotFound("unresolved");
  int cur = index;
  while (cur >= 0) {
    ++depth;
    ++*c_scope_walks_;
    addr = LookupInOwnScope(proc, cur, symbol);
    if (addr.ok()) {
      break;
    }
    if (blocked_on_addr_ != 0) {
      // A scope module is mid-creation elsewhere: don't memoize this as a miss —
      // the symbol may well exist once the creator finishes.
      return addr;
    }
    cur = modules_[cur].parent;
  }
  if (!addr.ok()) {
    addr = LookupRootSymbol(symbol);
  }
  // modules_ may have grown (and moved) during the walk; re-acquire the reference.
  RtModule& m = modules_[index];
  if (addr.ok()) {
    m.scope_cache.emplace(symbol, *addr);
  } else {
    m.scope_negative.insert(symbol);
  }
  if (trace_->enabled()) trace_->Emit(TraceKind::kScopeWalk, symbol, m.name, addr.ok() ? *addr : 0, depth);
  if (trace_->enabled()) trace_->Emit(TraceKind::kSymbolLookup, symbol, m.name, addr.ok() ? *addr : 0);
  return addr;
}

Status Ldl::ApplyResolved(Process& proc, RtModule& m, uint32_t page_filter) {
  for (const PendingReloc& rel : m.relocs) {
    if (page_filter != 0 && PageFloor(rel.site) != page_filter) {
      continue;
    }
    auto it = m.resolved.find(rel.symbol);
    if (it == m.resolved.end()) {
      continue;
    }
    RETURN_IF_ERROR(
        WriteRelocToSpace(proc, rel, it->second + static_cast<uint32_t>(rel.addend)));
    ++*c_relocs_applied_;
  }
  return OkStatus();
}

Status Ldl::ResolveModule(Process& proc, int index, uint32_t fault_addr) {
  uint32_t page_filter = 0;
  if (options_.page_granular && fault_addr != 0) {
    page_filter = PageFloor(fault_addr);
  }
  // Phase 1: make lookup decisions for every symbol this module (or page) needs.
  // (Indexing modules_ by value each round: lookups may register new modules and
  // invalidate references.)
  std::vector<std::string> needed;
  for (const PendingReloc& rel : modules_[index].relocs) {
    if (page_filter != 0 && PageFloor(rel.site) != page_filter) {
      continue;
    }
    if (modules_[index].resolved.count(rel.symbol) != 0) {
      continue;
    }
    needed.push_back(rel.symbol);
  }
  for (const std::string& symbol : needed) {
    if (modules_[index].resolved.count(symbol) != 0) {
      continue;
    }
    Result<uint32_t> addr = LookupScoped(proc, index, symbol);
    if (addr.ok()) {
      modules_[index].resolved[symbol] = *addr;
      modules_[index].unresolved.erase(symbol);
      manifest_dirty_ = true;
    } else if (blocked_on_addr_ != 0) {
      // Resolution must pause for a segment under creation; leave the module's
      // pages closed and let the retried fault finish the job after the wake.
      return WouldBlock("ldl: resolution of module '" + modules_[index].name +
                        "' blocked on a segment under creation");
    } else {
      // Left unresolved: a use will fault, which the application may catch
      // (paper: "could be used ... to trigger application-specific recovery").
      if (modules_[index].unresolved.insert(symbol).second) {
        ++*c_unresolved_refs_;
        if (trace_->enabled()) trace_->Emit(TraceKind::kUnresolved, symbol, modules_[index].name);
        HLOG(Info) << "ldl: reference to '" << symbol << "' from module '"
                   << modules_[index].name << "' left unresolved";
      }
    }
  }
  // Phase 2: apply and open the pages.
  RtModule& m = modules_[index];
  RETURN_IF_ERROR(ApplyResolved(proc, m, page_filter));
  if (page_filter != 0) {
    RETURN_IF_ERROR(proc.space().Protect(page_filter, kPageSize, Prot::kAll));
  } else {
    RETURN_IF_ERROR(proc.space().Protect(m.base, m.mem_size, Prot::kAll));
  }
  if (m.ino != 0) {
    RETURN_IF_ERROR(UpdatePublicTrailer(m));
  }
  return OkStatus();
}

Status Ldl::UpdatePublicTrailer(RtModule& m) {
  // Persist the shrinking pending list so a later boot (or another program) sees the
  // module's resolution state. Only the trailer region past the mapped pages is
  // rewritten; the live segment bytes are untouched.
  ASSIGN_OR_RETURN(SfsStat st, machine_->sfs().StatInode(m.ino));
  std::vector<uint8_t> file(st.size);
  ASSIGN_OR_RETURN(uint32_t n, machine_->sfs().ReadAt(m.ino, 0, file.data(), st.size));
  file.resize(n);
  ASSIGN_OR_RETURN(LinkedModule mod, LinkedModule::DeserializeFile(file));
  std::vector<PendingReloc> still;
  for (const PendingReloc& rel : mod.pending) {
    if (m.resolved.count(rel.symbol) == 0) {
      still.push_back(rel);
    }
  }
  if (still.size() == mod.pending.size()) {
    return OkStatus();
  }
  mod.pending = std::move(still);
  // Refresh the payload from the live segment so already-applied relocations persist.
  uint32_t init = mod.text_size + mod.data_size;
  mod.payload.resize(init);
  ASSIGN_OR_RETURN(uint32_t read, machine_->sfs().ReadAt(m.ino, 0, mod.payload.data(), init));
  (void)read;
  std::vector<uint8_t> out = mod.SerializeFile();
  RETURN_IF_ERROR(machine_->sfs().Truncate(m.ino, 0));
  return machine_->sfs().WriteAt(m.ino, 0, out.data(), static_cast<uint32_t>(out.size()));
}

Status Ldl::ResolveAll(Process& proc) {
  // Transitive closure: resolving one module can register more.
  size_t done = 0;
  while (done < modules_.size()) {
    size_t index = done++;
    if (UnresolvedCountOf(static_cast<int>(index)) > 0 || !options_.lazy) {
      RETURN_IF_ERROR(ResolveModule(proc, static_cast<int>(index), 0));
    } else if (!proc.space().IsMapped(modules_[index].base)) {
      RETURN_IF_ERROR(MapModule(proc, modules_[index], /*accessible=*/true));
    } else {
      RETURN_IF_ERROR(
          proc.space().Protect(modules_[index].base, modules_[index].mem_size, Prot::kAll));
    }
  }
  return OkStatus();
}

bool Ldl::HandleFault(Machine& machine, Process& proc, const Fault& fault) {
  in_fault_ = true;
  blocked_on_addr_ = 0;
  bool handled = HandleFaultImpl(machine, proc, fault);
  in_fault_ = false;
  if (!handled && blocked_on_addr_ != 0) {
    // Resolution ran into a segment that a live process is still creating. Park the
    // faulter on the segment's address; the creator's unlock (or exit) wakes it and
    // the retried instruction attaches the finished segment.
    uint32_t addr = blocked_on_addr_;
    blocked_on_addr_ = 0;
    ++*c_lock_waits_;
    if (trace_->enabled()) trace_->Emit(TraceKind::kFaultHandled, "lock_wait", "", addr);
    HLOG(Info) << "ldl: pid " << proc.pid()
               << StrFormat(" waiting for segment creation at 0x%08X", addr);
    machine.BlockProcessOnAddr(proc, addr);
    return true;
  }
  blocked_on_addr_ = 0;
  // Flush fresh resolution decisions to the manifest while the fault context is
  // still ours. Write failures don't undo the (already successful) resolution —
  // except an injected crash, which kills this process mid-write like any other
  // fault-point crash (the pending marker makes the next boot reject the torn
  // manifest and resolve cold).
  if (handled && options_.use_manifest && manifest_dirty_) {
    Status ws = WriteManifest();
    if (!ws.ok()) {
      HLOG(Warning) << "ldl: resolution manifest not written: " << ws.ToString();
      if (IsCrash(ws)) {
        return false;
      }
    }
  }
  return handled;
}

bool Ldl::HandleFaultImpl(Machine& machine, Process& proc, const Fault& fault) {
  // A fault is the retry signal for anything that failed before: forget memoized
  // misses so files or modules that appeared since get another chance.
  InvalidateNegativeCaches();

  // (0) Function-lazy binding: a call landed on a PLT sentinel.
  if (options_.function_lazy && fault.access == AccessKind::kExec &&
      plt_sentinels_.count(fault.addr) != 0) {
    return HandlePltFault(proc, fault.addr);
  }

  // (a) A touch of a module mapped without access permissions: lazy linking.
  int touched = FindModuleAt(fault.addr);
  if (touched >= 0) {
    if (proc.space().ProtectionAt(fault.addr) != Prot::kNone) {
      return false;  // a real protection error inside a linked module
    }
    if (!proc.space().IsMapped(fault.addr)) {
      // Known module not mapped in this process (fork edge): map it first.
      Status st = MapModule(proc, modules_[touched], /*accessible=*/false);
      if (!st.ok()) {
        return false;
      }
    }
    ++*c_link_faults_;
    if (trace_->enabled()) trace_->Emit(TraceKind::kFaultHandled, "link", modules_[touched].name, fault.addr);
    Status st = ResolveModule(proc, touched, fault.addr);
    if (!st.ok()) {
      if (blocked_on_addr_ == 0) {
        HLOG(Warning) << "ldl: lazy link of '" << modules_[touched].name
                      << "' failed: " << st.ToString();
      }
      return false;
    }
    return true;
  }

  // (b) A pointer followed into the shared region: translate address -> file, map it.
  if (InSfsRegion(fault.addr) && fault.kind == FaultKind::kUnmapped) {
    Result<uint32_t> ino = machine.sfs().AddrToInode(fault.addr);
    if (!ino.ok()) {
      return false;  // no file there: a stray pointer
    }
    Result<std::string> rel = machine.sfs().InodeToPath(*ino);
    if (!rel.ok()) {
      return false;
    }
    std::string path = std::string(kSfsMount) + *rel;
    Result<SfsStat> st_result = machine.sfs().StatInode(*ino);
    if (!st_result.ok()) {
      return false;
    }
    SfsStat st = *st_result;
    if (machine.sfs().CreationPending(*ino) && CreatorBlocksUs(*ino, proc.pid())) {
      // Half-written by a live creator: wait for its unlock rather than mapping
      // (or rebuilding over) bytes that are still changing.
      blocked_on_addr_ = SfsAddressForInode(*ino);
      return false;
    }
    Result<std::vector<uint8_t>> bytes_result = machine.vfs().ReadFile(path);
    if (!bytes_result.ok()) {
      return false;
    }
    std::vector<uint8_t> bytes = std::move(*bytes_result);
    if (LinkedModule::LooksLikeModuleFile(bytes)) {
      // A module file reached by address: register it with ldl (lazy if unlinked).
      Result<LinkedModule> mod = LinkedModule::DeserializeFile(bytes);
      if (!mod.ok()) {
        return false;
      }
      Result<int> idx = RegisterLinked(proc, std::move(*mod), ShareClass::kDynamicPublic, path,
                                       *ino, /*parent=*/-1);
      if (!idx.ok()) {
        return false;
      }
      ++*c_map_faults_;
      if (trace_->enabled()) trace_->Emit(TraceKind::kFaultHandled, "map", path, fault.addr);
      return true;
    }
    // A plain data segment: just map the file at its address, access rights
    // permitting — "it ... opens and maps the file. It then restarts the faulting
    // instruction."
    uint32_t base = SfsAddressForInode(*ino);
    uint32_t len = std::max<uint32_t>(PageCeil(st.size), kPageSize);
    if (!machine.sfs().EnsureExtent(*ino, len).ok()) {
      return false;
    }
    if (!proc.space().MapPublic(base, len, Prot::kReadWrite, *ino, 0).ok()) {
      return false;
    }
    ++*c_map_faults_;
    if (trace_->enabled()) trace_->Emit(TraceKind::kFaultHandled, "map", path, fault.addr);
    return true;
  }
  return false;
}

void Ldl::LoadManifest(Process& proc) {
  (void)proc;
  {
    std::vector<uint8_t> img = image_.Serialize();
    image_hash_ = Fnv1a64(img.data(), img.size());
  }
  SharedFs& sfs = machine_->sfs();
  Vfs& vfs = machine_->vfs();
  if (!vfs.Exists(kLdlManifestPath)) {
    ++*c_manifest_misses_;  // first run on this partition: nothing recorded yet
    return;
  }
  // A pending creation marker means a writer crashed mid-manifest (or is mid-write
  // right now): the bytes cannot be trusted even if they happen to parse.
  Result<SfsStat> st = sfs.Stat(Vfs::SfsRelative(kLdlManifestPath));
  if (!st.ok() || sfs.CreationPending(st->ino)) {
    ++*c_manifest_rejected_;
    HLOG(Warning) << "ldl: resolution manifest has a pending creation marker; ignoring it";
    return;
  }
  Result<std::vector<uint8_t>> bytes = vfs.ReadFile(kLdlManifestPath);
  if (!bytes.ok()) {
    ++*c_manifest_rejected_;
    return;
  }
  // One verified parse is shared across the back-to-back Execs of a scheduled
  // --procs run: each Exec makes a fresh Ldl, but the manifest bytes and module
  // files cannot change between them, so re-parsing and re-hashing every module
  // per process is pure waste. Keyed by machine + manifest content + image so
  // any other reuse (different world, rewritten manifest) misses; the
  // install-time identity re-check in RegisterLinked still guards each module.
  uint64_t bytes_hash = Fnv1a64(bytes->data(), bytes->size());
  {
    SharedManifestParse& cache = SharedParse();
    std::lock_guard<std::mutex> lock(cache.mu);
    if (cache.machine == machine_ && cache.bytes_hash == bytes_hash &&
        cache.image_hash == image_hash_) {
      manifest_ = cache.manifest;
      warm_ = cache.warm;
      warm_parsed_ = cache.warm_parsed;
      ++*c_manifest_shared_parses_;
      return;
    }
  }
  Result<ResolutionManifest> parsed = ResolutionManifest::Deserialize(*bytes);
  if (!parsed.ok()) {
    // Torn, corrupt, or from a different format version — never an error for the
    // program. Resolution proceeds cold and the next write replaces the file.
    ++*c_manifest_rejected_;
    HLOG(Warning) << "ldl: ignoring unusable resolution manifest: "
                  << parsed.status().ToString();
    return;
  }
  manifest_ = std::move(*parsed);
  const ManifestImage* img = manifest_.FindImage(image_hash_);
  if (img == nullptr) {
    ++*c_manifest_misses_;
    return;
  }
  // Verify every recorded module against the bytes on disk, all-or-nothing: a
  // single changed module moves symbols that *other* modules' recorded resolutions
  // point at, so partial installs would be unsound. Public modules verify against
  // the template_hash stamped in their HML trailer; private instances verify by
  // recomputing what LinkModuleAtBase would stamp (deterministic linking).
  std::unordered_map<std::string, ManifestModule> staged;
  staged.reserve(img->modules.size());
  std::unordered_map<std::string, LinkedModule> parsed_modules;
  for (const ManifestModule& rec : img->modules) {
    bool ok = false;
    if (IsPublic(rec.cls)) {
      Result<SfsStat> mst = vfs.Exists(rec.key) ? sfs.Stat(Vfs::SfsRelative(rec.key))
                                                : Result<SfsStat>(NotFound("module file gone"));
      if (mst.ok() && mst->ino == rec.ino && !sfs.CreationPending(mst->ino)) {
        Result<std::vector<uint8_t>> mb = vfs.ReadFile(rec.key);
        if (mb.ok()) {
          Result<LinkedModule> mod = LinkedModule::DeserializeFile(*mb);
          if (mod.ok() && mod->base == rec.base && mod->template_hash != 0 &&
              mod->template_hash == rec.src_hash) {
            ok = true;
            parsed_modules.emplace(rec.key, std::move(*mod));
          }
        }
      }
    } else {
      Result<std::vector<uint8_t>> tb = vfs.ReadFile(rec.key);
      if (tb.ok()) {
        Result<ObjectFile> tpl = ObjectFile::Deserialize(*tb);
        ok = tpl.ok() && LinkedTemplateHash(*tpl, rec.base) == rec.src_hash;
      }
    }
    if (!ok) {
      ++*c_manifest_misses_;
      HLOG(Info) << "ldl: manifest record for '" << rec.key
                 << "' no longer matches the bytes on disk; resolving cold";
      return;  // staged records are dropped with the local map
    }
    staged.emplace(rec.key, rec);
  }
  warm_ = std::move(staged);
  warm_parsed_ = std::move(parsed_modules);
  SharedManifestParse& cache = SharedParse();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.machine = machine_;
  cache.bytes_hash = bytes_hash;
  cache.image_hash = image_hash_;
  cache.manifest = manifest_;
  cache.warm = warm_;
  cache.warm_parsed = warm_parsed_;
}

Status Ldl::WriteManifest() {
  if (modules_.empty()) {
    return OkStatus();
  }
  if (!manifest_dirty_ && manifest_.FindImage(image_hash_) != nullptr) {
    return OkStatus();  // warm start with nothing new: leave the file untouched
  }
  ManifestImage record;
  record.image_hash = image_hash_;
  for (const RtModule& m : modules_) {
    if (m.src_hash == 0) {
      continue;  // pre-hash HML file: unverifiable on the next boot, never recorded
    }
    ManifestModule rec;
    rec.key = m.key;
    rec.name = m.name;
    rec.cls = m.cls;
    rec.base = m.base;
    rec.ino = m.ino;
    rec.src_hash = m.src_hash;
    rec.resolved.assign(m.resolved.begin(), m.resolved.end());
    // Teardown-time negative knowledge: symbols still unresolved now (plus any
    // carried over from the last record) are known-absent for this module set.
    {
      std::set<std::string> negs(m.unresolved.begin(), m.unresolved.end());
      negs.insert(m.manifest_negative.begin(), m.manifest_negative.end());
      for (const auto& [symbol, addr] : m.resolved) {
        (void)addr;
        negs.erase(symbol);  // resolved on a later fault after all: not absent
      }
      rec.negatives.assign(negs.begin(), negs.end());
    }
    if (m.warm_covered) {
      // Covered modules skipped the install, so their table still lives in
      // |warm_|; union it in (fresh decisions win) or the record would shrink.
      auto w = warm_.find(m.key);
      if (w != warm_.end() && w->second.src_hash == m.src_hash && w->second.base == m.base) {
        for (const auto& entry : w->second.resolved) {
          if (m.resolved.find(entry.first) == m.resolved.end()) {
            rec.resolved.push_back(entry);
          }
        }
        std::sort(rec.resolved.begin(), rec.resolved.end());
      }
    }
    record.modules.push_back(std::move(rec));
  }
  manifest_.Upsert(std::move(record));
  std::vector<uint8_t> bytes = manifest_.Serialize();
  if (bytes.size() > kSfsMaxFileBytes) {
    manifest_dirty_ = false;  // oversized stays oversized; don't retry every fault
    return ResourceExhausted("ldl: resolution manifest exceeds the partition file limit");
  }
  SharedFs& sfs = machine_->sfs();
  std::string rel = Vfs::SfsRelative(kLdlManifestPath);
  uint32_t ino = 0;
  Result<SfsStat> st = sfs.Stat(rel);
  if (st.ok()) {
    ino = st->ino;
  } else {
    ASSIGN_OR_RETURN(ino, sfs.Create(rel));
  }
  // Same torn-write discipline as module creation: the pending marker goes up
  // before the first byte moves, so a crash anywhere in the window leaves a file
  // the next boot rejects (and rebuilds) instead of trusting.
  FaultRegistry& faults = FaultRegistry::Global();
  RETURN_IF_ERROR(sfs.SetCreationPending(ino, true));
  RETURN_IF_ERROR(faults.Check("ldl.manifest.write"));
  RETURN_IF_ERROR(sfs.Truncate(ino, 0));
  RETURN_IF_ERROR(sfs.WriteAt(ino, 0, bytes.data(), static_cast<uint32_t>(bytes.size())));
  RETURN_IF_ERROR(faults.Check("ldl.manifest.written"));
  RETURN_IF_ERROR(sfs.SetCreationPending(ino, false));
  ++*c_manifest_rebuilds_;
  manifest_dirty_ = false;
  return OkStatus();
}

}  // namespace hemlock
