// Resolution manifests — stable linking's persistence format (ROADMAP: "persist
// symbol resolution across runs"; PAPERS.md "Symbol Resolution MatRs / Stable
// Linking").
//
// A manifest records, per load image, every resolution decision ldl made for the
// modules of that image's reachability graph: module identity (path key + the
// content hash LinkModuleAtBase stamped into the HML trailer, or the template
// digest for private instances) and the symbol -> absolute-address table. A warm
// start verifies each recorded module against the bytes on disk and, when
// everything still matches, installs the recorded resolutions directly — no scope
// walks, no root lookups, no trailer rewrites. Any mismatch (relinked module,
// changed template, different image) falls back to ordinary scoped resolution and
// the manifest is rebuilt from the fresh decisions.
//
// The manifest lives in a hidden file on the shared partition
// (kLdlManifestPath), so it persists through every channel the partition itself
// does: `hemrun --state` images, SharedFs::Serialize in tests, and the posix
// embodiment's segment files. It is an *external* format in the PR 5 sense: a
// validating decoder with allocation-bomb caps, a version gate
// (kUnsupportedVersion vs kCorruptData), a body checksum, and trailing-garbage
// rejection. A corrupt or torn manifest is never an error for the program — the
// reader rejects it, ldl counts ldl.manifest.rejected, and resolution proceeds
// cold.
#ifndef SRC_LINK_MANIFEST_H_
#define SRC_LINK_MANIFEST_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/link/image.h"

namespace hemlock {

// Where the manifest lives on the shared partition (a dotfile so directory scans
// of /shm keep showing only real segments).
inline constexpr char kLdlManifestPath[] = "/shm/.ldl.manifest";

// Decoder caps. Generous against real workloads (the partition holds at most
// 1024 modules), hostile against a crafted count header.
inline constexpr uint32_t kManifestMaxImages = 16;
inline constexpr uint32_t kManifestMaxModules = 4096;
inline constexpr uint32_t kManifestMaxResolutions = 1u << 16;

// One module's recorded identity + resolution table.
struct ManifestModule {
  std::string key;    // ldl identity: module-file path (public) / template path (private)
  std::string name;   // diagnostic name
  ShareClass cls = ShareClass::kDynamicPublic;
  uint32_t base = 0;
  uint32_t ino = 0;   // public modules: backing inode; 0 for private instances
  // Public modules: the template_hash stamped in the HML trailer. Private
  // instances: Fnv1a64(template bytes) chained with the base — what
  // LinkModuleAtBase would assign. Never 0 (unverifiable modules are not recorded).
  uint64_t src_hash = 0;
  std::vector<std::pair<std::string, uint32_t>> resolved;  // symbol -> absolute addr
  // Symbols this module still could not resolve when the recording run tore
  // down — known-absent for the whole verified module set. A warm start seeds
  // its negative knowledge from these (counted ldl.manifest.negative_hits)
  // instead of re-walking scopes on every retry-on-later-fault.
  std::vector<std::string> negatives;
};

// Every resolution decision recorded for one load image.
struct ManifestImage {
  uint64_t image_hash = 0;  // Fnv1a64 over LoadImage::Serialize()
  std::vector<ManifestModule> modules;

  // Digest of the (key, src_hash) sequence — the "module-set hash" a warm start
  // is keyed by; hemdump prints it so two states can be compared at a glance.
  uint64_t ModuleSetHash() const;
};

// The on-disk manifest: a small LRU of per-image records (several programs share
// one partition; each upsert moves its image to the back and the front falls off
// past kManifestMaxImages).
struct ResolutionManifest {
  std::vector<ManifestImage> images;

  const ManifestImage* FindImage(uint64_t image_hash) const;
  // Replaces (or inserts) the record for |record.image_hash|, most-recently-used
  // last, evicting the least-recently-used record past the cap.
  void Upsert(ManifestImage record);

  // magic, version, body crc32, body; validating decoder on the way back in.
  std::vector<uint8_t> Serialize() const;
  static Result<ResolutionManifest> Deserialize(const std::vector<uint8_t>& bytes);
};

}  // namespace hemlock

#endif  // SRC_LINK_MANIFEST_H_
