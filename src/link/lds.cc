#include "src/link/lds.h"

#include <map>
#include <optional>

#include "src/base/layout.h"
#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/isa/isa.h"
#include "src/link/search.h"

namespace hemlock {

namespace {

// Private text starts one page in, so null-pointer calls fault.
constexpr uint32_t kImageTextBase = kTextBase + kPageSize;
constexpr uint32_t kTrampolineBytes = 12;  // lui $at; ori $at; jr $at

// Emits the three-instruction far-jump fragment at |offset| in |text| targeting
// |target| (0 when the target is patched later through pending HI16/LO16 relocs).
void WriteTrampoline(std::vector<uint8_t>* text, uint32_t offset, uint32_t target) {
  auto put = [&](uint32_t off, uint32_t word) {
    (*text)[off] = static_cast<uint8_t>(word);
    (*text)[off + 1] = static_cast<uint8_t>(word >> 8);
    (*text)[off + 2] = static_cast<uint8_t>(word >> 16);
    (*text)[off + 3] = static_cast<uint8_t>(word >> 24);
  };
  put(offset, EncodeLui(kRegAt, static_cast<uint16_t>(target >> 16)));
  put(offset + 4, EncodeOri(kRegAt, kRegAt, static_cast<uint16_t>(target)));
  put(offset + 8, EncodeJr(kRegAt));
}

uint32_t AlignUp(uint32_t value, uint32_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

ObjectFile SynthesizeCrt0() {
  ObjectBuilder b("crt0.o");
  uint32_t start = b.EmitText(0);  // placeholder; rewritten below
  b.PatchText(start, EncodeJ(Op::kJal, 0));
  b.AddReloc(RelocType::kJump26, SectionKind::kText, start, "main", 0);
  b.EmitText(EncodeR(Funct::kAdd, kRegA0, kRegV0, kRegZero));
  b.EmitText(EncodeOri(kRegV0, kRegZero, static_cast<uint16_t>(Sys::kExit)));
  b.EmitText(EncodeSyscall());
  b.EmitText(EncodeBreak());  // not reached
  Status st = b.DefineSymbol("_start", SectionKind::kText, 0, /*is_function=*/true);
  (void)st;
  return b.Take();
}

uint64_t LinkedTemplateHash(const ObjectFile& tpl, uint32_t base) {
  uint8_t base_le[4] = {static_cast<uint8_t>(base), static_cast<uint8_t>(base >> 8),
                        static_cast<uint8_t>(base >> 16), static_cast<uint8_t>(base >> 24)};
  uint64_t h = Fnv1a64(base_le, sizeof(base_le), tpl.ContentHash());
  return h != 0 ? h : 1;  // 0 means "pre-hash file": never collide with it
}

Result<LinkedModule> LinkModuleAtBase(const ObjectFile& tpl, uint32_t base,
                                      const std::string& name, uint32_t* trampolines_out) {
  LinkedModule mod;
  mod.name = name;
  mod.base = base;
  mod.module_list = tpl.module_list();
  mod.search_path = tpl.search_path();
  mod.template_hash = LinkedTemplateHash(tpl, base);

  // Pass 1: find external JUMP26 targets; give each distinct symbol one trampoline.
  std::map<std::string, uint32_t> tramp_slots;  // symbol -> text offset of its slot
  for (const Relocation& rel : tpl.relocations()) {
    const Symbol* sym = tpl.FindSymbol(rel.symbol);
    bool external = sym == nullptr || !sym->defined;
    if (rel.type == RelocType::kJump26 && external &&
        tramp_slots.count(rel.symbol) == 0) {
      uint32_t slot = static_cast<uint32_t>(tpl.text().size()) +
                      static_cast<uint32_t>(tramp_slots.size()) * kTrampolineBytes;
      tramp_slots[rel.symbol] = slot;
    }
  }
  if (trampolines_out != nullptr) {
    *trampolines_out += static_cast<uint32_t>(tramp_slots.size());
  }

  uint32_t text_total = static_cast<uint32_t>(tpl.text().size()) +
                        static_cast<uint32_t>(tramp_slots.size()) * kTrampolineBytes;
  uint32_t data_off = AlignUp(text_total, 16);
  uint32_t raw_data = static_cast<uint32_t>(tpl.data().size());
  uint32_t bss_off = AlignUp(data_off + raw_data, 16);
  // Recorded sizes absorb alignment padding so text_size + data_size == bss_off.
  mod.text_size = data_off;
  mod.data_size = bss_off - data_off;
  mod.bss_size = tpl.bss_size();
  // The paper caps a shared file (and hence a module) at 1 MB.
  if (bss_off + mod.bss_size > kSfsMaxFileBytes) {
    return ResourceExhausted("module '" + name + "' exceeds the 1 MB segment limit");
  }

  // Initialized payload: [text | trampolines | pad | data].
  mod.payload.assign(data_off + raw_data, 0);
  std::copy(tpl.text().begin(), tpl.text().end(), mod.payload.begin());
  std::copy(tpl.data().begin(), tpl.data().end(), mod.payload.begin() + data_off);

  // Absolute symbol addresses.
  auto addr_of = [&](const Symbol& sym) -> uint32_t {
    switch (sym.section) {
      case SectionKind::kText:
        return base + sym.value;
      case SectionKind::kData:
        return base + data_off + sym.value;
      case SectionKind::kBss:
        return base + bss_off + sym.value;
    }
    return 0;
  };

  for (const Symbol& sym : tpl.symbols()) {
    if (sym.defined && sym.binding == SymBinding::kGlobal) {
      mod.exports.push_back(AbsSymbol{sym.name, addr_of(sym), sym.is_function});
    }
  }

  // Write trampoline slots (unresolved form) and their pending relocations.
  for (const auto& [symbol, slot] : tramp_slots) {
    WriteTrampoline(&mod.payload, slot, 0);
    mod.pending.push_back(PendingReloc{RelocType::kHi16, base + slot, symbol, 0});
    mod.pending.push_back(PendingReloc{RelocType::kLo16, base + slot + 4, symbol, 0});
  }

  // Pass 2: apply relocations.
  for (const Relocation& rel : tpl.relocations()) {
    uint32_t site = 0;
    switch (rel.section) {
      case SectionKind::kText:
        site = base + rel.offset;
        break;
      case SectionKind::kData:
        site = base + data_off + rel.offset;
        break;
      case SectionKind::kBss:
        return CorruptData("relocation against .bss in module " + name);
    }
    const Symbol* sym = tpl.FindSymbol(rel.symbol);
    if (sym != nullptr && sym->defined) {
      uint32_t target = addr_of(*sym) + static_cast<uint32_t>(rel.addend);
      RETURN_IF_ERROR(ApplyReloc(&mod.payload, base, rel.type, site, target));
      continue;
    }
    // External reference.
    if (rel.type == RelocType::kJump26) {
      // Redirect through the module-local trampoline (always in range).
      uint32_t slot_addr = base + tramp_slots.at(rel.symbol);
      RETURN_IF_ERROR(ApplyReloc(&mod.payload, base, rel.type, site, slot_addr));
    } else {
      mod.pending.push_back(PendingReloc{rel.type, site, rel.symbol, rel.addend});
    }
  }
  return mod;
}

namespace {

// A static private module placed into the image.
struct PlacedModule {
  ObjectFile tpl;
  std::string found_path;
  uint32_t text_off = 0;  // within the image text buffer
  uint32_t data_off = 0;  // within the image data buffer
  uint32_t bss_off = 0;   // within the image data buffer (after all data)
};

}  // namespace

Result<LoadImage> StaticLinker::Link(const LdsOptions& options, LdsReport* report) {
  LdsReport local_report;
  if (report == nullptr) {
    report = &local_report;
  }
  std::vector<std::string> search_dirs =
      StaticSearchDirs(options.cwd, options.lib_dirs, options.env_ld_library_path);

  LoadImage image;
  image.search_path = search_dirs;

  // --- Gather inputs by class ---
  std::vector<PlacedModule> privates;
  {
    PlacedModule crt0;
    crt0.tpl = SynthesizeCrt0();
    crt0.found_path = "<crt0>";
    privates.push_back(std::move(crt0));
  }
  std::vector<std::pair<std::string, ObjectFile>> static_publics;  // found path, template

  for (const LdsInput& input : options.inputs) {
    if (IsDynamic(input.cls)) {
      // lds does not resolve dynamic modules — it only warns when they are absent
      // (they may be created later) and records them for ldl.
      Result<std::string> found = FindModuleFile(*vfs_, input.name, search_dirs);
      if (!found.ok()) {
        std::string warning =
            "lds: dynamic module '" + input.name + "' does not exist yet (continuing)";
        report->warnings.push_back(warning);
        HLOG(Warning) << warning;
      }
      image.dynamic_modules.push_back(DynModuleRecord{input.name, input.cls});
      continue;
    }
    // Static classes: the module must exist now; missing aborts the link.
    Result<std::string> found = FindModuleFile(*vfs_, input.name, search_dirs);
    if (!found.ok()) {
      return NotFound("lds: cannot find static module '" + input.name + "'");
    }
    ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, vfs_->ReadFile(*found));
    ASSIGN_OR_RETURN(ObjectFile tpl, ObjectFile::Deserialize(bytes));
    if (input.cls == ShareClass::kStaticPrivate) {
      PlacedModule placed;
      placed.tpl = std::move(tpl);
      placed.found_path = *found;
      privates.push_back(std::move(placed));
    } else {
      static_publics.emplace_back(*found, std::move(tpl));
    }
  }

  // --- Create or load static public modules ---
  std::vector<LinkedModule> publics;
  for (auto& [found_path, tpl] : static_publics) {
    if (!Vfs::OnSharedPartition(found_path)) {
      return InvalidArgument("lds: public module template '" + found_path +
                             "' must reside on the shared partition");
    }
    std::string module_path = StripExtension(found_path);
    if (vfs_->Exists(module_path)) {
      ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, vfs_->ReadFile(module_path));
      ASSIGN_OR_RETURN(LinkedModule mod, LinkedModule::DeserializeFile(bytes));
      publics.push_back(std::move(mod));
      ++report->publics_reused;
    } else {
      // Creating the file assigns the inode and hence the unique global address.
      std::string rel = Vfs::SfsRelative(module_path);
      ASSIGN_OR_RETURN(uint32_t ino, vfs_->sfs().Create(rel));
      uint32_t base = SfsAddressForInode(ino);
      Result<LinkedModule> mod =
          LinkModuleAtBase(tpl, base, PathBasename(module_path), &report->trampolines);
      if (!mod.ok()) {
        (void)vfs_->sfs().Unlink(rel);
        return mod.status();
      }
      std::vector<uint8_t> file = mod->SerializeFile();
      RETURN_IF_ERROR(vfs_->sfs().WriteAt(ino, 0, file.data(), static_cast<uint32_t>(file.size())));
      publics.push_back(std::move(*mod));
      ++report->publics_created;
    }
    image.static_publics.push_back(StaticPublicRef{module_path, publics.back().base});
  }

  // Resolve pendings among the public modules themselves (public-to-public
  // references become permanent, shared resolutions).
  {
    std::map<std::string, AbsSymbol> public_syms;
    for (const LinkedModule& mod : publics) {
      for (const AbsSymbol& sym : mod.exports) {
        public_syms.emplace(sym.name, sym);  // first wins
      }
    }
    for (size_t i = 0; i < publics.size(); ++i) {
      LinkedModule& mod = publics[i];
      std::vector<PendingReloc> still;
      bool changed = false;
      for (const PendingReloc& p : mod.pending) {
        auto it = public_syms.find(p.symbol);
        if (it == public_syms.end()) {
          still.push_back(p);
          continue;
        }
        RETURN_IF_ERROR(ApplyReloc(&mod.payload, mod.base, p.type, p.site,
                                   it->second.addr + static_cast<uint32_t>(p.addend)));
        changed = true;
      }
      if (changed) {
        mod.pending = std::move(still);
        std::vector<uint8_t> file = mod.SerializeFile();
        std::string rel = Vfs::SfsRelative(image.static_publics[i].module_path);
        ASSIGN_OR_RETURN(uint32_t ino, vfs_->sfs().Lookup(rel));
        RETURN_IF_ERROR(vfs_->sfs().Truncate(ino, 0));
        RETURN_IF_ERROR(
            vfs_->sfs().WriteAt(ino, 0, file.data(), static_cast<uint32_t>(file.size())));
      }
    }
  }

  // --- Lay out the static private portion ---
  // Pass 1: text offsets and the trampoline pool (shared across modules; all private
  // text lives in one 256 MB region so one pool at the end of text is always in range).
  uint32_t text_cursor = 0;
  for (PlacedModule& placed : privates) {
    placed.text_off = text_cursor;
    text_cursor += AlignUp(static_cast<uint32_t>(placed.tpl.text().size()), 4);
  }

  // Global symbol table: private definitions + public exports.
  std::map<std::string, AbsSymbol> symtab;
  auto add_symbol = [&](const AbsSymbol& sym) -> Status {
    auto [it, inserted] = symtab.emplace(sym.name, sym);
    if (!inserted) {
      if (options.duplicate_policy == DuplicatePolicy::kError) {
        return AlreadyExists("lds: multiple definitions of '" + sym.name + "'");
      }
      // kFirstWins / kScoped: keep the existing entry (paper: "picks one (e.g., the
      // first)"); scoped resolution below lets same-named exports coexist anyway.
    }
    return OkStatus();
  };

  // Data/bss layout.
  uint32_t data_cursor = 0;
  for (PlacedModule& placed : privates) {
    data_cursor = AlignUp(data_cursor, 16);
    placed.data_off = data_cursor;
    data_cursor += static_cast<uint32_t>(placed.tpl.data().size());
  }
  for (PlacedModule& placed : privates) {
    data_cursor = AlignUp(data_cursor, 16);
    placed.bss_off = data_cursor;
    data_cursor += placed.tpl.bss_size();
  }

  auto private_addr = [&](const PlacedModule& placed, const Symbol& sym) -> uint32_t {
    switch (sym.section) {
      case SectionKind::kText:
        return kImageTextBase + placed.text_off + sym.value;
      case SectionKind::kData:
        return kDataBase + placed.data_off + sym.value;
      case SectionKind::kBss:
        return kDataBase + placed.bss_off + sym.value;
    }
    return 0;
  };

  for (const PlacedModule& placed : privates) {
    for (const Symbol& sym : placed.tpl.symbols()) {
      if (sym.defined && sym.binding == SymBinding::kGlobal) {
        RETURN_IF_ERROR(add_symbol(AbsSymbol{sym.name, private_addr(placed, sym),
                                             sym.is_function}));
      }
    }
  }
  for (const LinkedModule& mod : publics) {
    for (const AbsSymbol& sym : mod.exports) {
      RETURN_IF_ERROR(add_symbol(sym));
    }
  }

  // Per-module export maps for scoped static resolution (DuplicatePolicy::kScoped):
  // module name (template basename, ".o" stripped) -> its exported symbols.
  std::map<std::string, std::map<std::string, AbsSymbol>> module_exports;
  for (const PlacedModule& placed : privates) {
    std::string mod_name = StripExtension(PathBasename(placed.found_path));
    auto& exports = module_exports[mod_name];
    for (const Symbol& sym : placed.tpl.symbols()) {
      if (sym.defined && sym.binding == SymBinding::kGlobal) {
        exports.emplace(sym.name, AbsSymbol{sym.name, private_addr(placed, sym),
                                            sym.is_function});
      }
    }
  }
  for (const LinkedModule& mod : publics) {
    auto& exports = module_exports[mod.name];
    for (const AbsSymbol& sym : mod.exports) {
      exports.emplace(sym.name, sym);
    }
  }

  // Resolves a reference out of |placed|: module-local definitions first (statics),
  // then — under kScoped — the exports of the modules on its own embedded list,
  // finally the flat table.
  auto resolve_for = [&](const PlacedModule& placed,
                         const std::string& symbol) -> std::optional<AbsSymbol> {
    const Symbol* local = placed.tpl.FindSymbol(symbol);
    if (local != nullptr && local->defined) {
      return AbsSymbol{symbol, private_addr(placed, *local), local->is_function};
    }
    if (options.duplicate_policy == DuplicatePolicy::kScoped) {
      for (const std::string& dep : placed.tpl.module_list()) {
        auto mod_it = module_exports.find(StripExtension(PathBasename(dep)));
        if (mod_it == module_exports.end()) {
          continue;
        }
        auto sym_it = mod_it->second.find(symbol);
        if (sym_it != mod_it->second.end()) {
          return sym_it->second;
        }
      }
    }
    auto it = symtab.find(symbol);
    if (it != symtab.end()) {
      return it->second;
    }
    return std::nullopt;
  };

  // Trampoline pool: one slot per distinct far-jump *target* (scoped linking can
  // resolve one symbol name to different targets in different modules), plus one per
  // unresolved symbol (filled by ldl through pending HI16/LO16).
  struct TrampSlot {
    uint32_t offset = 0;
    uint32_t target = 0;      // 0 when unresolved
    std::string symbol;       // set when unresolved
  };
  std::map<std::string, TrampSlot> tramp_slots;  // key -> slot
  auto tramp_key = [](const std::optional<AbsSymbol>& resolved, const std::string& symbol) {
    return resolved.has_value() ? StrFormat("addr:%08x", resolved->addr) : "sym:" + symbol;
  };
  for (const PlacedModule& placed : privates) {
    for (const Relocation& rel : placed.tpl.relocations()) {
      if (rel.type != RelocType::kJump26) {
        continue;
      }
      std::optional<AbsSymbol> resolved = resolve_for(placed, rel.symbol);
      if (resolved.has_value()) {
        uint32_t site = kImageTextBase + placed.text_off + rel.offset;
        if (JumpInRange(site, resolved->addr)) {
          continue;  // direct jump fits
        }
      }
      std::string key = tramp_key(resolved, rel.symbol);
      if (tramp_slots.count(key) == 0) {
        TrampSlot slot;
        slot.offset = text_cursor + static_cast<uint32_t>(tramp_slots.size()) * kTrampolineBytes;
        slot.target = resolved.has_value() ? resolved->addr : 0;
        slot.symbol = resolved.has_value() ? "" : rel.symbol;
        tramp_slots[key] = slot;
      }
    }
  }
  report->trampolines += static_cast<uint32_t>(tramp_slots.size());
  uint32_t text_total = text_cursor + static_cast<uint32_t>(tramp_slots.size()) * kTrampolineBytes;

  // Build text and data buffers.
  std::vector<uint8_t> text(text_total, 0);
  std::vector<uint8_t> data(data_cursor, 0);
  for (const PlacedModule& placed : privates) {
    std::copy(placed.tpl.text().begin(), placed.tpl.text().end(), text.begin() + placed.text_off);
    std::copy(placed.tpl.data().begin(), placed.tpl.data().end(), data.begin() + placed.data_off);
  }

  // Fill trampolines: resolved targets directly; unknown ones get pending HI16/LO16.
  for (const auto& [key, slot] : tramp_slots) {
    if (slot.symbol.empty()) {
      WriteTrampoline(&text, slot.offset, slot.target);
    } else {
      WriteTrampoline(&text, slot.offset, 0);
      image.pending.push_back(
          PendingReloc{RelocType::kHi16, kImageTextBase + slot.offset, slot.symbol, 0});
      image.pending.push_back(
          PendingReloc{RelocType::kLo16, kImageTextBase + slot.offset + 4, slot.symbol, 0});
    }
  }

  // Apply relocations module by module.
  for (const PlacedModule& placed : privates) {
    for (const Relocation& rel : placed.tpl.relocations()) {
      uint32_t site = 0;
      std::vector<uint8_t>* buf = nullptr;
      uint32_t buf_base = 0;
      switch (rel.section) {
        case SectionKind::kText:
          site = kImageTextBase + placed.text_off + rel.offset;
          buf = &text;
          buf_base = kImageTextBase;
          break;
        case SectionKind::kData:
          site = kDataBase + placed.data_off + rel.offset;
          buf = &data;
          buf_base = kDataBase;
          break;
        case SectionKind::kBss:
          return CorruptData("relocation against .bss in " + placed.found_path);
      }
      // Resolution order: module-local symbol (covers statics), then — scoped — the
      // module's own list, then the global table.
      std::optional<AbsSymbol> found = resolve_for(placed, rel.symbol);
      if (found.has_value()) {
        uint32_t target = found->addr + static_cast<uint32_t>(rel.addend);
        if (rel.type == RelocType::kJump26 && !JumpInRange(site, target)) {
          // Far jump to a known target: go through the trampoline.
          target = kImageTextBase + tramp_slots.at(tramp_key(found, rel.symbol)).offset;
        }
        RETURN_IF_ERROR(ApplyReloc(buf, buf_base, rel.type, site, target));
        continue;
      }
      // Unresolved: presumed to live in a dynamic module.
      if (rel.type == RelocType::kJump26) {
        uint32_t slot_addr =
            kImageTextBase + tramp_slots.at(tramp_key(std::nullopt, rel.symbol)).offset;
        RETURN_IF_ERROR(ApplyReloc(buf, buf_base, rel.type, site, slot_addr));
      } else {
        image.pending.push_back(PendingReloc{rel.type, site, rel.symbol, rel.addend});
      }
    }
  }

  report->modules_linked = static_cast<uint32_t>(privates.size());
  report->pending_relocs = static_cast<uint32_t>(image.pending.size());

  // Assemble the image.
  ImageSegment text_seg;
  text_seg.vaddr = kImageTextBase;
  text_seg.mem_size = AlignUp(text_total, kPageSize);
  text_seg.executable = true;
  text_seg.bytes = std::move(text);
  image.segments.push_back(std::move(text_seg));

  if (data_cursor > 0) {
    ImageSegment data_seg;
    data_seg.vaddr = kDataBase;
    data_seg.mem_size = AlignUp(data_cursor, kPageSize);
    data_seg.executable = false;
    data_seg.bytes = std::move(data);
    image.segments.push_back(std::move(data_seg));
  }

  image.entry = kImageTextBase;  // crt0 _start is the first text byte
  for (const auto& [name, sym] : symtab) {
    image.symbols.push_back(sym);
  }

  if (!options.output_path.empty()) {
    RETURN_IF_ERROR(vfs_->WriteFile(options.output_path, image.Serialize()));
  }
  return image;
}

}  // namespace hemlock
