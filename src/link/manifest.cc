#include "src/link/manifest.h"

#include <algorithm>

#include "src/base/bytes.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {

constexpr uint32_t kManifestMagic = 0x21464D48;  // "HMF!"
// v2 added the per-module negative-resolution list (a v1 file is rejected with
// kUnsupportedVersion and simply rebuilt — the manifest is an optimization).
constexpr uint32_t kManifestVersion = 2;

void HashMix(uint64_t* h, const void* data, size_t n) { *h = Fnv1a64(data, n, *h); }

}  // namespace

uint64_t ManifestImage::ModuleSetHash() const {
  uint64_t h = kFnv1a64Seed;
  for (const ManifestModule& m : modules) {
    HashMix(&h, m.key.data(), m.key.size());
    uint8_t hash_le[8];
    for (int i = 0; i < 8; ++i) {
      hash_le[i] = static_cast<uint8_t>(m.src_hash >> (8 * i));
    }
    HashMix(&h, hash_le, sizeof(hash_le));
  }
  return h;
}

const ManifestImage* ResolutionManifest::FindImage(uint64_t image_hash) const {
  for (const ManifestImage& img : images) {
    if (img.image_hash == image_hash) {
      return &img;
    }
  }
  return nullptr;
}

void ResolutionManifest::Upsert(ManifestImage record) {
  images.erase(std::remove_if(images.begin(), images.end(),
                              [&](const ManifestImage& img) {
                                return img.image_hash == record.image_hash;
                              }),
               images.end());
  images.push_back(std::move(record));
  while (images.size() > kManifestMaxImages) {
    images.erase(images.begin());
  }
}

std::vector<uint8_t> ResolutionManifest::Serialize() const {
  ByteWriter body;
  body.U32(static_cast<uint32_t>(images.size()));
  for (const ManifestImage& img : images) {
    body.U64(img.image_hash);
    body.U64(img.ModuleSetHash());
    body.U32(static_cast<uint32_t>(img.modules.size()));
    for (const ManifestModule& m : img.modules) {
      body.Str(m.key);
      body.Str(m.name);
      body.U8(static_cast<uint8_t>(m.cls));
      body.U32(m.base);
      body.U32(m.ino);
      body.U64(m.src_hash);
      body.U32(static_cast<uint32_t>(m.resolved.size()));
      for (const auto& [symbol, addr] : m.resolved) {
        body.Str(symbol);
        body.U32(addr);
      }
      body.U32(static_cast<uint32_t>(m.negatives.size()));
      for (const std::string& symbol : m.negatives) {
        body.Str(symbol);
      }
    }
  }
  ByteWriter w;
  w.U32(kManifestMagic);
  w.U32(kManifestVersion);
  w.U32(Crc32(body.buffer().data(), body.size()));
  const std::vector<uint8_t>& b = body.buffer();
  w.Raw(b.data(), b.size());
  return w.Take();
}

Result<ResolutionManifest> ResolutionManifest::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kManifestMagic) {
    return CorruptData("not a resolution manifest (bad magic)");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kManifestVersion) {
    return UnsupportedVersion(StrFormat("manifest version %u (this build reads %u)", version,
                                        kManifestVersion));
  }
  ASSIGN_OR_RETURN(uint32_t crc, r.U32());
  if (crc != Crc32(bytes.data() + r.pos(), r.remaining())) {
    return CorruptData("manifest body checksum mismatch (torn write?)");
  }
  ResolutionManifest manifest;
  ASSIGN_OR_RETURN(uint32_t n_images, r.Count(16, kManifestMaxImages));
  manifest.images.reserve(n_images);
  for (uint32_t i = 0; i < n_images; ++i) {
    ManifestImage img;
    ASSIGN_OR_RETURN(img.image_hash, r.U64());
    ASSIGN_OR_RETURN(uint64_t set_hash, r.U64());
    ASSIGN_OR_RETURN(uint32_t n_modules, r.Count(25, kManifestMaxModules));
    img.modules.reserve(n_modules);
    for (uint32_t j = 0; j < n_modules; ++j) {
      ManifestModule m;
      ASSIGN_OR_RETURN(m.key, r.Str());
      ASSIGN_OR_RETURN(m.name, r.Str());
      ASSIGN_OR_RETURN(uint8_t cls, r.U8());
      if (cls > static_cast<uint8_t>(ShareClass::kDynamicPublic)) {
        return CorruptData(StrFormat("manifest module '%s': bad share class %u", m.key.c_str(),
                                     cls));
      }
      m.cls = static_cast<ShareClass>(cls);
      ASSIGN_OR_RETURN(m.base, r.U32());
      ASSIGN_OR_RETURN(m.ino, r.U32());
      ASSIGN_OR_RETURN(m.src_hash, r.U64());
      if (m.src_hash == 0) {
        return CorruptData("manifest module '" + m.key + "': zero content hash");
      }
      ASSIGN_OR_RETURN(uint32_t n_resolved, r.Count(8, kManifestMaxResolutions));
      m.resolved.reserve(n_resolved);
      for (uint32_t k = 0; k < n_resolved; ++k) {
        ASSIGN_OR_RETURN(std::string symbol, r.Str());
        ASSIGN_OR_RETURN(uint32_t addr, r.U32());
        m.resolved.emplace_back(std::move(symbol), addr);
      }
      ASSIGN_OR_RETURN(uint32_t n_negative, r.Count(2, kManifestMaxResolutions));
      m.negatives.reserve(n_negative);
      for (uint32_t k = 0; k < n_negative; ++k) {
        ASSIGN_OR_RETURN(std::string symbol, r.Str());
        m.negatives.push_back(std::move(symbol));
      }
      img.modules.push_back(std::move(m));
    }
    // The recorded set hash must match the records it allegedly summarizes — a
    // cheap structural cross-check on top of the crc.
    if (set_hash != img.ModuleSetHash()) {
      return CorruptData("manifest module-set hash does not match its records");
    }
    manifest.images.push_back(std::move(img));
  }
  RETURN_IF_ERROR(r.ExpectEnd("resolution manifest"));
  return manifest;
}

}  // namespace hemlock
