// Module search strategy (paper §3, "The Linkers").
//
// At static link time, lds searches for a module named with a relative path in:
//   (1) the current directory,
//   (2) the path specified in a special command-line argument,
//   (3) the path in the LD_LIBRARY_PATH environment variable,
//   (4) the default library directories.
// The first match wins. Absolute names are used directly.
//
// At execution time, ldl searches in:
//   (1) the path in the *current* LD_LIBRARY_PATH (so users can interpose new module
//       versions — the Presto temp-directory trick),
//   (2) the directories in which lds searched: the static-link cwd, the lds
//       command-line dirs, link-time LD_LIBRARY_PATH dirs, and the defaults.
#ifndef SRC_LINK_SEARCH_H_
#define SRC_LINK_SEARCH_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/sfs/vfs.h"

namespace hemlock {

inline constexpr char kLdLibraryPathVar[] = "LD_LIBRARY_PATH";

// Default library directories of the simulated world.
std::vector<std::string> DefaultLibraryDirs();

// Parses a colon-separated LD_LIBRARY_PATH value.
std::vector<std::string> ParsePathList(const std::string& value);

// Builds the static-link-time directory list in paper order.
std::vector<std::string> StaticSearchDirs(const std::string& cwd,
                                          const std::vector<std::string>& cmdline_dirs,
                                          const std::string& env_ld_library_path);

// Builds the run-time list: current LD_LIBRARY_PATH first, then the saved static list.
std::vector<std::string> DynamicSearchDirs(const std::string& current_ld_library_path,
                                           const std::vector<std::string>& static_dirs);

// Finds a module template by |name|. Absolute names resolve directly; relative names
// try each directory in order. Returns the *found* path (pre-symlink form) — callers
// that need the template contents read through the VFS, which follows links; callers
// that need the module-file location (public modules live next to where the name was
// found) use this path's directory.
Result<std::string> FindModuleFile(const Vfs& vfs, const std::string& name,
                                   const std::vector<std::string>& dirs);

}  // namespace hemlock

#endif  // SRC_LINK_SEARCH_H_
