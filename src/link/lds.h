// lds — the Hemlock static linker (paper §2-§3).
//
// lds assigns each input template one of the four sharing classes of Table 1 and:
//   * copies a new instance of every *static private* module into the load image;
//   * creates any *static public* module that does not yet exist — as a file on the
//     shared partition, next to its template, named by dropping the final ".o",
//     internally relocated to its unique globally agreed address — and leaves it in
//     that separate file (never copied into the image);
//   * resolves references to symbols in static modules (including the absolute-address
//     resolution the stock ld refuses to perform);
//   * does NOT resolve references into dynamic modules — it does not even require that
//     they exist yet (missing dynamic modules produce a warning; missing static modules
//     abort the link). It saves the module names and the search-path description in the
//     image, and links in the replacement crt0 whose job is to start ldl;
//   * retains relocation information for everything unresolved (the stock ld refuses;
//     lds keeps it in the HXE's explicit pending-relocation table);
//   * rewrites over-long J/JAL jumps (the R3000 28-bit limit) to target nearby
//     trampolines that load the full address into a register and jump indirectly.
#ifndef SRC_LINK_LDS_H_
#define SRC_LINK_LDS_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/link/image.h"
#include "src/obj/object_file.h"
#include "src/sfs/vfs.h"

namespace hemlock {

// What to do when two modules export the same global symbol (paper §3: "the linker
// either picks one (e.g., the first) and resolves all references to it, or reports an
// error" — scoped linking exists to make neither necessary across applications).
//
// kScoped implements the paper's stated future work ("scoped linking is currently
// available in Hemlock only for dynamic modules. We plan to correct this deficiency
// in a new, fully-functional static linker"): a static module's references resolve
// first against the exports of the modules on its own embedded module list, then
// against the flat table (first definition wins there).
enum class DuplicatePolicy : uint8_t { kError, kFirstWins, kScoped };

struct LdsInput {
  std::string name;  // template path (absolute or search-path relative)
  ShareClass cls = ShareClass::kStaticPrivate;
};

struct LdsOptions {
  std::vector<LdsInput> inputs;
  std::vector<std::string> lib_dirs;   // the -L command-line directories
  std::string env_ld_library_path;     // LD_LIBRARY_PATH at static link time
  std::string cwd = "/home/user";
  DuplicatePolicy duplicate_policy = DuplicatePolicy::kError;
  // When set, the serialized image is also written to this VFS path.
  std::string output_path;
};

struct LdsReport {
  std::vector<std::string> warnings;
  uint32_t trampolines = 0;        // far-jump fragments emitted
  uint32_t modules_linked = 0;     // static modules placed in the image
  uint32_t publics_created = 0;    // static public modules created from templates
  uint32_t publics_reused = 0;     // ... that already existed
  uint32_t pending_relocs = 0;     // references left for ldl
};

// Links one template at a fixed base address, producing a linked module:
// internal references finalized, external JUMP26 sites redirected through reserved
// trampoline slots, all other external references left pending. Shared by lds (static
// publics) and ldl (run-time creation of dynamic modules).
Result<LinkedModule> LinkModuleAtBase(const ObjectFile& tpl, uint32_t base,
                                      const std::string& name, uint32_t* trampolines_out);

// The content identity LinkModuleAtBase stamps into the linked module's trailer:
// a digest of the template bytes chained with the link base (the same template
// linked at two addresses is two different artifacts). Deterministic, so a warm
// start can verify a recorded resolution against the template *without* relinking
// (stable linking's cheap re-check; see src/link/manifest.h). Never returns 0 —
// 0 is reserved for "pre-hash HML file, unverifiable".
uint64_t LinkedTemplateHash(const ObjectFile& tpl, uint32_t base);

// The replacement crt0 (paper: "links C programs with a special start-up file" that
// gives ldl a chance to run; here the loader runs ldl natively before transferring
// control, and crt0 just calls main and exits with its result).
ObjectFile SynthesizeCrt0();

class StaticLinker {
 public:
  explicit StaticLinker(Vfs* vfs) : vfs_(vfs) {}

  // Runs the full static link. |report| may be null.
  Result<LoadImage> Link(const LdsOptions& options, LdsReport* report);

 private:
  Vfs* vfs_;
};

}  // namespace hemlock

#endif  // SRC_LINK_LDS_H_
