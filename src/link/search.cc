#include "src/link/search.h"

#include "src/base/strings.h"

namespace hemlock {

std::vector<std::string> DefaultLibraryDirs() { return {"/usr/lib", "/shm/lib"}; }

std::vector<std::string> ParsePathList(const std::string& value) {
  return SplitString(value, ':');
}

std::vector<std::string> StaticSearchDirs(const std::string& cwd,
                                          const std::vector<std::string>& cmdline_dirs,
                                          const std::string& env_ld_library_path) {
  std::vector<std::string> dirs;
  dirs.push_back(cwd);
  for (const std::string& dir : cmdline_dirs) {
    dirs.push_back(dir);
  }
  for (const std::string& dir : ParsePathList(env_ld_library_path)) {
    dirs.push_back(dir);
  }
  for (const std::string& dir : DefaultLibraryDirs()) {
    dirs.push_back(dir);
  }
  return dirs;
}

std::vector<std::string> DynamicSearchDirs(const std::string& current_ld_library_path,
                                           const std::vector<std::string>& static_dirs) {
  std::vector<std::string> dirs;
  for (const std::string& dir : ParsePathList(current_ld_library_path)) {
    dirs.push_back(dir);
  }
  for (const std::string& dir : static_dirs) {
    dirs.push_back(dir);
  }
  return dirs;
}

Result<std::string> FindModuleFile(const Vfs& vfs, const std::string& name,
                                   const std::vector<std::string>& dirs) {
  if (IsAbsolutePath(name)) {
    if (vfs.Exists(name)) {
      return NormalizePath(name);
    }
    return NotFound("no such module: " + name);
  }
  for (const std::string& dir : dirs) {
    std::string candidate = NormalizePath(JoinPath(dir, name));
    if (vfs.Exists(candidate)) {
      return candidate;  // first match wins (paper §3)
    }
  }
  return NotFound("module '" + name + "' not found on the search path");
}

}  // namespace hemlock
