#include "src/link/image.h"

#include <cstring>

#include "src/base/layout.h"
#include "src/base/strings.h"
#include "src/isa/isa.h"

namespace hemlock {

namespace {
constexpr uint32_t kHxeMagic = 0x21455848;  // "HXE!"
constexpr uint32_t kHmlMagic = 0x214C4D48;  // "HML!"
constexpr uint32_t kFooterBytes = 12;       // magic, trailer offset, trailer size

void WriteAbsSymbols(ByteWriter* w, const std::vector<AbsSymbol>& syms) {
  w->U32(static_cast<uint32_t>(syms.size()));
  for (const AbsSymbol& s : syms) {
    w->Str(s.name);
    w->U32(s.addr);
    w->U8(s.is_function ? 1 : 0);
  }
}

Status ReadAbsSymbols(ByteReader* r, std::vector<AbsSymbol>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->U32());
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AbsSymbol s;
    ASSIGN_OR_RETURN(s.name, r->Str());
    ASSIGN_OR_RETURN(s.addr, r->U32());
    ASSIGN_OR_RETURN(uint8_t is_fn, r->U8());
    s.is_function = is_fn != 0;
    out->push_back(std::move(s));
  }
  return OkStatus();
}

void WritePending(ByteWriter* w, const std::vector<PendingReloc>& pending) {
  w->U32(static_cast<uint32_t>(pending.size()));
  for (const PendingReloc& p : pending) {
    w->U8(static_cast<uint8_t>(p.type));
    w->U32(p.site);
    w->Str(p.symbol);
    w->I32(p.addend);
  }
}

Status ReadPending(ByteReader* r, std::vector<PendingReloc>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->U32());
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PendingReloc p;
    ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > 4) {
      return CorruptData("bad pending relocation type");
    }
    p.type = static_cast<RelocType>(type);
    ASSIGN_OR_RETURN(p.site, r->U32());
    ASSIGN_OR_RETURN(p.symbol, r->Str());
    ASSIGN_OR_RETURN(p.addend, r->I32());
    out->push_back(std::move(p));
  }
  return OkStatus();
}

void WriteStringList(ByteWriter* w, const std::vector<std::string>& list) {
  w->U32(static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) {
    w->Str(s);
  }
}

Status ReadStringList(ByteReader* r, std::vector<std::string>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->U32());
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string s, r->Str());
    out->push_back(std::move(s));
  }
  return OkStatus();
}

}  // namespace

const char* ShareClassName(ShareClass cls) {
  switch (cls) {
    case ShareClass::kStaticPrivate:
      return "static private";
    case ShareClass::kDynamicPrivate:
      return "dynamic private";
    case ShareClass::kStaticPublic:
      return "static public";
    case ShareClass::kDynamicPublic:
      return "dynamic public";
  }
  return "?";
}

std::vector<uint8_t> LoadImage::Serialize() const {
  ByteWriter w;
  w.U32(kHxeMagic);
  w.U32(entry);
  w.U32(static_cast<uint32_t>(segments.size()));
  for (const ImageSegment& seg : segments) {
    w.U32(seg.vaddr);
    w.U32(seg.mem_size);
    w.U8(seg.executable ? 1 : 0);
    w.Bytes(seg.bytes);
  }
  WriteAbsSymbols(&w, symbols);
  WritePending(&w, pending);
  w.U32(static_cast<uint32_t>(dynamic_modules.size()));
  for (const DynModuleRecord& rec : dynamic_modules) {
    w.Str(rec.name);
    w.U8(static_cast<uint8_t>(rec.cls));
  }
  w.U32(static_cast<uint32_t>(static_publics.size()));
  for (const StaticPublicRef& ref : static_publics) {
    w.Str(ref.module_path);
    w.U32(ref.addr);
  }
  WriteStringList(&w, search_path);
  return w.Take();
}

Result<LoadImage> LoadImage::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kHxeMagic) {
    return CorruptData("not an HXE load image");
  }
  LoadImage img;
  ASSIGN_OR_RETURN(img.entry, r.U32());
  ASSIGN_OR_RETURN(uint32_t nsegs, r.U32());
  img.segments.reserve(nsegs);
  for (uint32_t i = 0; i < nsegs; ++i) {
    ImageSegment seg;
    ASSIGN_OR_RETURN(seg.vaddr, r.U32());
    ASSIGN_OR_RETURN(seg.mem_size, r.U32());
    ASSIGN_OR_RETURN(uint8_t ex, r.U8());
    seg.executable = ex != 0;
    ASSIGN_OR_RETURN(seg.bytes, r.Bytes());
    if (seg.bytes.size() > seg.mem_size) {
      return CorruptData("segment bytes exceed mem_size");
    }
    img.segments.push_back(std::move(seg));
  }
  RETURN_IF_ERROR(ReadAbsSymbols(&r, &img.symbols));
  RETURN_IF_ERROR(ReadPending(&r, &img.pending));
  ASSIGN_OR_RETURN(uint32_t nmods, r.U32());
  img.dynamic_modules.reserve(nmods);
  for (uint32_t i = 0; i < nmods; ++i) {
    DynModuleRecord rec;
    ASSIGN_OR_RETURN(rec.name, r.Str());
    ASSIGN_OR_RETURN(uint8_t cls, r.U8());
    if (cls > 3) {
      return CorruptData("bad sharing class");
    }
    rec.cls = static_cast<ShareClass>(cls);
    img.dynamic_modules.push_back(std::move(rec));
  }
  ASSIGN_OR_RETURN(uint32_t nrefs, r.U32());
  img.static_publics.reserve(nrefs);
  for (uint32_t i = 0; i < nrefs; ++i) {
    StaticPublicRef ref;
    ASSIGN_OR_RETURN(ref.module_path, r.Str());
    ASSIGN_OR_RETURN(ref.addr, r.U32());
    img.static_publics.push_back(std::move(ref));
  }
  RETURN_IF_ERROR(ReadStringList(&r, &img.search_path));
  return img;
}

std::vector<uint8_t> LinkedModule::SerializeFile() const {
  // Memory image first: payload then implicit bss zeros, padded to a page.
  std::vector<uint8_t> file = payload;
  uint32_t mapped = PageCeil(MemSize());
  file.resize(mapped, 0);
  // Trailer.
  ByteWriter w;
  w.Str(name);
  w.U32(base);
  w.U32(text_size);
  w.U32(data_size);
  w.U32(bss_size);
  WriteAbsSymbols(&w, exports);
  WritePending(&w, pending);
  WriteStringList(&w, module_list);
  WriteStringList(&w, search_path);
  std::vector<uint8_t> trailer = w.Take();
  uint32_t trailer_off = mapped;
  file.insert(file.end(), trailer.begin(), trailer.end());
  // Footer.
  ByteWriter f;
  f.U32(kHmlMagic);
  f.U32(trailer_off);
  f.U32(static_cast<uint32_t>(trailer.size()));
  const std::vector<uint8_t>& footer = f.buffer();
  file.insert(file.end(), footer.begin(), footer.end());
  return file;
}

bool LinkedModule::LooksLikeModuleFile(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFooterBytes) {
    return false;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data() + bytes.size() - kFooterBytes, 4);
  return magic == kHmlMagic;
}

Result<LinkedModule> LinkedModule::DeserializeFile(const std::vector<uint8_t>& bytes) {
  if (!LooksLikeModuleFile(bytes)) {
    return CorruptData("not an HML module file");
  }
  uint32_t trailer_off = 0;
  uint32_t trailer_size = 0;
  std::memcpy(&trailer_off, bytes.data() + bytes.size() - 8, 4);
  std::memcpy(&trailer_size, bytes.data() + bytes.size() - 4, 4);
  if (trailer_off + trailer_size + kFooterBytes != bytes.size()) {
    return CorruptData("HML trailer bounds corrupt");
  }
  LinkedModule mod;
  ByteReader r(bytes.data() + trailer_off, trailer_size);
  ASSIGN_OR_RETURN(mod.name, r.Str());
  ASSIGN_OR_RETURN(mod.base, r.U32());
  ASSIGN_OR_RETURN(mod.text_size, r.U32());
  ASSIGN_OR_RETURN(mod.data_size, r.U32());
  ASSIGN_OR_RETURN(mod.bss_size, r.U32());
  RETURN_IF_ERROR(ReadAbsSymbols(&r, &mod.exports));
  RETURN_IF_ERROR(ReadPending(&r, &mod.pending));
  RETURN_IF_ERROR(ReadStringList(&r, &mod.module_list));
  RETURN_IF_ERROR(ReadStringList(&r, &mod.search_path));
  uint32_t init_size = mod.text_size + mod.data_size;
  if (init_size > trailer_off) {
    return CorruptData("HML payload larger than mapped image");
  }
  mod.payload.assign(bytes.begin(), bytes.begin() + init_size);
  return mod;
}

Status ApplyReloc(std::vector<uint8_t>* buf, uint32_t buf_base, RelocType type, uint32_t site,
                  uint32_t target) {
  if (site < buf_base || site + 4 > buf_base + buf->size()) {
    return OutOfRange(StrFormat("relocation site 0x%08x outside buffer [0x%08x,+0x%zx)", site,
                                buf_base, buf->size()));
  }
  uint32_t off = site - buf_base;
  uint32_t word = 0;
  std::memcpy(&word, buf->data() + off, 4);
  switch (type) {
    case RelocType::kWord32:
      word = target;
      break;
    case RelocType::kHi16:
      word = (word & 0xFFFF0000u) | (target >> 16);
      break;
    case RelocType::kLo16:
      word = (word & 0xFFFF0000u) | (target & 0xFFFF);
      break;
    case RelocType::kPcRel16: {
      int32_t delta = static_cast<int32_t>(target) - static_cast<int32_t>(site) - 4;
      if (delta % 4 != 0 || delta / 4 < -32768 || delta / 4 > 32767) {
        return OutOfRange(StrFormat("PCREL16 displacement out of range at 0x%08x", site));
      }
      word = (word & 0xFFFF0000u) | (static_cast<uint32_t>(delta / 4) & 0xFFFF);
      break;
    }
    case RelocType::kJump26: {
      if (!JumpInRange(site, target)) {
        return OutOfRange(StrFormat(
            "JUMP26 target 0x%08x unreachable from 0x%08x (28-bit limit; needs trampoline)",
            target, site));
      }
      if ((target & 3) != 0) {
        return InvalidArgument("jump target not word aligned");
      }
      word = (word & 0xFC000000u) | ((target >> 2) & 0x03FFFFFFu);
      break;
    }
  }
  std::memcpy(buf->data() + off, &word, 4);
  return OkStatus();
}

}  // namespace hemlock
