#include "src/link/image.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/base/layout.h"
#include "src/base/strings.h"
#include "src/isa/isa.h"

namespace hemlock {

namespace {
constexpr uint32_t kHxeMagic = 0x21455848;  // "HXE!"
constexpr uint32_t kHmlMagic = 0x214C4D48;  // "HML!"
constexpr uint32_t kFooterBytes = 12;       // magic, trailer offset, trailer size

// Caps on table sizes in external images: far above anything lds emits, low
// enough that a hostile count can never become a giant allocation.
constexpr uint32_t kMaxImageSegments = 64;
constexpr uint32_t kMaxImageSymbols = 1u << 20;
constexpr uint32_t kMaxImagePending = 1u << 20;
constexpr uint32_t kMaxImageNames = 1u << 12;

// Minimum serialized size of each record kind (empty strings).
constexpr size_t kAbsSymbolMinBytes = 4 + 4 + 1;
constexpr size_t kPendingMinBytes = 1 + 4 + 4 + 4;
constexpr size_t kSegmentMinBytes = 4 + 4 + 1 + 4;

void WriteAbsSymbols(ByteWriter* w, const std::vector<AbsSymbol>& syms) {
  w->U32(static_cast<uint32_t>(syms.size()));
  for (const AbsSymbol& s : syms) {
    w->Str(s.name);
    w->U32(s.addr);
    w->U8(s.is_function ? 1 : 0);
  }
}

Status ReadAbsSymbols(ByteReader* r, std::vector<AbsSymbol>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->Count(kAbsSymbolMinBytes, kMaxImageSymbols));
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    AbsSymbol s;
    ASSIGN_OR_RETURN(s.name, r->Str());
    ASSIGN_OR_RETURN(s.addr, r->U32());
    ASSIGN_OR_RETURN(uint8_t is_fn, r->U8());
    s.is_function = is_fn != 0;
    out->push_back(std::move(s));
  }
  return OkStatus();
}

void WritePending(ByteWriter* w, const std::vector<PendingReloc>& pending) {
  w->U32(static_cast<uint32_t>(pending.size()));
  for (const PendingReloc& p : pending) {
    w->U8(static_cast<uint8_t>(p.type));
    w->U32(p.site);
    w->Str(p.symbol);
    w->I32(p.addend);
  }
}

Status ReadPending(ByteReader* r, std::vector<PendingReloc>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->Count(kPendingMinBytes, kMaxImagePending));
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    PendingReloc p;
    ASSIGN_OR_RETURN(uint8_t type, r->U8());
    if (type > 4) {
      return CorruptData("bad pending relocation type");
    }
    p.type = static_cast<RelocType>(type);
    ASSIGN_OR_RETURN(p.site, r->U32());
    ASSIGN_OR_RETURN(p.symbol, r->Str());
    ASSIGN_OR_RETURN(p.addend, r->I32());
    out->push_back(std::move(p));
  }
  return OkStatus();
}

void WriteStringList(ByteWriter* w, const std::vector<std::string>& list) {
  w->U32(static_cast<uint32_t>(list.size()));
  for (const std::string& s : list) {
    w->Str(s);
  }
}

Status ReadStringList(ByteReader* r, std::vector<std::string>* out) {
  ASSIGN_OR_RETURN(uint32_t n, r->Count(4, kMaxImageNames));
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string s, r->Str());
    out->push_back(std::move(s));
  }
  return OkStatus();
}

}  // namespace

const char* ShareClassName(ShareClass cls) {
  switch (cls) {
    case ShareClass::kStaticPrivate:
      return "static private";
    case ShareClass::kDynamicPrivate:
      return "dynamic private";
    case ShareClass::kStaticPublic:
      return "static public";
    case ShareClass::kDynamicPublic:
      return "dynamic public";
  }
  return "?";
}

std::vector<uint8_t> LoadImage::Serialize() const {
  ByteWriter w;
  w.U32(kHxeMagic);
  w.U32(entry);
  w.U32(static_cast<uint32_t>(segments.size()));
  for (const ImageSegment& seg : segments) {
    w.U32(seg.vaddr);
    w.U32(seg.mem_size);
    w.U8(seg.executable ? 1 : 0);
    w.Bytes(seg.bytes);
  }
  WriteAbsSymbols(&w, symbols);
  WritePending(&w, pending);
  w.U32(static_cast<uint32_t>(dynamic_modules.size()));
  for (const DynModuleRecord& rec : dynamic_modules) {
    w.Str(rec.name);
    w.U8(static_cast<uint8_t>(rec.cls));
  }
  w.U32(static_cast<uint32_t>(static_publics.size()));
  for (const StaticPublicRef& ref : static_publics) {
    w.Str(ref.module_path);
    w.U32(ref.addr);
  }
  WriteStringList(&w, search_path);
  return w.Take();
}

Result<LoadImage> LoadImage::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kHxeMagic) {
    return CorruptData("not an HXE load image");
  }
  LoadImage img;
  ASSIGN_OR_RETURN(img.entry, r.U32());
  ASSIGN_OR_RETURN(uint32_t nsegs, r.Count(kSegmentMinBytes, kMaxImageSegments));
  img.segments.reserve(nsegs);
  for (uint32_t i = 0; i < nsegs; ++i) {
    ImageSegment seg;
    ASSIGN_OR_RETURN(seg.vaddr, r.U32());
    ASSIGN_OR_RETURN(seg.mem_size, r.U32());
    ASSIGN_OR_RETURN(uint8_t ex, r.U8());
    seg.executable = ex != 0;
    ASSIGN_OR_RETURN(seg.bytes, r.Bytes());
    if (seg.bytes.size() > seg.mem_size) {
      return CorruptData("segment bytes exceed mem_size");
    }
    img.segments.push_back(std::move(seg));
  }
  RETURN_IF_ERROR(ReadAbsSymbols(&r, &img.symbols));
  RETURN_IF_ERROR(ReadPending(&r, &img.pending));
  ASSIGN_OR_RETURN(uint32_t nmods, r.Count(5, kMaxImageNames));
  img.dynamic_modules.reserve(nmods);
  for (uint32_t i = 0; i < nmods; ++i) {
    DynModuleRecord rec;
    ASSIGN_OR_RETURN(rec.name, r.Str());
    ASSIGN_OR_RETURN(uint8_t cls, r.U8());
    if (cls > 3) {
      return CorruptData("bad sharing class");
    }
    rec.cls = static_cast<ShareClass>(cls);
    img.dynamic_modules.push_back(std::move(rec));
  }
  ASSIGN_OR_RETURN(uint32_t nrefs, r.Count(8, kMaxImageNames));
  img.static_publics.reserve(nrefs);
  for (uint32_t i = 0; i < nrefs; ++i) {
    StaticPublicRef ref;
    ASSIGN_OR_RETURN(ref.module_path, r.Str());
    ASSIGN_OR_RETURN(ref.addr, r.U32());
    img.static_publics.push_back(std::move(ref));
  }
  RETURN_IF_ERROR(ReadStringList(&r, &img.search_path));
  RETURN_IF_ERROR(r.ExpectEnd("HXE image"));
  RETURN_IF_ERROR(ValidateLoadImage(img));
  return img;
}

Status ValidateLoadImage(const LoadImage& img) {
  // Segment geometry: page-aligned, confined to the private text/data area below
  // the shared region, and mutually non-overlapping. Everything ldl later maps
  // (public modules, stacks) assumes the static image cannot reach those ranges.
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  ranges.reserve(img.segments.size());
  for (const ImageSegment& seg : img.segments) {
    if (seg.vaddr % kPageSize != 0) {
      return CorruptData(StrFormat("segment at 0x%08x not page aligned", seg.vaddr));
    }
    uint64_t end = static_cast<uint64_t>(seg.vaddr) + PageCeil64(seg.mem_size);
    if (end > kDataLimit) {
      return CorruptData(StrFormat("segment [0x%08x,+0x%x) escapes the private region",
                                   seg.vaddr, seg.mem_size));
    }
    ranges.emplace_back(seg.vaddr, end);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    if (ranges[i].first < ranges[i - 1].second) {
      return CorruptData(StrFormat("segments overlap at 0x%08x",
                                   static_cast<uint32_t>(ranges[i].first)));
    }
  }
  // The entry point must land on an instruction inside an executable segment.
  if (img.entry % 4 != 0) {
    return CorruptData(StrFormat("entry point 0x%08x not word aligned", img.entry));
  }
  bool entry_ok = false;
  for (const ImageSegment& seg : img.segments) {
    if (seg.executable && img.entry >= seg.vaddr &&
        static_cast<uint64_t>(img.entry) + 4 <= static_cast<uint64_t>(seg.vaddr) + seg.mem_size) {
      entry_ok = true;
      break;
    }
  }
  if (!entry_ok) {
    return CorruptData(StrFormat("entry point 0x%08x outside every executable segment",
                                 img.entry));
  }
  // Pending relocation sites are cells ldl will patch after mapping; each must be
  // a word inside the image, never an arbitrary address in the victim process.
  for (const PendingReloc& p : img.pending) {
    bool site_ok = false;
    for (const ImageSegment& seg : img.segments) {
      if (p.site >= seg.vaddr &&
          static_cast<uint64_t>(p.site) + 4 <= static_cast<uint64_t>(seg.vaddr) + seg.mem_size) {
        site_ok = true;
        break;
      }
    }
    if (!site_ok) {
      return CorruptData(StrFormat("pending relocation site 0x%08x outside the image", p.site));
    }
  }
  return OkStatus();
}

std::vector<uint8_t> LinkedModule::SerializeFile() const {
  // Memory image first: payload then implicit bss zeros, padded to a page.
  std::vector<uint8_t> file = payload;
  uint32_t mapped = PageCeil(MemSize());
  file.resize(mapped, 0);
  // Trailer.
  ByteWriter w;
  w.Str(name);
  w.U32(base);
  w.U32(text_size);
  w.U32(data_size);
  w.U32(bss_size);
  WriteAbsSymbols(&w, exports);
  WritePending(&w, pending);
  WriteStringList(&w, module_list);
  WriteStringList(&w, search_path);
  w.U64(template_hash);
  std::vector<uint8_t> trailer = w.Take();
  uint32_t trailer_off = mapped;
  file.insert(file.end(), trailer.begin(), trailer.end());
  // Footer.
  ByteWriter f;
  f.U32(kHmlMagic);
  f.U32(trailer_off);
  f.U32(static_cast<uint32_t>(trailer.size()));
  const std::vector<uint8_t>& footer = f.buffer();
  file.insert(file.end(), footer.begin(), footer.end());
  return file;
}

bool LinkedModule::LooksLikeModuleFile(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFooterBytes) {
    return false;
  }
  uint32_t magic = 0;
  std::memcpy(&magic, bytes.data() + bytes.size() - kFooterBytes, 4);
  return magic == kHmlMagic;
}

Result<LinkedModule> LinkedModule::DeserializeFile(const std::vector<uint8_t>& bytes) {
  if (!LooksLikeModuleFile(bytes)) {
    return CorruptData("not an HML module file");
  }
  uint32_t trailer_off = 0;
  uint32_t trailer_size = 0;
  std::memcpy(&trailer_off, bytes.data() + bytes.size() - 8, 4);
  std::memcpy(&trailer_size, bytes.data() + bytes.size() - 4, 4);
  // 64-bit math: a footer with trailer_off ~ 0xFFFFFFFF must not wrap back into
  // range and hand ByteReader an out-of-bounds window.
  if (static_cast<uint64_t>(trailer_off) + trailer_size + kFooterBytes != bytes.size()) {
    return CorruptData("HML trailer bounds corrupt");
  }
  if (trailer_off % kPageSize != 0) {
    return CorruptData("HML trailer not page aligned (mapped image must be whole pages)");
  }
  LinkedModule mod;
  ByteReader r(bytes.data() + trailer_off, trailer_size);
  ASSIGN_OR_RETURN(mod.name, r.Str());
  ASSIGN_OR_RETURN(mod.base, r.U32());
  ASSIGN_OR_RETURN(mod.text_size, r.U32());
  ASSIGN_OR_RETURN(mod.data_size, r.U32());
  ASSIGN_OR_RETURN(mod.bss_size, r.U32());
  RETURN_IF_ERROR(ReadAbsSymbols(&r, &mod.exports));
  RETURN_IF_ERROR(ReadPending(&r, &mod.pending));
  RETURN_IF_ERROR(ReadStringList(&r, &mod.module_list));
  RETURN_IF_ERROR(ReadStringList(&r, &mod.search_path));
  // The content-hash field postdates the format. Exactly one u64 may follow the
  // search path (files from before the field carry none and hash to 0, which never
  // matches a manifest entry); any other remainder is still trailing garbage.
  if (!r.AtEnd()) {
    if (r.remaining() != 8) {
      return r.ExpectEnd("HML trailer");
    }
    ASSIGN_OR_RETURN(mod.template_hash, r.U64());
  }
  RETURN_IF_ERROR(r.ExpectEnd("HML trailer"));
  if (mod.text_size > kSfsMaxFileBytes || mod.data_size > kSfsMaxFileBytes ||
      mod.bss_size > kSfsMaxFileBytes) {
    return CorruptData("HML section larger than the 1 MB file cap");
  }
  uint64_t mem_size = static_cast<uint64_t>(mod.text_size) + mod.data_size + mod.bss_size;
  uint64_t init_size = static_cast<uint64_t>(mod.text_size) + mod.data_size;
  if (init_size > trailer_off) {
    return CorruptData("HML payload larger than mapped image");
  }
  if (mod.base % kPageSize != 0) {
    return CorruptData(StrFormat("HML base 0x%08x not page aligned", mod.base));
  }
  uint64_t end = mod.base + PageCeil64(mem_size);
  if (end > kSfsLimit) {
    return CorruptData(StrFormat("HML module [0x%08x,+0x%llx) escapes the mappable regions",
                                 mod.base, static_cast<unsigned long long>(mem_size)));
  }
  // Exports and pending relocation sites must name cells of this module; anything
  // else would let a hostile module file redirect or patch a neighbour.
  for (const AbsSymbol& s : mod.exports) {
    if (s.addr < mod.base || s.addr > mod.base + mem_size) {
      return CorruptData(StrFormat("export '%s' at 0x%08x outside the module",
                                   s.name.c_str(), s.addr));
    }
  }
  for (const PendingReloc& p : mod.pending) {
    if (p.site < mod.base || static_cast<uint64_t>(p.site) + 4 > mod.base + mem_size) {
      return CorruptData(StrFormat("pending relocation site 0x%08x outside the module", p.site));
    }
  }
  mod.payload.assign(bytes.begin(), bytes.begin() + init_size);
  return mod;
}

Status ApplyReloc(std::vector<uint8_t>* buf, uint32_t buf_base, RelocType type, uint32_t site,
                  uint32_t target) {
  if (site < buf_base ||
      static_cast<uint64_t>(site) + 4 > static_cast<uint64_t>(buf_base) + buf->size()) {
    return OutOfRange(StrFormat("relocation site 0x%08x outside buffer [0x%08x,+0x%zx)", site,
                                buf_base, buf->size()));
  }
  uint32_t off = site - buf_base;
  uint32_t word = 0;
  std::memcpy(&word, buf->data() + off, 4);
  switch (type) {
    case RelocType::kWord32:
      word = target;
      break;
    case RelocType::kHi16:
      word = (word & 0xFFFF0000u) | (target >> 16);
      break;
    case RelocType::kLo16:
      word = (word & 0xFFFF0000u) | (target & 0xFFFF);
      break;
    case RelocType::kPcRel16: {
      int32_t delta = static_cast<int32_t>(target) - static_cast<int32_t>(site) - 4;
      if (delta % 4 != 0 || delta / 4 < -32768 || delta / 4 > 32767) {
        return OutOfRange(StrFormat("PCREL16 displacement out of range at 0x%08x", site));
      }
      word = (word & 0xFFFF0000u) | (static_cast<uint32_t>(delta / 4) & 0xFFFF);
      break;
    }
    case RelocType::kJump26: {
      if (!JumpInRange(site, target)) {
        return OutOfRange(StrFormat(
            "JUMP26 target 0x%08x unreachable from 0x%08x (28-bit limit; needs trampoline)",
            target, site));
      }
      if ((target & 3) != 0) {
        return InvalidArgument("jump target not word aligned");
      }
      word = (word & 0xFC000000u) | ((target >> 2) & 0x03FFFFFFu);
      break;
    }
  }
  std::memcpy(buf->data() + off, &word, 4);
  return OkStatus();
}

}  // namespace hemlock
