// The HemC recursive-descent parser.
#ifndef SRC_LANG_PARSER_H_
#define SRC_LANG_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/lang/ast.h"
#include "src/lang/token.h"

namespace hemlock {

// Parses a full translation unit.
Result<std::unique_ptr<Program>> Parse(const std::vector<Token>& tokens);

// Convenience: lex + parse.
Result<std::unique_ptr<Program>> ParseSource(const std::string& source);

}  // namespace hemlock

#endif  // SRC_LANG_PARSER_H_
