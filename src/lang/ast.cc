#include "src/lang/ast.h"

namespace hemlock {

TypeRef MakeInt() {
  static TypeRef t = std::make_shared<Type>(Type{.kind = Type::K::kInt});
  return t;
}

TypeRef MakeChar() {
  static TypeRef t = std::make_shared<Type>(Type{.kind = Type::K::kChar});
  return t;
}

TypeRef MakeVoid() {
  static TypeRef t = std::make_shared<Type>(Type{.kind = Type::K::kVoid});
  return t;
}

TypeRef MakePtr(TypeRef elem) {
  auto t = std::make_shared<Type>();
  t->kind = Type::K::kPtr;
  t->elem = std::move(elem);
  return t;
}

TypeRef MakeArray(TypeRef elem, uint32_t len) {
  auto t = std::make_shared<Type>();
  t->kind = Type::K::kArray;
  t->elem = std::move(elem);
  t->array_len = len;
  return t;
}

TypeRef MakeStruct(std::shared_ptr<StructDef> sdef) {
  auto t = std::make_shared<Type>();
  t->kind = Type::K::kStruct;
  t->sdef = std::move(sdef);
  return t;
}

uint32_t TypeSize(const Type& type) {
  switch (type.kind) {
    case Type::K::kVoid:
      return 0;
    case Type::K::kChar:
      return 1;
    case Type::K::kInt:
    case Type::K::kPtr:
      return 4;
    case Type::K::kArray:
      return type.array_len * TypeSize(*type.elem);
    case Type::K::kStruct:
      return type.sdef->size;
  }
  return 0;
}

uint32_t TypeAlign(const Type& type) {
  switch (type.kind) {
    case Type::K::kVoid:
      return 1;
    case Type::K::kChar:
      return 1;
    case Type::K::kInt:
    case Type::K::kPtr:
      return 4;
    case Type::K::kArray:
      return TypeAlign(*type.elem);
    case Type::K::kStruct:
      return type.sdef->align;
  }
  return 1;
}

std::string TypeToString(const Type& type) {
  switch (type.kind) {
    case Type::K::kVoid:
      return "void";
    case Type::K::kChar:
      return "char";
    case Type::K::kInt:
      return "int";
    case Type::K::kPtr:
      return TypeToString(*type.elem) + "*";
    case Type::K::kArray:
      return TypeToString(*type.elem) + "[" + std::to_string(type.array_len) + "]";
    case Type::K::kStruct:
      return "struct " + type.sdef->name;
  }
  return "?";
}

}  // namespace hemlock
