// The HemC compiler driver: source text -> HOF template object.
#ifndef SRC_LANG_COMPILER_H_
#define SRC_LANG_COMPILER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/obj/object_file.h"

namespace hemlock {

struct CompileOptions {
  // Appends the HemC prelude (strlen/strcpy/strcmp/memcpy/memset/puts/putint, all
  // module-local) to the translation unit.
  bool include_prelude = true;
  // Embedded search strategy copied into the template (paper §2: lds "can be asked to
  // include search strategy information in the new .o file"); scoped linking consults
  // these when the module is instantiated at run time.
  std::vector<std::string> module_list;
  std::vector<std::string> search_path;
};

// Compiles one translation unit into a relocatable HOF object named |module_name|.
Result<ObjectFile> CompileHemC(const std::string& source, const std::string& module_name,
                               const CompileOptions& options = {});

// The prelude source (exposed for tests).
const char* HemCPrelude();

}  // namespace hemlock

#endif  // SRC_LANG_COMPILER_H_
