#include "src/lang/compiler.h"

#include "src/lang/codegen.h"
#include "src/lang/parser.h"

namespace hemlock {

const char* HemCPrelude() {
  return R"(
static int strlen(char *s) {
  int n;
  n = 0;
  while (s[n] != 0) { n = n + 1; }
  return n;
}
static int strcpy(char *dst, char *src) {
  int i;
  i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i = i + 1; }
  dst[i] = 0;
  return i;
}
static int strcmp(char *a, char *b) {
  int i;
  i = 0;
  while (a[i] != 0 && a[i] == b[i]) { i = i + 1; }
  return a[i] - b[i];
}
static int memcpy(char *dst, char *src, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
  return n;
}
static int memset(char *dst, int v, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { dst[i] = v; }
  return n;
}
static int puts(char *s) {
  sys_write(1, s, strlen(s));
  return 0;
}
static int putint(int n) {
  char buf[12];
  int i;
  int neg;
  i = 12;
  neg = 0;
  if (n < 0) { neg = 1; n = 0 - n; }
  if (n == 0) { i = i - 1; buf[i] = '0'; }
  while (n > 0) { i = i - 1; buf[i] = '0' + n % 10; n = n / 10; }
  if (neg) { i = i - 1; buf[i] = '-'; }
  sys_write(1, &buf[i], 12 - i);
  return 12 - i;
}
)";
}

Result<ObjectFile> CompileHemC(const std::string& source, const std::string& module_name,
                               const CompileOptions& options) {
  std::string unit = source;
  if (options.include_prelude) {
    // The prelude goes *after* user code so user line numbers stay meaningful; symbol
    // collection is order-insensitive.
    unit += "\n";
    unit += HemCPrelude();
  }
  ASSIGN_OR_RETURN(std::unique_ptr<Program> program, ParseSource(unit));
  ASSIGN_OR_RETURN(ObjectFile obj, GenerateCode(*program, module_name));
  obj.module_list() = options.module_list;
  obj.search_path() = options.search_path;
  return obj;
}

}  // namespace hemlock
