#include "src/lang/codegen.h"

#include <cassert>
#include <map>
#include <vector>

#include "src/base/strings.h"
#include "src/isa/isa.h"

namespace hemlock {

namespace {

// Syscall intrinsics. A call to one of these names (when no user function shadows it)
// compiles to an inline syscall sequence rather than a JAL.
struct Intrinsic {
  const char* name;
  Sys number;
  int arg_count;
};

constexpr Intrinsic kIntrinsics[] = {
    {"sys_exit", Sys::kExit, 1},
    {"sys_write", Sys::kWrite, 3},
    {"sys_read", Sys::kRead, 3},
    {"sys_open", Sys::kOpen, 2},
    {"sys_close", Sys::kClose, 1},
    {"sys_fork", Sys::kFork, 0},
    {"sys_waitpid", Sys::kWaitPid, 1},
    {"sys_getpid", Sys::kGetPid, 0},
    {"sys_sbrk", Sys::kSbrk, 1},
    {"sys_unlink", Sys::kUnlink, 1},
    {"sys_stat", Sys::kStat, 2},
    {"sys_addr_to_path", Sys::kAddrToPath, 3},
    {"sys_open_by_addr", Sys::kOpenByAddr, 2},
    {"sys_yield", Sys::kYield, 0},
    {"sys_time", Sys::kTime, 0},
    {"sys_lockf", Sys::kLockFile, 2},
    {"sys_signal", Sys::kSignal, 1},
    {"sys_futex_wait", Sys::kFutexWait, 2},
    {"sys_futex_wake", Sys::kFutexWake, 2},
    {"sys_cas", Sys::kCas, 3},
    {"sys_spawn", Sys::kSpawn, 1},
    {"sys_setprio", Sys::kSetPrio, 1},
};

const Intrinsic* FindIntrinsic(const std::string& name) {
  for (const Intrinsic& in : kIntrinsics) {
    if (name == in.name) {
      return &in;
    }
  }
  return nullptr;
}

class CodeGen {
 public:
  CodeGen(const Program& program, const std::string& module_name)
      : program_(program), b_(module_name) {}

  Result<ObjectFile> Run() {
    RETURN_IF_ERROR(CollectGlobals());
    RETURN_IF_ERROR(EmitGlobals());
    for (const FuncDecl& fn : program_.functions) {
      if (!fn.is_extern) {
        RETURN_IF_ERROR(EmitFunction(fn));
      }
    }
    return b_.Take();
  }

 private:
  struct GlobalInfo {
    TypeRef type;
    bool is_function = false;
    bool defined_here = false;  // has a definition in this module
    std::vector<TypeRef> param_types;
  };

  struct LocalVar {
    TypeRef type;
    int32_t fp_offset = 0;  // negative: locals; positive: incoming args
  };

  Status Error(int line, const std::string& msg) const {
    return InvalidArgument(
        StrFormat("codegen error (%s:%d): %s", b_.object().name().c_str(), line, msg.c_str()));
  }

  // ===== Symbol collection =====

  Status CollectGlobals() {
    for (const GlobalVar& var : program_.globals) {
      auto it = globals_.find(var.name);
      bool defines = !var.is_extern;
      if (it != globals_.end()) {
        if (defines && it->second.defined_here) {
          return Error(var.line, "duplicate global '" + var.name + "'");
        }
        it->second.defined_here = it->second.defined_here || defines;
        continue;
      }
      GlobalInfo info;
      info.type = var.type;
      info.defined_here = defines;
      globals_[var.name] = std::move(info);
    }
    for (const FuncDecl& fn : program_.functions) {
      auto it = globals_.find(fn.name);
      bool defines = !fn.is_extern;
      if (it != globals_.end()) {
        if (!it->second.is_function) {
          return Error(fn.line, "'" + fn.name + "' is both a variable and a function");
        }
        if (defines && it->second.defined_here) {
          return Error(fn.line, "duplicate function '" + fn.name + "'");
        }
        it->second.defined_here = it->second.defined_here || defines;
        continue;
      }
      GlobalInfo info;
      info.type = fn.ret;
      info.is_function = true;
      info.defined_here = defines;
      for (const Param& p : fn.params) {
        info.param_types.push_back(p.type);
      }
      globals_[fn.name] = std::move(info);
    }
    return OkStatus();
  }

  // ===== Global data emission =====

  // A const-folded initializer item: either a plain value or symbol+addend.
  struct ConstValue {
    int32_t value = 0;
    std::string symbol;  // empty: pure constant
  };

  Result<ConstValue> ConstEval(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return ConstValue{e.number, ""};
      case ExprKind::kString: {
        std::string label = InternString(e.text);
        return ConstValue{0, label};
      }
      case ExprKind::kSizeofType:
        return ConstValue{static_cast<int32_t>(TypeSize(*e.sizeof_type)), ""};
      case ExprKind::kIdent: {
        // A bare identifier in a constant initializer: a function or array name
        // decaying to its address.
        auto it = globals_.find(e.text);
        if (it == globals_.end()) {
          return Error(e.line, "unknown symbol in initializer: '" + e.text + "'");
        }
        if (!it->second.is_function && !it->second.type->IsArray()) {
          return Error(e.line, "initializer symbol '" + e.text + "' is not a constant address");
        }
        return ConstValue{0, e.text};
      }
      case ExprKind::kAddrOf: {
        const Expr& target = *e.lhs;
        if (target.kind == ExprKind::kIdent) {
          if (globals_.count(target.text) == 0) {
            return Error(e.line, "unknown symbol in initializer: '" + target.text + "'");
          }
          return ConstValue{0, target.text};
        }
        if (target.kind == ExprKind::kIndex && target.lhs->kind == ExprKind::kIdent) {
          ASSIGN_OR_RETURN(ConstValue idx, ConstEval(*target.rhs));
          if (!idx.symbol.empty()) {
            return Error(e.line, "non-constant array index in initializer");
          }
          auto it = globals_.find(target.lhs->text);
          if (it == globals_.end() || !it->second.type->IsArray()) {
            return Error(e.line, "initializer '&x[i]' requires a global array");
          }
          int32_t scale = static_cast<int32_t>(TypeSize(*it->second.type->elem));
          return ConstValue{idx.value * scale, target.lhs->text};
        }
        return Error(e.line, "unsupported address-of in initializer");
      }
      case ExprKind::kUnary: {
        ASSIGN_OR_RETURN(ConstValue v, ConstEval(*e.lhs));
        if (!v.symbol.empty()) {
          return Error(e.line, "arithmetic on symbol address in initializer");
        }
        switch (e.op) {
          case Tok::kMinus:
            return ConstValue{-v.value, ""};
          case Tok::kTilde:
            return ConstValue{~v.value, ""};
          case Tok::kBang:
            return ConstValue{v.value == 0 ? 1 : 0, ""};
          default:
            return Error(e.line, "unsupported unary operator in initializer");
        }
      }
      case ExprKind::kBinary: {
        ASSIGN_OR_RETURN(ConstValue a, ConstEval(*e.lhs));
        ASSIGN_OR_RETURN(ConstValue b, ConstEval(*e.rhs));
        // symbol +- const is allowed (address arithmetic).
        if (!a.symbol.empty() || !b.symbol.empty()) {
          if (e.op == Tok::kPlus && b.symbol.empty()) {
            return ConstValue{a.value + b.value, a.symbol};
          }
          if (e.op == Tok::kPlus && a.symbol.empty()) {
            return ConstValue{a.value + b.value, b.symbol};
          }
          if (e.op == Tok::kMinus && b.symbol.empty()) {
            return ConstValue{a.value - b.value, a.symbol};
          }
          return Error(e.line, "unsupported symbol arithmetic in initializer");
        }
        switch (e.op) {
          case Tok::kPlus:
            return ConstValue{a.value + b.value, ""};
          case Tok::kMinus:
            return ConstValue{a.value - b.value, ""};
          case Tok::kStar:
            return ConstValue{a.value * b.value, ""};
          case Tok::kSlash:
            if (b.value == 0) {
              return Error(e.line, "division by zero in initializer");
            }
            return ConstValue{a.value / b.value, ""};
          case Tok::kPercent:
            if (b.value == 0) {
              return Error(e.line, "division by zero in initializer");
            }
            return ConstValue{a.value % b.value, ""};
          case Tok::kShl:
            return ConstValue{a.value << (b.value & 31), ""};
          case Tok::kShr:
            return ConstValue{a.value >> (b.value & 31), ""};
          case Tok::kAmp:
            return ConstValue{a.value & b.value, ""};
          case Tok::kPipe:
            return ConstValue{a.value | b.value, ""};
          case Tok::kCaret:
            return ConstValue{a.value ^ b.value, ""};
          default:
            return Error(e.line, "unsupported binary operator in initializer");
        }
      }
      default:
        return Error(e.line, "initializer is not a constant expression");
    }
  }

  // Writes one scalar of |type| at the current end of .data from |cv|.
  Status EmitScalarInit(const Type& type, const ConstValue& cv, int line) {
    uint32_t size = TypeSize(type);
    if (!cv.symbol.empty()) {
      if (size != 4) {
        return Error(line, "address initializer requires a pointer-sized field");
      }
      uint32_t offset = b_.EmitDataWord(static_cast<uint32_t>(cv.value));
      b_.AddReloc(RelocType::kWord32, SectionKind::kData, offset, cv.symbol, cv.value);
      return OkStatus();
    }
    if (size == 1) {
      uint8_t byte = static_cast<uint8_t>(cv.value);
      b_.EmitData(&byte, 1);
    } else {
      b_.EmitDataWord(static_cast<uint32_t>(cv.value));
    }
    return OkStatus();
  }

  Status EmitInitializedVar(const GlobalVar& var) {
    const Type& type = *var.type;
    // Phase 1: const-fold every item *before* emitting anything — ConstEval can
    // intern string literals, which itself appends to .data, and that must not land
    // inside this variable's cells.
    bool char_array_from_string = type.IsArray() && type.elem->kind == Type::K::kChar &&
                                  var.inits.size() == 1 &&
                                  var.inits[0].expr->kind == ExprKind::kString;
    std::vector<ConstValue> values;
    if (!char_array_from_string) {
      values.reserve(var.inits.size());
      for (const GlobalInit& init : var.inits) {
        ASSIGN_OR_RETURN(ConstValue cv, ConstEval(*init.expr));
        values.push_back(std::move(cv));
      }
    }

    // Phase 2: lay the variable down.
    b_.AlignData(std::max<uint32_t>(TypeAlign(type), 1));
    uint32_t start = static_cast<uint32_t>(b_.object().data().size());
    auto emit_zeros = [&](uint32_t n) {
      for (uint32_t i = 0; i < n; ++i) {
        uint8_t zero = 0;
        b_.EmitData(&zero, 1);
      }
    };
    if (type.IsArray()) {
      const Type& elem = *type.elem;
      uint32_t elem_size = TypeSize(elem);
      if (char_array_from_string) {
        const std::string& s = var.inits[0].expr->text;
        if (s.size() + 1 > type.array_len) {
          return Error(var.line, "string initializer too long for '" + var.name + "'");
        }
        b_.EmitData(s.data(), static_cast<uint32_t>(s.size()));
        emit_zeros(type.array_len - static_cast<uint32_t>(s.size()));
      } else {
        if (values.size() > type.array_len) {
          return Error(var.line, "too many initializers for '" + var.name + "'");
        }
        for (const ConstValue& cv : values) {
          RETURN_IF_ERROR(EmitScalarInit(elem, cv, var.line));
        }
        emit_zeros((type.array_len - static_cast<uint32_t>(values.size())) * elem_size);
      }
    } else if (type.IsStruct()) {
      if (values.size() > type.sdef->fields.size()) {
        return Error(var.line, "too many initializers for '" + var.name + "'");
      }
      uint32_t written = 0;
      for (size_t i = 0; i < type.sdef->fields.size(); ++i) {
        const StructField& field = type.sdef->fields[i];
        emit_zeros(field.offset - written);  // padding up to the field offset
        written = field.offset;
        if (i < values.size()) {
          RETURN_IF_ERROR(EmitScalarInit(*field.type, values[i], var.line));
        } else {
          emit_zeros(TypeSize(*field.type));
        }
        written += TypeSize(*field.type);
      }
      emit_zeros(type.sdef->size - written);
    } else {
      if (values.size() != 1) {
        return Error(var.line, "scalar '" + var.name + "' needs exactly one initializer");
      }
      RETURN_IF_ERROR(EmitScalarInit(type, values[0], var.line));
    }
    return b_.DefineSymbol(var.name, SectionKind::kData, start, /*is_function=*/false,
                           var.is_static ? SymBinding::kLocal : SymBinding::kGlobal);
  }

  Status EmitGlobals() {
    for (const GlobalVar& var : program_.globals) {
      if (var.is_extern) {
        b_.Reference(var.name);
        continue;
      }
      if (var.has_init) {
        RETURN_IF_ERROR(EmitInitializedVar(var));
      } else {
        uint32_t offset = b_.ReserveBss(TypeSize(*var.type), TypeAlign(*var.type));
        RETURN_IF_ERROR(b_.DefineSymbol(var.name, SectionKind::kBss, offset,
                                        /*is_function=*/false,
                                        var.is_static ? SymBinding::kLocal : SymBinding::kGlobal));
      }
    }
    return OkStatus();
  }

  std::string InternString(const std::string& value) {
    auto it = string_labels_.find(value);
    if (it != string_labels_.end()) {
      return it->second;
    }
    std::string label = StrFormat(".Lstr%u", static_cast<unsigned>(string_labels_.size()));
    b_.AlignData(4);
    uint32_t offset = b_.EmitData(value.data(), static_cast<uint32_t>(value.size()));
    uint8_t zero = 0;
    b_.EmitData(&zero, 1);
    Status st = b_.DefineSymbol(label, SectionKind::kData, offset, /*is_function=*/false,
                                SymBinding::kLocal);
    assert(st.ok());
    (void)st;
    string_labels_[value] = label;
    return label;
  }

  // ===== Instruction helpers =====

  void Emit(uint32_t word) { b_.EmitText(word); }

  // Loads a 32-bit constant into |reg|.
  void EmitLoadImm(uint8_t reg, uint32_t value) {
    if (value <= 0xFFFF) {
      Emit(EncodeOri(reg, kRegZero, static_cast<uint16_t>(value)));
    } else if ((value & 0xFFFF) == 0) {
      Emit(EncodeLui(reg, static_cast<uint16_t>(value >> 16)));
    } else {
      Emit(EncodeLui(reg, static_cast<uint16_t>(value >> 16)));
      Emit(EncodeOri(reg, reg, static_cast<uint16_t>(value)));
    }
  }

  // Materializes the address of |symbol|+|addend| into |reg| via relocated LUI/ORI.
  void EmitLoadSymbolAddr(uint8_t reg, const std::string& symbol, int32_t addend = 0) {
    uint32_t lui_off = b_.TextSize();
    Emit(EncodeLui(reg, 0));
    b_.AddReloc(RelocType::kHi16, SectionKind::kText, lui_off, symbol, addend);
    uint32_t ori_off = b_.TextSize();
    Emit(EncodeOri(reg, reg, 0));
    b_.AddReloc(RelocType::kLo16, SectionKind::kText, ori_off, symbol, addend);
  }

  void EmitPush(uint8_t reg) {
    Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, static_cast<uint16_t>(-4)));
    Emit(EncodeI(Op::kSw, reg, kRegSp, 0));
  }

  void EmitPop(uint8_t reg) {
    Emit(EncodeI(Op::kLw, reg, kRegSp, 0));
    Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, 4));
  }

  void EmitMove(uint8_t dst, uint8_t src) { Emit(EncodeR(Funct::kAdd, dst, src, kRegZero)); }

  // Emits a branch with a to-be-patched displacement; returns the site offset.
  uint32_t EmitBranchPlaceholder(Op op, uint8_t rs, uint8_t rt) {
    uint32_t off = b_.TextSize();
    Emit(EncodeI(op, rt, rs, 0));
    return off;
  }

  // Patches the branch at |site| to jump to |target| (both byte offsets in .text).
  Status PatchBranch(uint32_t site, uint32_t target, int line) {
    int32_t delta_words = (static_cast<int32_t>(target) - static_cast<int32_t>(site) - 4) / 4;
    if (delta_words < -32768 || delta_words > 32767) {
      return Error(line, "branch displacement out of range (function too large)");
    }
    uint32_t word = 0;
    std::memcpy(&word, b_.object().text().data() + site, 4);
    word = (word & 0xFFFF0000u) | (static_cast<uint32_t>(delta_words) & 0xFFFF);
    b_.PatchText(site, word);
    return OkStatus();
  }

  // Unconditional branch (beq $zero,$zero).
  uint32_t EmitJumpPlaceholder() { return EmitBranchPlaceholder(Op::kBeq, kRegZero, kRegZero); }

  // ===== Scopes =====

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  const LocalVar* FindLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return &found->second;
      }
    }
    return nullptr;
  }

  Status DeclareLocal(const std::string& name, TypeRef type, int line) {
    if (!scopes_.empty() && scopes_.back().count(name) != 0) {
      return Error(line, "duplicate local '" + name + "'");
    }
    uint32_t size = TypeSize(*type);
    if (size == 0) {
      return Error(line, "local '" + name + "' has incomplete type");
    }
    uint32_t align = std::max<uint32_t>(TypeAlign(*type), 4);
    frame_size_ = (frame_size_ + size + align - 1) & ~(align - 1);
    LocalVar var;
    var.type = std::move(type);
    var.fp_offset = -static_cast<int32_t>(frame_size_);
    max_frame_size_ = std::max(max_frame_size_, frame_size_);
    scopes_.back()[name] = var;
    return OkStatus();
  }

  // ===== Expressions =====

  static bool IsScalar(const Type& type) {
    return type.IsInteger() || type.IsPointer();
  }

  // Loads the value at the address in $v0, with type |type|, back into $v0.
  // Arrays and structs "load" as their address (decay).
  void EmitLoadFromAddr(const Type& type) {
    if (type.kind == Type::K::kChar) {
      Emit(EncodeI(Op::kLb, kRegV0, kRegV0, 0));
    } else if (IsScalar(type)) {
      Emit(EncodeI(Op::kLw, kRegV0, kRegV0, 0));
    }
    // kArray / kStruct: the address is the value.
  }

  // Stores $t1 (value) through the address in $t0 with type |type|.
  void EmitStoreToAddr(const Type& type) {
    if (type.kind == Type::K::kChar) {
      Emit(EncodeI(Op::kSb, kRegT1, kRegT0, 0));
    } else {
      Emit(EncodeI(Op::kSw, kRegT1, kRegT0, 0));
    }
  }

  // Generates |e| as an lvalue: leaves the object's address in $v0, returns its type.
  Result<TypeRef> GenAddr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIdent: {
        const LocalVar* local = FindLocal(e.text);
        if (local != nullptr) {
          Emit(EncodeI(Op::kAddi, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset)));
          return local->type;
        }
        auto it = globals_.find(e.text);
        if (it != globals_.end()) {
          if (it->second.is_function) {
            return Error(e.line, "function '" + e.text + "' is not an lvalue");
          }
          EmitLoadSymbolAddr(kRegV0, e.text);
          return it->second.type;
        }
        return Error(e.line, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kDeref: {
        ASSIGN_OR_RETURN(TypeRef ptr, GenExpr(*e.lhs));
        if (!ptr->IsPointer() && !ptr->IsArray()) {
          return Error(e.line, "cannot dereference non-pointer (" + TypeToString(*ptr) + ")");
        }
        return ptr->elem;
      }
      case ExprKind::kIndex: {
        ASSIGN_OR_RETURN(TypeRef base, GenExpr(*e.lhs));  // array decays to address
        if (!base->IsPointer() && !base->IsArray()) {
          return Error(e.line, "cannot index non-pointer (" + TypeToString(*base) + ")");
        }
        TypeRef elem = base->elem;
        EmitPush(kRegV0);
        ASSIGN_OR_RETURN(TypeRef idx, GenExpr(*e.rhs));
        if (!idx->IsInteger()) {
          return Error(e.line, "array index must be an integer");
        }
        uint32_t scale = TypeSize(*elem);
        EmitScaleV0(scale);
        EmitPop(kRegT0);
        Emit(EncodeR(Funct::kAdd, kRegV0, kRegT0, kRegV0));
        return elem;
      }
      case ExprKind::kMember: {
        TypeRef base;
        if (e.arrow) {
          ASSIGN_OR_RETURN(base, GenExpr(*e.lhs));
          if (!base->IsPointer() || !base->elem->IsStruct()) {
            return Error(e.line, "'->' requires a pointer to struct");
          }
          base = base->elem;
        } else {
          ASSIGN_OR_RETURN(base, GenAddr(*e.lhs));
          if (!base->IsStruct()) {
            return Error(e.line, "'.' requires a struct");
          }
        }
        const StructField* field = base->sdef->FindField(e.text);
        if (field == nullptr) {
          return Error(e.line,
                       "no field '" + e.text + "' in struct " + base->sdef->name);
        }
        if (field->offset != 0) {
          Emit(EncodeI(Op::kAddi, kRegV0, kRegV0, static_cast<uint16_t>(field->offset)));
        }
        return field->type;
      }
      default:
        return Error(e.line, "expression is not an lvalue");
    }
  }

  // Multiplies $v0 by |scale| (pointer arithmetic).
  void EmitScaleV0(uint32_t scale) {
    if (scale == 1) {
      return;
    }
    if ((scale & (scale - 1)) == 0) {
      uint8_t shift = 0;
      while ((1u << shift) != scale) {
        ++shift;
      }
      Emit(EncodeR(Funct::kSll, kRegV0, 0, kRegV0, shift));
      return;
    }
    EmitLoadImm(kRegT2, scale);
    Emit(EncodeR(Funct::kMul, kRegV0, kRegV0, kRegT2));
  }

  // Generates |e| as an rvalue in $v0; returns the value's type (arrays decay to
  // pointers; struct values are represented by their address).
  Result<TypeRef> GenExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        EmitLoadImm(kRegV0, static_cast<uint32_t>(e.number));
        return MakeInt();
      case ExprKind::kString: {
        std::string label = InternString(e.text);
        EmitLoadSymbolAddr(kRegV0, label);
        return MakePtr(MakeChar());
      }
      case ExprKind::kIdent: {
        const LocalVar* local = FindLocal(e.text);
        if (local != nullptr) {
          if (local->type->IsArray()) {
            Emit(EncodeI(Op::kAddi, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset)));
            return MakePtr(local->type->elem);
          }
          Emit(local->type->kind == Type::K::kChar
                   ? EncodeI(Op::kLb, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset))
                   : EncodeI(Op::kLw, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset)));
          return local->type;
        }
        auto it = globals_.find(e.text);
        if (it != globals_.end()) {
          EmitLoadSymbolAddr(kRegV0, e.text);
          if (it->second.is_function) {
            return MakePtr(MakeVoid());  // function designator as a value: its address
          }
          if (it->second.type->IsArray()) {
            return MakePtr(it->second.type->elem);
          }
          EmitLoadFromAddr(*it->second.type);
          return it->second.type;
        }
        if (FindIntrinsic(e.text) != nullptr) {
          return Error(e.line, "syscall intrinsic '" + e.text + "' can only be called");
        }
        return Error(e.line, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kDeref:
      case ExprKind::kIndex:
      case ExprKind::kMember: {
        ASSIGN_OR_RETURN(TypeRef type, GenAddr(e));
        if (type->IsArray()) {
          return MakePtr(type->elem);
        }
        EmitLoadFromAddr(*type);
        return type;
      }
      case ExprKind::kAddrOf: {
        ASSIGN_OR_RETURN(TypeRef type, GenAddrOfTarget(*e.lhs));
        return MakePtr(type);
      }
      case ExprKind::kSizeofType:
        EmitLoadImm(kRegV0, TypeSize(*e.sizeof_type));
        return MakeInt();
      case ExprKind::kSizeofExpr: {
        ASSIGN_OR_RETURN(uint32_t size, StaticSizeOf(*e.lhs));
        EmitLoadImm(kRegV0, size);
        return MakeInt();
      }
      case ExprKind::kUnary:
        return GenUnary(e);
      case ExprKind::kBinary:
        return GenBinary(e);
      case ExprKind::kAssign:
        return GenAssign(e);
      case ExprKind::kCall:
        return GenCall(e);
      case ExprKind::kPreIncDec:
      case ExprKind::kPostIncDec:
        return GenIncDec(e);
      case ExprKind::kCond: {
        ASSIGN_OR_RETURN(TypeRef ct, GenExpr(*e.lhs));
        (void)ct;
        uint32_t to_else = EmitBranchPlaceholder(Op::kBeq, kRegV0, kRegZero);
        ASSIGN_OR_RETURN(TypeRef then_type, GenExpr(*e.rhs));
        uint32_t to_end = EmitJumpPlaceholder();
        RETURN_IF_ERROR(PatchBranch(to_else, b_.TextSize(), e.line));
        ASSIGN_OR_RETURN(TypeRef else_type, GenExpr(*e.third));
        (void)else_type;
        RETURN_IF_ERROR(PatchBranch(to_end, b_.TextSize(), e.line));
        return then_type;  // C picks the common type; we take the then-branch's
      }
    }
    return Error(e.line, "unsupported expression");
  }

  // &f where f is a function needs special handling (functions aren't lvalues).
  Result<TypeRef> GenAddrOfTarget(const Expr& target) {
    if (target.kind == ExprKind::kIdent) {
      auto it = globals_.find(target.text);
      if (it != globals_.end() && it->second.is_function) {
        EmitLoadSymbolAddr(kRegV0, target.text);
        return MakeVoid();  // &func: pointer to void stands in for a function pointer
      }
    }
    return GenAddr(target);
  }

  // Computes sizeof(expr) without generating code, from static types.
  Result<uint32_t> StaticSizeOf(const Expr& e) {
    ASSIGN_OR_RETURN(TypeRef type, TypeOf(e));
    return TypeSize(*type);
  }

  // Static type of an expression (no code emitted); conservative subset used by sizeof.
  Result<TypeRef> TypeOf(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        return MakeInt();
      case ExprKind::kString:
        return MakeArray(MakeChar(), static_cast<uint32_t>(e.text.size() + 1));
      case ExprKind::kIdent: {
        const LocalVar* local = FindLocal(e.text);
        if (local != nullptr) {
          return local->type;
        }
        auto it = globals_.find(e.text);
        if (it != globals_.end()) {
          return it->second.type;
        }
        return Error(e.line, "unknown identifier '" + e.text + "'");
      }
      case ExprKind::kDeref: {
        ASSIGN_OR_RETURN(TypeRef t, TypeOf(*e.lhs));
        if (!t->IsPointer() && !t->IsArray()) {
          return Error(e.line, "cannot dereference non-pointer");
        }
        return t->elem;
      }
      case ExprKind::kIndex: {
        ASSIGN_OR_RETURN(TypeRef t, TypeOf(*e.lhs));
        if (!t->IsPointer() && !t->IsArray()) {
          return Error(e.line, "cannot index non-pointer");
        }
        return t->elem;
      }
      case ExprKind::kMember: {
        ASSIGN_OR_RETURN(TypeRef t, TypeOf(*e.lhs));
        if (e.arrow) {
          if (!t->IsPointer() || !t->elem->IsStruct()) {
            return Error(e.line, "'->' requires pointer to struct");
          }
          t = t->elem;
        }
        if (!t->IsStruct()) {
          return Error(e.line, "'.' requires a struct");
        }
        const StructField* field = t->sdef->FindField(e.text);
        if (field == nullptr) {
          return Error(e.line, "no such field '" + e.text + "'");
        }
        return field->type;
      }
      case ExprKind::kAddrOf: {
        ASSIGN_OR_RETURN(TypeRef t, TypeOf(*e.lhs));
        return MakePtr(t);
      }
      default:
        return MakeInt();
    }
  }

  Result<TypeRef> GenUnary(const Expr& e) {
    ASSIGN_OR_RETURN(TypeRef type, GenExpr(*e.lhs));
    switch (e.op) {
      case Tok::kMinus:
        Emit(EncodeR(Funct::kSub, kRegV0, kRegZero, kRegV0));
        return MakeInt();
      case Tok::kBang:
        Emit(EncodeI(Op::kSltiu, kRegV0, kRegV0, 1));
        return MakeInt();
      case Tok::kTilde:
        Emit(EncodeR(Funct::kNor, kRegV0, kRegV0, kRegZero));
        return MakeInt();
      default:
        return Error(e.line, "unsupported unary operator");
    }
  }

  Result<TypeRef> GenBinary(const Expr& e) {
    // Short-circuit logicals first.
    if (e.op == Tok::kAmpAmp || e.op == Tok::kPipePipe) {
      ASSIGN_OR_RETURN(TypeRef lt, GenExpr(*e.lhs));
      (void)lt;
      // Normalize to 0/1.
      Emit(EncodeR(Funct::kSltu, kRegV0, kRegZero, kRegV0));
      uint32_t skip = e.op == Tok::kAmpAmp
                          ? EmitBranchPlaceholder(Op::kBeq, kRegV0, kRegZero)
                          : EmitBranchPlaceholder(Op::kBne, kRegV0, kRegZero);
      ASSIGN_OR_RETURN(TypeRef rt, GenExpr(*e.rhs));
      (void)rt;
      Emit(EncodeR(Funct::kSltu, kRegV0, kRegZero, kRegV0));
      RETURN_IF_ERROR(PatchBranch(skip, b_.TextSize(), e.line));
      return MakeInt();
    }

    ASSIGN_OR_RETURN(TypeRef lt, GenExpr(*e.lhs));
    EmitPush(kRegV0);
    ASSIGN_OR_RETURN(TypeRef rt, GenExpr(*e.rhs));
    EmitMove(kRegT1, kRegV0);
    EmitPop(kRegT0);
    // t0 = lhs, t1 = rhs.

    bool l_ptr = lt->IsPointer();
    bool r_ptr = rt->IsPointer();

    switch (e.op) {
      case Tok::kPlus: {
        if (l_ptr && rt->IsInteger()) {
          EmitMove(kRegV0, kRegT1);
          EmitScaleV0(TypeSize(*lt->elem));
          Emit(EncodeR(Funct::kAdd, kRegV0, kRegT0, kRegV0));
          return lt;
        }
        if (r_ptr && lt->IsInteger()) {
          EmitMove(kRegV0, kRegT0);
          EmitScaleV0(TypeSize(*rt->elem));
          Emit(EncodeR(Funct::kAdd, kRegV0, kRegV0, kRegT1));
          return rt;
        }
        Emit(EncodeR(Funct::kAdd, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      }
      case Tok::kMinus: {
        if (l_ptr && rt->IsInteger()) {
          EmitMove(kRegV0, kRegT1);
          EmitScaleV0(TypeSize(*lt->elem));
          Emit(EncodeR(Funct::kSub, kRegV0, kRegT0, kRegV0));
          return lt;
        }
        if (l_ptr && r_ptr) {
          Emit(EncodeR(Funct::kSub, kRegV0, kRegT0, kRegT1));
          uint32_t scale = TypeSize(*lt->elem);
          if (scale > 1) {
            EmitLoadImm(kRegT2, scale);
            Emit(EncodeR(Funct::kDiv, kRegV0, kRegV0, kRegT2));
          }
          return MakeInt();
        }
        Emit(EncodeR(Funct::kSub, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      }
      case Tok::kStar:
        Emit(EncodeR(Funct::kMul, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kSlash:
        Emit(EncodeR(Funct::kDiv, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kPercent:
        Emit(EncodeR(Funct::kMod, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kAmp:
        Emit(EncodeR(Funct::kAnd, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kPipe:
        Emit(EncodeR(Funct::kOr, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kCaret:
        Emit(EncodeR(Funct::kXor, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kShl:
        Emit(EncodeR(Funct::kSllv, kRegV0, kRegT1, kRegT0));
        return MakeInt();
      case Tok::kShr:
        Emit(EncodeR(Funct::kSrav, kRegV0, kRegT1, kRegT0));
        return MakeInt();
      case Tok::kEqEq:
        Emit(EncodeR(Funct::kXor, kRegV0, kRegT0, kRegT1));
        Emit(EncodeI(Op::kSltiu, kRegV0, kRegV0, 1));
        return MakeInt();
      case Tok::kNotEq:
        Emit(EncodeR(Funct::kXor, kRegV0, kRegT0, kRegT1));
        Emit(EncodeR(Funct::kSltu, kRegV0, kRegZero, kRegV0));
        return MakeInt();
      case Tok::kLt:
        Emit(l_ptr || r_ptr ? EncodeR(Funct::kSltu, kRegV0, kRegT0, kRegT1)
                            : EncodeR(Funct::kSlt, kRegV0, kRegT0, kRegT1));
        return MakeInt();
      case Tok::kGt:
        Emit(l_ptr || r_ptr ? EncodeR(Funct::kSltu, kRegV0, kRegT1, kRegT0)
                            : EncodeR(Funct::kSlt, kRegV0, kRegT1, kRegT0));
        return MakeInt();
      case Tok::kLe:
        Emit(l_ptr || r_ptr ? EncodeR(Funct::kSltu, kRegV0, kRegT1, kRegT0)
                            : EncodeR(Funct::kSlt, kRegV0, kRegT1, kRegT0));
        Emit(EncodeI(Op::kXori, kRegV0, kRegV0, 1));
        return MakeInt();
      case Tok::kGe:
        Emit(l_ptr || r_ptr ? EncodeR(Funct::kSltu, kRegV0, kRegT0, kRegT1)
                            : EncodeR(Funct::kSlt, kRegV0, kRegT0, kRegT1));
        Emit(EncodeI(Op::kXori, kRegV0, kRegV0, 1));
        return MakeInt();
      default:
        return Error(e.line, "unsupported binary operator");
    }
  }

  Result<TypeRef> GenAssign(const Expr& e) {
    ASSIGN_OR_RETURN(TypeRef ltype, GenAddr(*e.lhs));
    if (!IsScalar(*ltype)) {
      return Error(e.line, "assignment requires a scalar lvalue (no struct assignment)");
    }
    EmitPush(kRegV0);  // address
    ASSIGN_OR_RETURN(TypeRef rtype, GenExpr(*e.rhs));
    EmitMove(kRegT1, kRegV0);
    EmitPop(kRegT0);
    if (e.op == Tok::kPlusAssign || e.op == Tok::kMinusAssign) {
      // t2 = *addr; t1 = t2 op t1 (with pointer scaling).
      Emit(ltype->kind == Type::K::kChar ? EncodeI(Op::kLb, kRegT2, kRegT0, 0)
                                         : EncodeI(Op::kLw, kRegT2, kRegT0, 0));
      if (ltype->IsPointer() && rtype->IsInteger()) {
        EmitMove(kRegV0, kRegT1);
        EmitScaleV0(TypeSize(*ltype->elem));
        EmitMove(kRegT1, kRegV0);
      }
      Emit(e.op == Tok::kPlusAssign ? EncodeR(Funct::kAdd, kRegT1, kRegT2, kRegT1)
                                    : EncodeR(Funct::kSub, kRegT1, kRegT2, kRegT1));
    }
    EmitStoreToAddr(*ltype);
    EmitMove(kRegV0, kRegT1);  // assignment yields the stored value
    return ltype;
  }

  Result<TypeRef> GenIncDec(const Expr& e) {
    ASSIGN_OR_RETURN(TypeRef type, GenAddr(*e.lhs));
    if (!IsScalar(*type)) {
      return Error(e.line, "++/-- requires a scalar lvalue");
    }
    EmitMove(kRegT0, kRegV0);
    Emit(type->kind == Type::K::kChar ? EncodeI(Op::kLb, kRegT2, kRegT0, 0)
                                      : EncodeI(Op::kLw, kRegT2, kRegT0, 0));
    uint32_t delta = type->IsPointer() ? TypeSize(*type->elem) : 1;
    Emit(EncodeI(Op::kAddi, kRegT1, kRegT2,
                 static_cast<uint16_t>(e.op == Tok::kPlusPlus ? static_cast<int16_t>(delta)
                                                              : -static_cast<int16_t>(delta))));
    EmitStoreToAddr(*type);
    EmitMove(kRegV0, e.kind == ExprKind::kPreIncDec ? kRegT1 : kRegT2);
    return type;
  }

  Result<TypeRef> GenCall(const Expr& e) {
    // Direct-call cases: named user function or syscall intrinsic.
    if (e.lhs->kind == ExprKind::kIdent) {
      const std::string& name = e.lhs->text;
      auto it = globals_.find(name);
      bool is_user_func = it != globals_.end() && it->second.is_function;
      if (!is_user_func && FindLocal(name) == nullptr) {
        const Intrinsic* intr = FindIntrinsic(name);
        if (intr != nullptr) {
          return GenIntrinsicCall(e, *intr);
        }
      }
      if (is_user_func) {
        // Push arguments right-to-left.
        for (size_t i = e.args.size(); i > 0; --i) {
          ASSIGN_OR_RETURN(TypeRef at, GenExpr(*e.args[i - 1]));
          (void)at;
          EmitPush(kRegV0);
        }
        uint32_t site = b_.TextSize();
        Emit(EncodeJ(Op::kJal, 0));
        b_.AddReloc(RelocType::kJump26, SectionKind::kText, site, name, 0);
        if (!e.args.empty()) {
          Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, static_cast<uint16_t>(4 * e.args.size())));
        }
        return it->second.type;  // return type
      }
    }
    // Indirect call through a pointer value.
    for (size_t i = e.args.size(); i > 0; --i) {
      ASSIGN_OR_RETURN(TypeRef at, GenExpr(*e.args[i - 1]));
      (void)at;
      EmitPush(kRegV0);
    }
    ASSIGN_OR_RETURN(TypeRef callee, GenExpr(*e.lhs));
    if (!callee->IsPointer() && !callee->IsInteger()) {
      return Error(e.line, "called object is not a function or function pointer");
    }
    Emit(EncodeJalr(kRegRa, kRegV0));
    if (!e.args.empty()) {
      Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, static_cast<uint16_t>(4 * e.args.size())));
    }
    return MakeInt();
  }

  Result<TypeRef> GenIntrinsicCall(const Expr& e, const Intrinsic& intr) {
    if (static_cast<int>(e.args.size()) != intr.arg_count) {
      return Error(e.line, StrFormat("%s expects %d arguments", intr.name, intr.arg_count));
    }
    for (size_t i = e.args.size(); i > 0; --i) {
      ASSIGN_OR_RETURN(TypeRef at, GenExpr(*e.args[i - 1]));
      (void)at;
      EmitPush(kRegV0);
    }
    static constexpr uint8_t kArgRegs[] = {kRegA0, kRegA1, kRegA2, kRegA3};
    for (int i = 0; i < intr.arg_count; ++i) {
      EmitPop(kArgRegs[i]);
    }
    EmitLoadImm(kRegV0, static_cast<uint32_t>(intr.number));
    Emit(EncodeSyscall());
    return MakeInt();
  }

  // ===== Statements =====

  Status GenStmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kEmpty:
        return OkStatus();
      case StmtKind::kExpr: {
        ASSIGN_OR_RETURN(TypeRef t, GenExpr(*s.expr));
        (void)t;
        return OkStatus();
      }
      case StmtKind::kVarDecl: {
        RETURN_IF_ERROR(DeclareLocal(s.decl_name, s.decl_type, s.line));
        if (s.expr != nullptr) {
          const LocalVar* local = FindLocal(s.decl_name);
          ASSIGN_OR_RETURN(TypeRef rt, GenExpr(*s.expr));
          (void)rt;
          Emit(s.decl_type->kind == Type::K::kChar
                   ? EncodeI(Op::kSb, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset))
                   : EncodeI(Op::kSw, kRegV0, kRegFp, static_cast<uint16_t>(local->fp_offset)));
        }
        return OkStatus();
      }
      case StmtKind::kBlock: {
        PushScope();
        uint32_t saved = frame_size_;
        for (const auto& sub : s.block) {
          RETURN_IF_ERROR(GenStmt(*sub));
        }
        frame_size_ = saved;  // block-local slots recycle
        PopScope();
        return OkStatus();
      }
      case StmtKind::kIf: {
        ASSIGN_OR_RETURN(TypeRef ct, GenExpr(*s.cond));
        (void)ct;
        uint32_t skip_then = EmitBranchPlaceholder(Op::kBeq, kRegV0, kRegZero);
        RETURN_IF_ERROR(GenStmt(*s.then_branch));
        if (s.else_branch != nullptr) {
          uint32_t skip_else = EmitJumpPlaceholder();
          RETURN_IF_ERROR(PatchBranch(skip_then, b_.TextSize(), s.line));
          RETURN_IF_ERROR(GenStmt(*s.else_branch));
          RETURN_IF_ERROR(PatchBranch(skip_else, b_.TextSize(), s.line));
        } else {
          RETURN_IF_ERROR(PatchBranch(skip_then, b_.TextSize(), s.line));
        }
        return OkStatus();
      }
      case StmtKind::kWhile: {
        uint32_t top = b_.TextSize();
        ASSIGN_OR_RETURN(TypeRef ct, GenExpr(*s.cond));
        (void)ct;
        uint32_t exit_branch = EmitBranchPlaceholder(Op::kBeq, kRegV0, kRegZero);
        loop_stack_.push_back(LoopContext{top, {}});
        RETURN_IF_ERROR(GenStmt(*s.body));
        uint32_t back = EmitJumpPlaceholder();
        RETURN_IF_ERROR(PatchBranch(back, top, s.line));
        RETURN_IF_ERROR(PatchBranch(exit_branch, b_.TextSize(), s.line));
        RETURN_IF_ERROR(PatchLoopBreaks(s.line));
        return OkStatus();
      }
      case StmtKind::kDoWhile: {
        uint32_t top = b_.TextSize();
        loop_stack_.push_back(LoopContext{0, {}, {}});  // continue -> the condition
        size_t loop_index = loop_stack_.size() - 1;
        RETURN_IF_ERROR(GenStmt(*s.body));
        loop_stack_[loop_index].continue_target = b_.TextSize();
        ASSIGN_OR_RETURN(TypeRef ct, GenExpr(*s.cond));
        (void)ct;
        uint32_t back = EmitBranchPlaceholder(Op::kBne, kRegV0, kRegZero);
        RETURN_IF_ERROR(PatchBranch(back, top, s.line));
        RETURN_IF_ERROR(PatchLoopBreaks(s.line));
        return OkStatus();
      }
      case StmtKind::kFor: {
        if (s.init != nullptr) {
          RETURN_IF_ERROR(GenStmt(*s.init));
        }
        uint32_t top = b_.TextSize();
        uint32_t exit_branch = 0;
        bool has_cond = s.cond != nullptr;
        if (has_cond) {
          ASSIGN_OR_RETURN(TypeRef ct, GenExpr(*s.cond));
          (void)ct;
          exit_branch = EmitBranchPlaceholder(Op::kBeq, kRegV0, kRegZero);
        }
        loop_stack_.push_back(LoopContext{0, {}});  // continue target patched below
        size_t loop_index = loop_stack_.size() - 1;
        RETURN_IF_ERROR(GenStmt(*s.body));
        uint32_t continue_target = b_.TextSize();
        loop_stack_[loop_index].continue_target = continue_target;
        if (s.inc != nullptr) {
          ASSIGN_OR_RETURN(TypeRef it, GenExpr(*s.inc));
          (void)it;
        }
        uint32_t back = EmitJumpPlaceholder();
        RETURN_IF_ERROR(PatchBranch(back, top, s.line));
        if (has_cond) {
          RETURN_IF_ERROR(PatchBranch(exit_branch, b_.TextSize(), s.line));
        }
        RETURN_IF_ERROR(PatchLoopBreaks(s.line));
        return OkStatus();
      }
      case StmtKind::kReturn: {
        if (s.expr != nullptr) {
          ASSIGN_OR_RETURN(TypeRef rt, GenExpr(*s.expr));
          (void)rt;
        }
        return_sites_.push_back(EmitJumpPlaceholder());
        return OkStatus();
      }
      case StmtKind::kBreak: {
        if (loop_stack_.empty()) {
          return Error(s.line, "break outside a loop");
        }
        loop_stack_.back().break_sites.push_back(EmitJumpPlaceholder());
        return OkStatus();
      }
      case StmtKind::kContinue: {
        if (loop_stack_.empty()) {
          return Error(s.line, "continue outside a loop");
        }
        // While loops know their target now; for loops patch via pending list.
        LoopContext& loop = loop_stack_.back();
        if (loop.continue_target != 0) {
          uint32_t site = EmitJumpPlaceholder();
          RETURN_IF_ERROR(PatchBranch(site, loop.continue_target, s.line));
        } else {
          loop.continue_sites.push_back(EmitJumpPlaceholder());
        }
        return OkStatus();
      }
    }
    return Error(s.line, "unsupported statement");
  }

  Status PatchLoopBreaks(int line) {
    LoopContext loop = std::move(loop_stack_.back());
    loop_stack_.pop_back();
    for (uint32_t site : loop.break_sites) {
      RETURN_IF_ERROR(PatchBranch(site, b_.TextSize(), line));
    }
    for (uint32_t site : loop.continue_sites) {
      RETURN_IF_ERROR(PatchBranch(site, loop.continue_target, line));
    }
    return OkStatus();
  }

  // ===== Functions =====

  Status EmitFunction(const FuncDecl& fn) {
    uint32_t entry = b_.TextSize();
    RETURN_IF_ERROR(b_.DefineSymbol(fn.name, SectionKind::kText, entry, /*is_function=*/true,
                                    fn.is_static ? SymBinding::kLocal : SymBinding::kGlobal));
    frame_size_ = 0;
    max_frame_size_ = 0;
    return_sites_.clear();
    loop_stack_.clear();
    scopes_.clear();
    PushScope();
    for (size_t i = 0; i < fn.params.size(); ++i) {
      LocalVar var;
      var.type = fn.params[i].type;
      if (var.type->IsArray()) {
        var.type = MakePtr(var.type->elem);  // arrays decay in parameters
      }
      var.fp_offset = 8 + static_cast<int32_t>(4 * i);
      scopes_.back()[fn.params[i].name] = var;
    }
    // Prologue.
    Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, static_cast<uint16_t>(-8)));
    Emit(EncodeI(Op::kSw, kRegRa, kRegSp, 4));
    Emit(EncodeI(Op::kSw, kRegFp, kRegSp, 0));
    EmitMove(kRegFp, kRegSp);
    uint32_t frame_adjust_site = b_.TextSize();
    Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, 0));  // patched with -frame below

    RETURN_IF_ERROR(GenStmt(*fn.body));

    // Fall off the end: return 0.
    EmitLoadImm(kRegV0, 0);
    uint32_t epilogue = b_.TextSize();
    for (uint32_t site : return_sites_) {
      RETURN_IF_ERROR(PatchBranch(site, epilogue, fn.line));
    }
    EmitMove(kRegSp, kRegFp);
    Emit(EncodeI(Op::kLw, kRegFp, kRegSp, 0));
    Emit(EncodeI(Op::kLw, kRegRa, kRegSp, 4));
    Emit(EncodeI(Op::kAddi, kRegSp, kRegSp, 8));
    Emit(EncodeJr(kRegRa));

    uint32_t frame = (max_frame_size_ + 7) & ~7u;
    if (frame > 32000) {
      return Error(fn.line, "stack frame too large");
    }
    b_.PatchText(frame_adjust_site,
                 EncodeI(Op::kAddi, kRegSp, kRegSp, static_cast<uint16_t>(-static_cast<int32_t>(frame))));
    PopScope();
    return OkStatus();
  }

  struct LoopContext {
    uint32_t continue_target = 0;  // 0 = not yet known (for loops)
    std::vector<uint32_t> break_sites;
    std::vector<uint32_t> continue_sites;
  };

  const Program& program_;
  ObjectBuilder b_;
  std::map<std::string, GlobalInfo> globals_;
  std::map<std::string, std::string> string_labels_;
  std::vector<std::map<std::string, LocalVar>> scopes_;
  uint32_t frame_size_ = 0;
  uint32_t max_frame_size_ = 0;
  std::vector<uint32_t> return_sites_;
  std::vector<LoopContext> loop_stack_;
};

}  // namespace

Result<ObjectFile> GenerateCode(const Program& program, const std::string& module_name) {
  return CodeGen(program, module_name).Run();
}

}  // namespace hemlock
