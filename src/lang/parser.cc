#include "src/lang/parser.h"

#include "src/base/strings.h"
#include "src/lang/lexer.h"

namespace hemlock {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(const std::vector<Token>& tokens) : toks_(tokens) {}

  Result<std::unique_ptr<Program>> Run() {
    auto program = std::make_unique<Program>();
    program_ = program.get();
    while (!Check(Tok::kEof)) {
      RETURN_IF_ERROR(ParseTopLevel());
    }
    return program;
  }

 private:
  const Token& Peek() const { return toks_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool Check(Tok kind) const { return Peek().kind == kind; }
  bool Match(Tok kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return InvalidArgument(
        StrFormat("parse error at %d:%d: %s (found '%s')", Peek().line, Peek().col, msg.c_str(),
                  Peek().kind == Tok::kIdent ? Peek().text.c_str() : TokName(Peek().kind)));
  }

  Status Expect(Tok kind, const std::string& what) {
    if (!Match(kind)) {
      return Error("expected " + what);
    }
    return OkStatus();
  }

  bool AtTypeStart() const {
    return Check(Tok::kKwInt) || Check(Tok::kKwChar) || Check(Tok::kKwVoid) ||
           (Check(Tok::kKwStruct) && PeekAhead(1).kind == Tok::kIdent &&
            PeekAhead(2).kind != Tok::kLBrace);
  }

  // --- Types ---

  Result<TypeRef> ParseBaseType() {
    if (Match(Tok::kKwInt)) {
      return MakeInt();
    }
    if (Match(Tok::kKwChar)) {
      return MakeChar();
    }
    if (Match(Tok::kKwVoid)) {
      return MakeVoid();
    }
    if (Match(Tok::kKwStruct)) {
      if (!Check(Tok::kIdent)) {
        return Error("expected struct name");
      }
      std::string name = Advance().text;
      auto it = program_->structs.find(name);
      if (it == program_->structs.end()) {
        return Error("unknown struct '" + name + "'");
      }
      return MakeStruct(it->second);
    }
    return Error("expected a type");
  }

  Result<TypeRef> ParseType() {
    ASSIGN_OR_RETURN(TypeRef type, ParseBaseType());
    while (Match(Tok::kStar)) {
      type = MakePtr(type);
    }
    return type;
  }

  // Wraps |base| in an array type if a '[N]' suffix follows the declarator name.
  Result<TypeRef> MaybeArraySuffix(TypeRef base) {
    if (Match(Tok::kLBracket)) {
      if (!Check(Tok::kNumber)) {
        return Error("expected array length");
      }
      int32_t len = Advance().number;
      if (len <= 0) {
        return Error("array length must be positive");
      }
      RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
      // Multidimensional arrays: inner dimensions nest.
      ASSIGN_OR_RETURN(TypeRef inner, MaybeArraySuffix(std::move(base)));
      return MakeArray(std::move(inner), static_cast<uint32_t>(len));
    }
    return base;
  }

  // --- Top level ---

  Status ParseTopLevel() {
    if (Check(Tok::kKwStruct) && PeekAhead(1).kind == Tok::kIdent &&
        PeekAhead(2).kind == Tok::kLBrace) {
      return ParseStructDef();
    }
    bool is_extern = Match(Tok::kKwExtern);
    bool is_static = !is_extern && Match(Tok::kKwStatic);
    ASSIGN_OR_RETURN(TypeRef type, ParseType());
    if (!Check(Tok::kIdent)) {
      return Error("expected declarator name");
    }
    int line = Peek().line;
    std::string name = Advance().text;
    if (Check(Tok::kLParen)) {
      return ParseFunction(std::move(type), std::move(name), is_static, is_extern, line);
    }
    return ParseGlobalVar(std::move(type), std::move(name), is_static, is_extern, line);
  }

  Status ParseStructDef() {
    Advance();  // struct
    std::string name = Advance().text;
    if (program_->structs.count(name) != 0) {
      return Error("duplicate struct '" + name + "'");
    }
    auto sdef = std::make_shared<StructDef>();
    sdef->name = name;
    // Register before parsing the body so self-referential pointers resolve
    // (struct node { struct node* next; }).
    program_->structs[name] = sdef;
    RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
    uint32_t offset = 0;
    uint32_t max_align = 1;
    while (!Check(Tok::kRBrace)) {
      ASSIGN_OR_RETURN(TypeRef ftype, ParseType());
      if (!Check(Tok::kIdent)) {
        return Error("expected field name");
      }
      std::string fname = Advance().text;
      ASSIGN_OR_RETURN(ftype, MaybeArraySuffix(std::move(ftype)));
      if (ftype->IsStruct() && ftype->sdef.get() == sdef.get()) {
        return Error("struct '" + name + "' contains itself");
      }
      if (TypeSize(*ftype) == 0) {
        return Error("field '" + fname + "' has incomplete type");
      }
      if (sdef->FindField(fname) != nullptr) {
        return Error("duplicate field '" + fname + "'");
      }
      uint32_t align = TypeAlign(*ftype);
      offset = (offset + align - 1) & ~(align - 1);
      sdef->fields.push_back(StructField{fname, ftype, offset});
      offset += TypeSize(*ftype);
      max_align = std::max(max_align, align);
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
    }
    Advance();  // }
    RETURN_IF_ERROR(Expect(Tok::kSemi, "';' after struct definition"));
    sdef->align = max_align;
    sdef->size = (offset + max_align - 1) & ~(max_align - 1);
    if (sdef->size == 0) {
      sdef->size = max_align;  // empty structs still occupy space
    }
    return OkStatus();
  }

  Status ParseFunction(TypeRef ret, std::string name, bool is_static, bool is_extern, int line) {
    FuncDecl fn;
    fn.name = std::move(name);
    fn.ret = std::move(ret);
    fn.is_static = is_static;
    fn.line = line;
    RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
    if (Check(Tok::kKwVoid) && PeekAhead(1).kind == Tok::kRParen) {
      Advance();
    }
    while (!Check(Tok::kRParen)) {
      ASSIGN_OR_RETURN(TypeRef ptype, ParseType());
      if (!Check(Tok::kIdent)) {
        return Error("expected parameter name");
      }
      std::string pname = Advance().text;
      if (Match(Tok::kLBracket)) {
        // Array parameters decay to pointers.
        Match(Tok::kNumber);
        RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
        ptype = MakePtr(std::move(ptype));
      }
      fn.params.push_back(Param{std::move(pname), std::move(ptype)});
      if (!Check(Tok::kRParen)) {
        RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
      }
    }
    Advance();  // )
    if (Match(Tok::kSemi)) {
      fn.is_extern = true;
      program_->functions.push_back(std::move(fn));
      return OkStatus();
    }
    fn.is_extern = is_extern;
    if (is_extern) {
      return Error("extern function cannot have a body");
    }
    ASSIGN_OR_RETURN(fn.body, ParseBlock());
    program_->functions.push_back(std::move(fn));
    return OkStatus();
  }

  Status ParseGlobalVar(TypeRef type, std::string first_name, bool is_static, bool is_extern,
                        int line) {
    std::string name = std::move(first_name);
    while (true) {
      GlobalVar var;
      var.name = name;
      var.is_static = is_static;
      var.is_extern = is_extern;
      var.line = line;
      ASSIGN_OR_RETURN(var.type, MaybeArraySuffix(type));
      if (Match(Tok::kAssign)) {
        if (is_extern) {
          return Error("extern variable cannot have an initializer");
        }
        var.has_init = true;
        if (Match(Tok::kLBrace)) {
          while (!Check(Tok::kRBrace)) {
            GlobalInit item;
            ASSIGN_OR_RETURN(item.expr, ParseAssignment());
            var.inits.push_back(std::move(item));
            if (!Check(Tok::kRBrace)) {
              RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
            }
          }
          Advance();  // }
        } else {
          GlobalInit item;
          ASSIGN_OR_RETURN(item.expr, ParseAssignment());
          var.inits.push_back(std::move(item));
        }
      }
      program_->globals.push_back(std::move(var));
      if (Match(Tok::kComma)) {
        if (!Check(Tok::kIdent)) {
          return Error("expected declarator name");
        }
        name = Advance().text;
        continue;
      }
      break;
    }
    return Expect(Tok::kSemi, "';'");
  }

  // --- Statements ---

  Result<std::unique_ptr<Stmt>> ParseBlock() {
    RETURN_IF_ERROR(Expect(Tok::kLBrace, "'{'"));
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    while (!Check(Tok::kRBrace)) {
      if (Check(Tok::kEof)) {
        return Error("unterminated block");
      }
      ASSIGN_OR_RETURN(std::unique_ptr<Stmt> stmt, ParseStmt());
      block->block.push_back(std::move(stmt));
    }
    Advance();  // }
    return block;
  }

  Result<std::unique_ptr<Stmt>> ParseStmt() {
    int line = Peek().line;
    if (Check(Tok::kLBrace)) {
      return ParseBlock();
    }
    if (Match(Tok::kSemi)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kEmpty;
      s->line = line;
      return s;
    }
    if (AtTypeStart()) {
      ASSIGN_OR_RETURN(TypeRef type, ParseType());
      if (!Check(Tok::kIdent)) {
        return Error("expected variable name");
      }
      std::string name = Advance().text;
      ASSIGN_OR_RETURN(type, MaybeArraySuffix(std::move(type)));
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kVarDecl;
      s->line = line;
      s->decl_type = std::move(type);
      s->decl_name = std::move(name);
      if (Match(Tok::kAssign)) {
        ASSIGN_OR_RETURN(s->expr, ParseAssignment());
      }
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      return s;
    }
    if (Match(Tok::kKwIf)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kIf;
      s->line = line;
      RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      ASSIGN_OR_RETURN(s->cond, ParseExpr());
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      ASSIGN_OR_RETURN(s->then_branch, ParseStmt());
      if (Match(Tok::kKwElse)) {
        ASSIGN_OR_RETURN(s->else_branch, ParseStmt());
      }
      return s;
    }
    if (Match(Tok::kKwWhile)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kWhile;
      s->line = line;
      RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      ASSIGN_OR_RETURN(s->cond, ParseExpr());
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      ASSIGN_OR_RETURN(s->body, ParseStmt());
      return s;
    }
    if (Match(Tok::kKwDo)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kDoWhile;
      s->line = line;
      ASSIGN_OR_RETURN(s->body, ParseStmt());
      RETURN_IF_ERROR(Expect(Tok::kKwWhile, "'while' after do-body"));
      RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      ASSIGN_OR_RETURN(s->cond, ParseExpr());
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      return s;
    }
    if (Match(Tok::kKwFor)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kFor;
      s->line = line;
      RETURN_IF_ERROR(Expect(Tok::kLParen, "'('"));
      if (!Check(Tok::kSemi)) {
        if (AtTypeStart()) {
          return Error("declarations in for-init are not supported");
        }
        auto init = std::make_unique<Stmt>();
        init->kind = StmtKind::kExpr;
        init->line = Peek().line;
        ASSIGN_OR_RETURN(init->expr, ParseExpr());
        s->init = std::move(init);
      }
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      if (!Check(Tok::kSemi)) {
        ASSIGN_OR_RETURN(s->cond, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      if (!Check(Tok::kRParen)) {
        ASSIGN_OR_RETURN(s->inc, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      ASSIGN_OR_RETURN(s->body, ParseStmt());
      return s;
    }
    if (Match(Tok::kKwReturn)) {
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kReturn;
      s->line = line;
      if (!Check(Tok::kSemi)) {
        ASSIGN_OR_RETURN(s->expr, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      return s;
    }
    if (Match(Tok::kKwBreak)) {
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kBreak;
      s->line = line;
      return s;
    }
    if (Match(Tok::kKwContinue)) {
      RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
      auto s = std::make_unique<Stmt>();
      s->kind = StmtKind::kContinue;
      s->line = line;
      return s;
    }
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExpr;
    s->line = line;
    ASSIGN_OR_RETURN(s->expr, ParseExpr());
    RETURN_IF_ERROR(Expect(Tok::kSemi, "';'"));
    return s;
  }

  // --- Expressions (precedence climbing) ---

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseAssignment(); }

  Result<std::unique_ptr<Expr>> ParseAssignment() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseConditional());
    if (Check(Tok::kAssign) || Check(Tok::kPlusAssign) || Check(Tok::kMinusAssign)) {
      Tok op = Advance().kind;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kAssign;
      e->line = lhs->line;
      e->op = op;
      e->lhs = std::move(lhs);
      ASSIGN_OR_RETURN(e->rhs, ParseAssignment());
      return e;
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseConditional() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> cond, ParseBinary(0));
    if (!Match(Tok::kQuestion)) {
      return cond;
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCond;
    e->line = cond->line;
    e->lhs = std::move(cond);
    ASSIGN_OR_RETURN(e->rhs, ParseAssignment());
    RETURN_IF_ERROR(Expect(Tok::kColon, "':'"));
    ASSIGN_OR_RETURN(e->third, ParseConditional());
    return e;
  }

  static int BinaryPrec(Tok op) {
    switch (op) {
      case Tok::kPipePipe:
        return 1;
      case Tok::kAmpAmp:
        return 2;
      case Tok::kPipe:
        return 3;
      case Tok::kCaret:
        return 4;
      case Tok::kAmp:
        return 5;
      case Tok::kEqEq:
      case Tok::kNotEq:
        return 6;
      case Tok::kLt:
      case Tok::kGt:
      case Tok::kLe:
      case Tok::kGe:
        return 7;
      case Tok::kShl:
      case Tok::kShr:
        return 8;
      case Tok::kPlus:
      case Tok::kMinus:
        return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent:
        return 10;
      default:
        return -1;
    }
  }

  Result<std::unique_ptr<Expr>> ParseBinary(int min_prec) {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseUnary());
    while (true) {
      int prec = BinaryPrec(Peek().kind);
      if (prec < 0 || prec < min_prec) {
        return lhs;
      }
      Tok op = Advance().kind;
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseBinary(prec + 1));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->line = lhs->line;
      e->op = op;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    int line = Peek().line;
    if (Check(Tok::kMinus) || Check(Tok::kBang) || Check(Tok::kTilde)) {
      Tok op = Advance().kind;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->line = line;
      e->op = op;
      ASSIGN_OR_RETURN(e->lhs, ParseUnary());
      return e;
    }
    if (Match(Tok::kStar)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kDeref;
      e->line = line;
      ASSIGN_OR_RETURN(e->lhs, ParseUnary());
      return e;
    }
    if (Match(Tok::kAmp)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kAddrOf;
      e->line = line;
      ASSIGN_OR_RETURN(e->lhs, ParseUnary());
      return e;
    }
    if (Check(Tok::kPlusPlus) || Check(Tok::kMinusMinus)) {
      Tok op = Advance().kind;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kPreIncDec;
      e->line = line;
      e->op = op;
      ASSIGN_OR_RETURN(e->lhs, ParseUnary());
      return e;
    }
    if (Match(Tok::kKwSizeof)) {
      RETURN_IF_ERROR(Expect(Tok::kLParen, "'(' after sizeof"));
      auto e = std::make_unique<Expr>();
      e->line = line;
      if (AtTypeStart()) {
        e->kind = ExprKind::kSizeofType;
        ASSIGN_OR_RETURN(e->sizeof_type, ParseType());
      } else {
        e->kind = ExprKind::kSizeofExpr;
        ASSIGN_OR_RETURN(e->lhs, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return e;
    }
    return ParsePostfix();
  }

  Result<std::unique_ptr<Expr>> ParsePostfix() {
    ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParsePrimary());
    while (true) {
      int line = Peek().line;
      if (Match(Tok::kLParen)) {
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = line;
        call->lhs = std::move(e);
        while (!Check(Tok::kRParen)) {
          ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg, ParseAssignment());
          call->args.push_back(std::move(arg));
          if (!Check(Tok::kRParen)) {
            RETURN_IF_ERROR(Expect(Tok::kComma, "','"));
          }
        }
        Advance();  // )
        e = std::move(call);
      } else if (Match(Tok::kLBracket)) {
        auto idx = std::make_unique<Expr>();
        idx->kind = ExprKind::kIndex;
        idx->line = line;
        idx->lhs = std::move(e);
        ASSIGN_OR_RETURN(idx->rhs, ParseExpr());
        RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
        e = std::move(idx);
      } else if (Check(Tok::kDot) || Check(Tok::kArrow)) {
        bool arrow = Advance().kind == Tok::kArrow;
        if (!Check(Tok::kIdent)) {
          return Error("expected member name");
        }
        auto mem = std::make_unique<Expr>();
        mem->kind = ExprKind::kMember;
        mem->line = line;
        mem->arrow = arrow;
        mem->text = Advance().text;
        mem->lhs = std::move(e);
        e = std::move(mem);
      } else if (Check(Tok::kPlusPlus) || Check(Tok::kMinusMinus)) {
        Tok op = Advance().kind;
        auto inc = std::make_unique<Expr>();
        inc->kind = ExprKind::kPostIncDec;
        inc->line = line;
        inc->op = op;
        inc->lhs = std::move(e);
        e = std::move(inc);
      } else {
        return e;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    int line = Peek().line;
    if (Check(Tok::kNumber) || Check(Tok::kCharLit)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNumber;
      e->line = line;
      e->number = Advance().number;
      return e;
    }
    if (Check(Tok::kString)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kString;
      e->line = line;
      e->text = Advance().text;
      return e;
    }
    if (Check(Tok::kIdent)) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIdent;
      e->line = line;
      e->text = Advance().text;
      return e;
    }
    if (Match(Tok::kLParen)) {
      ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
      RETURN_IF_ERROR(Expect(Tok::kRParen, "')'"));
      return e;
    }
    return Error("expected an expression");
  }

  const std::vector<Token>& toks_;
  size_t pos_ = 0;
  Program* program_ = nullptr;
};

}  // namespace

Result<std::unique_ptr<Program>> Parse(const std::vector<Token>& tokens) {
  return ParserImpl(tokens).Run();
}

Result<std::unique_ptr<Program>> ParseSource(const std::string& source) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parse(tokens);
}

}  // namespace hemlock
