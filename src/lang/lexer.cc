#include "src/lang/lexer.h"

#include <cctype>
#include <map>

#include "src/base/strings.h"

namespace hemlock {

const char* TokName(Tok kind) {
  switch (kind) {
    case Tok::kEof:
      return "<eof>";
    case Tok::kIdent:
      return "identifier";
    case Tok::kNumber:
      return "number";
    case Tok::kString:
      return "string";
    case Tok::kCharLit:
      return "char literal";
    case Tok::kKwInt:
      return "int";
    case Tok::kKwChar:
      return "char";
    case Tok::kKwVoid:
      return "void";
    case Tok::kKwStruct:
      return "struct";
    case Tok::kKwIf:
      return "if";
    case Tok::kKwElse:
      return "else";
    case Tok::kKwWhile:
      return "while";
    case Tok::kKwFor:
      return "for";
    case Tok::kKwReturn:
      return "return";
    case Tok::kKwBreak:
      return "break";
    case Tok::kKwContinue:
      return "continue";
    case Tok::kKwExtern:
      return "extern";
    case Tok::kKwStatic:
      return "static";
    case Tok::kKwSizeof:
      return "sizeof";
    case Tok::kKwDo:
      return "do";
    case Tok::kLParen:
      return "(";
    case Tok::kRParen:
      return ")";
    case Tok::kLBrace:
      return "{";
    case Tok::kRBrace:
      return "}";
    case Tok::kLBracket:
      return "[";
    case Tok::kRBracket:
      return "]";
    case Tok::kSemi:
      return ";";
    case Tok::kComma:
      return ",";
    case Tok::kAssign:
      return "=";
    case Tok::kPlus:
      return "+";
    case Tok::kMinus:
      return "-";
    case Tok::kStar:
      return "*";
    case Tok::kSlash:
      return "/";
    case Tok::kPercent:
      return "%";
    case Tok::kAmp:
      return "&";
    case Tok::kPipe:
      return "|";
    case Tok::kCaret:
      return "^";
    case Tok::kTilde:
      return "~";
    case Tok::kBang:
      return "!";
    case Tok::kLt:
      return "<";
    case Tok::kGt:
      return ">";
    case Tok::kLe:
      return "<=";
    case Tok::kGe:
      return ">=";
    case Tok::kEqEq:
      return "==";
    case Tok::kNotEq:
      return "!=";
    case Tok::kAmpAmp:
      return "&&";
    case Tok::kPipePipe:
      return "||";
    case Tok::kShl:
      return "<<";
    case Tok::kShr:
      return ">>";
    case Tok::kDot:
      return ".";
    case Tok::kArrow:
      return "->";
    case Tok::kPlusAssign:
      return "+=";
    case Tok::kMinusAssign:
      return "-=";
    case Tok::kPlusPlus:
      return "++";
    case Tok::kMinusMinus:
      return "--";
    case Tok::kQuestion:
      return "?";
    case Tok::kColon:
      return ":";
  }
  return "?";
}

namespace {

const std::map<std::string, Tok>& Keywords() {
  static const std::map<std::string, Tok> kKeywords = {
      {"int", Tok::kKwInt},       {"char", Tok::kKwChar},         {"void", Tok::kKwVoid},
      {"struct", Tok::kKwStruct}, {"if", Tok::kKwIf},             {"else", Tok::kKwElse},
      {"while", Tok::kKwWhile},   {"for", Tok::kKwFor},           {"return", Tok::kKwReturn},
      {"break", Tok::kKwBreak},   {"continue", Tok::kKwContinue}, {"extern", Tok::kKwExtern},
      {"static", Tok::kKwStatic}, {"sizeof", Tok::kKwSizeof},
      {"do", Tok::kKwDo},
  };
  return kKeywords;
}

class LexerImpl {
 public:
  explicit LexerImpl(const std::string& source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      RETURN_IF_ERROR(SkipWhitespaceAndComments());
      Token tok;
      tok.line = line_;
      tok.col = col_;
      if (AtEnd()) {
        tok.kind = Tok::kEof;
        out.push_back(tok);
        return out;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string ident;
        while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
          ident.push_back(Advance());
        }
        auto it = Keywords().find(ident);
        if (it != Keywords().end()) {
          tok.kind = it->second;
        } else {
          tok.kind = Tok::kIdent;
          tok.text = ident;
        }
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        RETURN_IF_ERROR(LexNumber(&tok));
      } else if (c == '"') {
        RETURN_IF_ERROR(LexString(&tok));
      } else if (c == '\'') {
        RETURN_IF_ERROR(LexCharLit(&tok));
      } else {
        RETURN_IF_ERROR(LexPunct(&tok));
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek() const { return src_[pos_]; }
  char PeekNext() const { return pos_ + 1 < src_.size() ? src_[pos_ + 1] : '\0'; }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }
  bool Match(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return InvalidArgument(StrFormat("lex error at %d:%d: %s", line_, col_, msg.c_str()));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && PeekNext() == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '/' && PeekNext() == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && PeekNext() == '/')) {
          Advance();
        }
        if (AtEnd()) {
          return Error("unterminated block comment");
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return OkStatus();
  }

  Status LexNumber(Token* tok) {
    tok->kind = Tok::kNumber;
    int64_t value = 0;
    if (Peek() == '0' && (PeekNext() == 'x' || PeekNext() == 'X')) {
      Advance();
      Advance();
      if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
        return Error("malformed hex literal");
      }
      while (!AtEnd() && std::isxdigit(static_cast<unsigned char>(Peek()))) {
        char c = Advance();
        int digit = std::isdigit(static_cast<unsigned char>(c))
                        ? c - '0'
                        : std::tolower(static_cast<unsigned char>(c)) - 'a' + 10;
        value = value * 16 + digit;
        if (value > 0xFFFFFFFFLL) {
          return Error("hex literal too large");
        }
      }
    } else {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        value = value * 10 + (Advance() - '0');
        if (value > 0xFFFFFFFFLL) {
          return Error("decimal literal too large");
        }
      }
    }
    tok->number = static_cast<int32_t>(static_cast<uint32_t>(value));
    return OkStatus();
  }

  Result<char> LexEscape() {
    char c = Advance();
    switch (c) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case 'r':
        return '\r';
      case '0':
        return '\0';
      case '\\':
        return '\\';
      case '\'':
        return '\'';
      case '"':
        return '"';
      default:
        return Error(StrFormat("unknown escape '\\%c'", c));
    }
  }

  Status LexString(Token* tok) {
    tok->kind = Tok::kString;
    Advance();  // opening quote
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) {
          return Error("unterminated string");
        }
        ASSIGN_OR_RETURN(c, LexEscape());
      }
      tok->text.push_back(c);
    }
    if (AtEnd()) {
      return Error("unterminated string");
    }
    Advance();  // closing quote
    return OkStatus();
  }

  Status LexCharLit(Token* tok) {
    tok->kind = Tok::kCharLit;
    Advance();  // opening quote
    if (AtEnd()) {
      return Error("unterminated char literal");
    }
    char c = Advance();
    if (c == '\\') {
      if (AtEnd()) {
        return Error("unterminated char literal");
      }
      ASSIGN_OR_RETURN(c, LexEscape());
    }
    tok->number = static_cast<int32_t>(c);
    if (AtEnd() || Advance() != '\'') {
      return Error("unterminated char literal");
    }
    return OkStatus();
  }

  Status LexPunct(Token* tok) {
    char c = Advance();
    switch (c) {
      case '(':
        tok->kind = Tok::kLParen;
        return OkStatus();
      case ')':
        tok->kind = Tok::kRParen;
        return OkStatus();
      case '{':
        tok->kind = Tok::kLBrace;
        return OkStatus();
      case '}':
        tok->kind = Tok::kRBrace;
        return OkStatus();
      case '[':
        tok->kind = Tok::kLBracket;
        return OkStatus();
      case ']':
        tok->kind = Tok::kRBracket;
        return OkStatus();
      case ';':
        tok->kind = Tok::kSemi;
        return OkStatus();
      case ',':
        tok->kind = Tok::kComma;
        return OkStatus();
      case '~':
        tok->kind = Tok::kTilde;
        return OkStatus();
      case '^':
        tok->kind = Tok::kCaret;
        return OkStatus();
      case '.':
        tok->kind = Tok::kDot;
        return OkStatus();
      case '?':
        tok->kind = Tok::kQuestion;
        return OkStatus();
      case ':':
        tok->kind = Tok::kColon;
        return OkStatus();
      case '+':
        tok->kind = Match('=') ? Tok::kPlusAssign : (Match('+') ? Tok::kPlusPlus : Tok::kPlus);
        return OkStatus();
      case '-':
        tok->kind = Match('=')   ? Tok::kMinusAssign
                    : Match('-') ? Tok::kMinusMinus
                    : Match('>') ? Tok::kArrow
                                 : Tok::kMinus;
        return OkStatus();
      case '*':
        tok->kind = Tok::kStar;
        return OkStatus();
      case '/':
        tok->kind = Tok::kSlash;
        return OkStatus();
      case '%':
        tok->kind = Tok::kPercent;
        return OkStatus();
      case '&':
        tok->kind = Match('&') ? Tok::kAmpAmp : Tok::kAmp;
        return OkStatus();
      case '|':
        tok->kind = Match('|') ? Tok::kPipePipe : Tok::kPipe;
        return OkStatus();
      case '!':
        tok->kind = Match('=') ? Tok::kNotEq : Tok::kBang;
        return OkStatus();
      case '=':
        tok->kind = Match('=') ? Tok::kEqEq : Tok::kAssign;
        return OkStatus();
      case '<':
        tok->kind = Match('=') ? Tok::kLe : (Match('<') ? Tok::kShl : Tok::kLt);
        return OkStatus();
      case '>':
        tok->kind = Match('=') ? Tok::kGe : (Match('>') ? Tok::kShr : Tok::kGt);
        return OkStatus();
      default:
        return Error(StrFormat("unexpected character '%c'", c));
    }
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(const std::string& source) { return LexerImpl(source).Run(); }

}  // namespace hemlock
