// HemC code generation: AST -> HRISC instructions in a HOF template.
//
// Code model (chosen to match the paper's constraints):
//   * every global access materializes a full 32-bit address with a LUI/ORI pair,
//     relocated via HI16/LO16 — the R3000 gp-relative short form is never used
//     ("ldl insists that modules be compiled with a flag that disables use of the
//     processor's ... global pointer register", §3);
//   * direct calls emit JAL with a JUMP26 relocation; when the static linker finds the
//     target outside the 256 MB region it interposes a trampoline;
//   * arguments are passed on the stack (pushed last-first); return value in $v0;
//   * $fp-relative frames; $sp doubles as the expression temporary stack.
#ifndef SRC_LANG_CODEGEN_H_
#define SRC_LANG_CODEGEN_H_

#include <string>

#include "src/base/status.h"
#include "src/lang/ast.h"
#include "src/obj/object_file.h"

namespace hemlock {

// Generates a relocatable object module from a parsed program.
Result<ObjectFile> GenerateCode(const Program& program, const std::string& module_name);

}  // namespace hemlock

#endif  // SRC_LANG_CODEGEN_H_
