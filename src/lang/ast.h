// HemC abstract syntax: types, expressions, statements, declarations.
//
// HemC is deliberately a C subset — the paper's point is that objects to be shared are
// "declared in a separate .h file and defined in a separate .c file" and look like
// ordinary external objects; the compiler needs no knowledge of sharing at all.
#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/token.h"

namespace hemlock {

struct StructDef;

struct Type {
  enum class K : uint8_t { kVoid, kInt, kChar, kPtr, kArray, kStruct };
  K kind = K::kInt;
  std::shared_ptr<Type> elem;  // kPtr / kArray element
  uint32_t array_len = 0;      // kArray
  std::shared_ptr<StructDef> sdef;  // kStruct

  bool IsInteger() const { return kind == K::kInt || kind == K::kChar; }
  bool IsPointer() const { return kind == K::kPtr; }
  bool IsArray() const { return kind == K::kArray; }
  bool IsStruct() const { return kind == K::kStruct; }
  bool IsVoid() const { return kind == K::kVoid; }
};

using TypeRef = std::shared_ptr<Type>;

struct StructField {
  std::string name;
  TypeRef type;
  uint32_t offset = 0;
};

struct StructDef {
  std::string name;
  std::vector<StructField> fields;
  uint32_t size = 0;
  uint32_t align = 1;

  const StructField* FindField(const std::string& field_name) const {
    for (const StructField& f : fields) {
      if (f.name == field_name) {
        return &f;
      }
    }
    return nullptr;
  }
};

TypeRef MakeInt();
TypeRef MakeChar();
TypeRef MakeVoid();
TypeRef MakePtr(TypeRef elem);
TypeRef MakeArray(TypeRef elem, uint32_t len);
TypeRef MakeStruct(std::shared_ptr<StructDef> sdef);

uint32_t TypeSize(const Type& type);
uint32_t TypeAlign(const Type& type);
std::string TypeToString(const Type& type);

enum class ExprKind : uint8_t {
  kNumber,
  kString,
  kIdent,
  kUnary,      // op in {-, !, ~}
  kBinary,     // arithmetic / comparison / logical (&& || short-circuit)
  kAssign,     // =, +=, -=
  kCall,       // lhs is the callee expression (ident or pointer-valued)
  kIndex,      // lhs[rhs]
  kMember,     // lhs.text or lhs->text (arrow flag)
  kDeref,      // *lhs
  kAddrOf,     // &lhs
  kSizeofType,
  kSizeofExpr,
  kPreIncDec,  // ++x / --x (op distinguishes)
  kPostIncDec,
  kCond,       // lhs ? rhs : third
};

struct Expr {
  ExprKind kind = ExprKind::kNumber;
  int line = 0;
  Tok op = Tok::kEof;
  int32_t number = 0;
  std::string text;  // identifier, string contents, or member name
  bool arrow = false;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  std::unique_ptr<Expr> third;  // kCond else-branch
  std::vector<std::unique_ptr<Expr>> args;
  TypeRef sizeof_type;
};

enum class StmtKind : uint8_t {
  kExpr,
  kVarDecl,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kReturn,
  kBreak,
  kContinue,
  kBlock,
  kEmpty,
};

struct Stmt {
  StmtKind kind = StmtKind::kEmpty;
  int line = 0;
  std::unique_ptr<Expr> expr;  // kExpr payload / kReturn value / kVarDecl initializer
  std::unique_ptr<Expr> cond;
  std::unique_ptr<Expr> inc;            // for-increment
  std::unique_ptr<Stmt> init;           // for-init
  std::unique_ptr<Stmt> then_branch;
  std::unique_ptr<Stmt> else_branch;
  std::unique_ptr<Stmt> body;
  std::vector<std::unique_ptr<Stmt>> block;
  TypeRef decl_type;
  std::string decl_name;
};

// A global initializer item, const-folded by the code generator. Symbol items become
// WORD32 relocations — this is how pointer-rich tables (the paper's parser-table and
// xfig workloads) are built at compile time.
struct GlobalInit {
  std::unique_ptr<Expr> expr;
};

struct GlobalVar {
  std::string name;
  TypeRef type;
  bool is_static = false;  // local binding
  bool is_extern = false;  // declaration only
  bool has_init = false;
  std::vector<GlobalInit> inits;  // one item, or array/struct element list
  int line = 0;
};

struct Param {
  std::string name;
  TypeRef type;
};

struct FuncDecl {
  std::string name;
  TypeRef ret;
  std::vector<Param> params;
  bool is_static = false;
  bool is_extern = false;  // prototype only
  std::unique_ptr<Stmt> body;
  int line = 0;
};

struct Program {
  std::map<std::string, std::shared_ptr<StructDef>> structs;
  std::vector<GlobalVar> globals;
  std::vector<FuncDecl> functions;
};

}  // namespace hemlock

#endif  // SRC_LANG_AST_H_
