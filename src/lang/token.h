// Token definitions for HemC, the small C-like language whose compiler produces the
// HOF templates consumed by the Hemlock linkers.
#ifndef SRC_LANG_TOKEN_H_
#define SRC_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace hemlock {

enum class Tok : uint8_t {
  kEof,
  kIdent,
  kNumber,
  kString,
  kCharLit,
  // Keywords.
  kKwInt,
  kKwChar,
  kKwVoid,
  kKwStruct,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwExtern,
  kKwStatic,
  kKwSizeof,
  kKwDo,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemi,
  kComma,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kBang,
  kLt,
  kGt,
  kLe,
  kGe,
  kEqEq,
  kNotEq,
  kAmpAmp,
  kPipePipe,
  kShl,
  kShr,
  kDot,
  kArrow,
  kPlusAssign,
  kMinusAssign,
  kPlusPlus,
  kMinusMinus,
  kQuestion,
  kColon,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;   // identifier / string contents (escapes resolved)
  int32_t number = 0; // kNumber / kCharLit value
  int line = 0;
  int col = 0;
};

const char* TokName(Tok kind);

}  // namespace hemlock

#endif  // SRC_LANG_TOKEN_H_
