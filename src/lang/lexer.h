// The HemC lexer. Supports // and /* */ comments, decimal/hex numbers, character
// literals with the usual escapes, and string literals.
#ifndef SRC_LANG_LEXER_H_
#define SRC_LANG_LEXER_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/lang/token.h"

namespace hemlock {

// Tokenizes |source|. The result always ends with a kEof token.
Result<std::vector<Token>> Lex(const std::string& source);

}  // namespace hemlock

#endif  // SRC_LANG_LEXER_H_
