// HOF — the Hemlock Object Format.
//
// The paper's linkers capitalize on "the lowest common denominator for language
// implementations: the object file" (§3). A HOF template (.o) carries text/data/bss
// sections, a symbol table, relocations, and — at the user's discretion — an embedded
// search strategy (lds "can be asked to include search strategy information in the new
// .o file"), which is what scoped linking consults when the module is created at run
// time.
//
// Relocation types mirror what an R3000 tool chain needs:
//   kWord32   32-bit absolute cell in data (or a jump table) = S + A
//   kHi16     LUI immediate: high half of S + A (paired with a following kLo16)
//   kLo16     ORI immediate: low half of S + A
//   kPcRel16  branch displacement in words, relative to site + 4
//   kJump26   J/JAL word target; only encodable when the target shares the site's
//             256 MB region — otherwise the static linker inserts a trampoline.
#ifndef SRC_OBJ_OBJECT_FILE_H_
#define SRC_OBJ_OBJECT_FILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/status.h"

namespace hemlock {

enum class SectionKind : uint8_t { kText = 0, kData = 1, kBss = 2 };

const char* SectionName(SectionKind kind);

enum class RelocType : uint8_t {
  kWord32 = 0,
  kHi16 = 1,
  kLo16 = 2,
  kPcRel16 = 3,
  kJump26 = 4,
};

const char* RelocTypeName(RelocType type);

struct Relocation {
  RelocType type = RelocType::kWord32;
  SectionKind section = SectionKind::kText;  // section containing the relocated site
  uint32_t offset = 0;                       // byte offset of the site in that section
  std::string symbol;                        // name of the referenced symbol
  int32_t addend = 0;

  bool operator==(const Relocation&) const = default;
};

enum class SymBinding : uint8_t { kLocal = 0, kGlobal = 1 };

struct Symbol {
  std::string name;
  bool defined = false;
  SectionKind section = SectionKind::kText;  // meaningful when defined
  uint32_t value = 0;                        // offset within section (template form)
  SymBinding binding = SymBinding::kGlobal;
  bool is_function = false;

  bool operator==(const Symbol&) const = default;
};

// A relocatable object module (a template, in the paper's vocabulary).
class ObjectFile {
 public:
  ObjectFile() = default;
  explicit ObjectFile(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  std::vector<uint8_t>& text() { return text_; }
  const std::vector<uint8_t>& text() const { return text_; }
  std::vector<uint8_t>& data() { return data_; }
  const std::vector<uint8_t>& data() const { return data_; }
  uint32_t bss_size() const { return bss_size_; }
  void set_bss_size(uint32_t size) { bss_size_ = size; }

  std::vector<Symbol>& symbols() { return symbols_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }
  std::vector<Relocation>& relocations() { return relocations_; }
  const std::vector<Relocation>& relocations() const { return relocations_; }

  // Embedded search strategy (paper §2): module names this template wants linked in,
  // and directories to search for them. Consulted by scoped linking when this module
  // is instantiated at run time.
  std::vector<std::string>& module_list() { return module_list_; }
  const std::vector<std::string>& module_list() const { return module_list_; }
  std::vector<std::string>& search_path() { return search_path_; }
  const std::vector<std::string>& search_path() const { return search_path_; }

  // Adds a symbol, merging with an existing entry of the same name: a definition
  // overrides an undefined reference; two definitions are an error.
  Status AddSymbol(const Symbol& sym);
  // Records an undefined global reference if the name is not yet known.
  void ReferenceSymbol(const std::string& name);

  const Symbol* FindSymbol(const std::string& name) const;
  Symbol* FindSymbol(const std::string& name);

  // Names of global symbols that are referenced but not defined here.
  std::vector<std::string> UndefinedSymbols() const;
  // Names of global symbols defined here (the module's exports).
  std::vector<std::string> ExportedSymbols() const;

  uint32_t SectionSize(SectionKind kind) const;

  // --- Serialization (the on-disk .o form) ---
  std::vector<uint8_t> Serialize() const;
  static Result<ObjectFile> Deserialize(const std::vector<uint8_t>& bytes);

  // Content identity for stable linking: the FNV-1a 64 digest of the canonical
  // serialized form. Two templates with the same hash link to the same module at
  // the same base (the linker is deterministic), so resolution decisions recorded
  // against this hash survive across runs until the template actually changes.
  uint64_t ContentHash() const;

 private:
  std::string name_;
  std::vector<uint8_t> text_;
  std::vector<uint8_t> data_;
  uint32_t bss_size_ = 0;
  std::vector<Symbol> symbols_;
  std::vector<Relocation> relocations_;
  std::vector<std::string> module_list_;
  std::vector<std::string> search_path_;
};

// Incremental builder used by the code generator (and by tests constructing
// synthetic modules).
class ObjectBuilder {
 public:
  explicit ObjectBuilder(std::string name) : obj_(std::move(name)) {}

  // Appends one instruction word to .text; returns its byte offset.
  uint32_t EmitText(uint32_t word);
  // Overwrites a previously emitted instruction (branch back-patching).
  void PatchText(uint32_t offset, uint32_t word);
  uint32_t TextSize() const { return static_cast<uint32_t>(obj_.text().size()); }

  // Appends raw bytes to .data; returns the starting offset.
  uint32_t EmitData(const void* bytes, uint32_t len);
  uint32_t EmitDataWord(uint32_t word);
  // Pads .data to |alignment| bytes.
  void AlignData(uint32_t alignment);
  // Reserves |len| zero bytes in .bss; returns the starting offset.
  uint32_t ReserveBss(uint32_t len, uint32_t alignment = 4);

  Status DefineSymbol(const std::string& name, SectionKind section, uint32_t value,
                      bool is_function, SymBinding binding = SymBinding::kGlobal);
  void Reference(const std::string& name) { obj_.ReferenceSymbol(name); }
  void AddReloc(RelocType type, SectionKind section, uint32_t offset, const std::string& symbol,
                int32_t addend = 0);

  ObjectFile Take() { return std::move(obj_); }
  const ObjectFile& object() const { return obj_; }

 private:
  ObjectFile obj_;
};

}  // namespace hemlock

#endif  // SRC_OBJ_OBJECT_FILE_H_
