#include "src/obj/object_file.h"

#include <cstring>
#include <unordered_set>

#include "src/base/layout.h"
#include "src/base/strings.h"

namespace hemlock {

namespace {
constexpr uint32_t kHofMagic = 0x21464F48;  // "HOF!"
constexpr uint32_t kHofVersion = 2;

// Hard caps on what a single object may carry. Text/data are length-prefixed and
// bounds-checked against the stream itself; .bss is only a declared size, so cap
// it at the private data region it would have to fit in. The table caps are far
// above anything the compiler emits but small enough that a hostile header can
// never turn into a multi-gigabyte allocation.
constexpr uint32_t kHofMaxBssBytes = kDataLimit - kDataBase;
constexpr uint32_t kHofMaxSymbols = 1u << 20;
constexpr uint32_t kHofMaxRelocs = 1u << 20;
constexpr uint32_t kHofMaxNames = 1u << 12;

// Serialized sizes of the fixed parts of each record (used to validate counts
// against the bytes actually present before reserving anything).
constexpr size_t kHofSymbolMinBytes = 4 + 1 + 1 + 4 + 1 + 1;   // empty name
constexpr size_t kHofRelocMinBytes = 1 + 1 + 4 + 4 + 4;        // empty symbol
}  // namespace

const char* SectionName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
      return ".text";
    case SectionKind::kData:
      return ".data";
    case SectionKind::kBss:
      return ".bss";
  }
  return "?";
}

const char* RelocTypeName(RelocType type) {
  switch (type) {
    case RelocType::kWord32:
      return "WORD32";
    case RelocType::kHi16:
      return "HI16";
    case RelocType::kLo16:
      return "LO16";
    case RelocType::kPcRel16:
      return "PCREL16";
    case RelocType::kJump26:
      return "JUMP26";
  }
  return "?";
}

Status ObjectFile::AddSymbol(const Symbol& sym) {
  Symbol* existing = FindSymbol(sym.name);
  if (existing == nullptr) {
    symbols_.push_back(sym);
    return OkStatus();
  }
  if (!sym.defined) {
    return OkStatus();  // reference to an already-known symbol
  }
  if (existing->defined) {
    return AlreadyExists("duplicate definition of symbol '" + sym.name + "' in module " + name_);
  }
  *existing = sym;
  return OkStatus();
}

void ObjectFile::ReferenceSymbol(const std::string& name) {
  if (FindSymbol(name) == nullptr) {
    Symbol sym;
    sym.name = name;
    sym.defined = false;
    sym.binding = SymBinding::kGlobal;
    symbols_.push_back(sym);
  }
}

const Symbol* ObjectFile::FindSymbol(const std::string& name) const {
  for (const Symbol& sym : symbols_) {
    if (sym.name == name) {
      return &sym;
    }
  }
  return nullptr;
}

Symbol* ObjectFile::FindSymbol(const std::string& name) {
  return const_cast<Symbol*>(static_cast<const ObjectFile*>(this)->FindSymbol(name));
}

std::vector<std::string> ObjectFile::UndefinedSymbols() const {
  std::vector<std::string> out;
  for (const Symbol& sym : symbols_) {
    if (!sym.defined && sym.binding == SymBinding::kGlobal) {
      out.push_back(sym.name);
    }
  }
  return out;
}

std::vector<std::string> ObjectFile::ExportedSymbols() const {
  std::vector<std::string> out;
  for (const Symbol& sym : symbols_) {
    if (sym.defined && sym.binding == SymBinding::kGlobal) {
      out.push_back(sym.name);
    }
  }
  return out;
}

uint32_t ObjectFile::SectionSize(SectionKind kind) const {
  switch (kind) {
    case SectionKind::kText:
      return static_cast<uint32_t>(text_.size());
    case SectionKind::kData:
      return static_cast<uint32_t>(data_.size());
    case SectionKind::kBss:
      return bss_size_;
  }
  return 0;
}

uint64_t ObjectFile::ContentHash() const {
  std::vector<uint8_t> bytes = Serialize();
  return Fnv1a64(bytes.data(), bytes.size());
}

std::vector<uint8_t> ObjectFile::Serialize() const {
  ByteWriter w;
  w.U32(kHofMagic);
  w.U32(kHofVersion);
  w.Str(name_);
  w.Bytes(text_);
  w.Bytes(data_);
  w.U32(bss_size_);
  w.U32(static_cast<uint32_t>(symbols_.size()));
  for (const Symbol& sym : symbols_) {
    w.Str(sym.name);
    w.U8(sym.defined ? 1 : 0);
    w.U8(static_cast<uint8_t>(sym.section));
    w.U32(sym.value);
    w.U8(static_cast<uint8_t>(sym.binding));
    w.U8(sym.is_function ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(relocations_.size()));
  for (const Relocation& rel : relocations_) {
    w.U8(static_cast<uint8_t>(rel.type));
    w.U8(static_cast<uint8_t>(rel.section));
    w.U32(rel.offset);
    w.Str(rel.symbol);
    w.I32(rel.addend);
  }
  w.U32(static_cast<uint32_t>(module_list_.size()));
  for (const std::string& mod : module_list_) {
    w.Str(mod);
  }
  w.U32(static_cast<uint32_t>(search_path_.size()));
  for (const std::string& dir : search_path_) {
    w.Str(dir);
  }
  return w.Take();
}

Result<ObjectFile> ObjectFile::Deserialize(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kHofMagic) {
    return CorruptData("not a HOF object file (bad magic)");
  }
  ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kHofVersion) {
    return UnsupportedVersion("HOF version " + std::to_string(version) + " (this build speaks " +
                              std::to_string(kHofVersion) + ")");
  }
  ObjectFile obj;
  ASSIGN_OR_RETURN(obj.name_, r.Str());
  ASSIGN_OR_RETURN(obj.text_, r.Bytes());
  ASSIGN_OR_RETURN(obj.data_, r.Bytes());
  ASSIGN_OR_RETURN(obj.bss_size_, r.U32());
  if (obj.text_.size() % 4 != 0) {
    return CorruptData("HOF .text not instruction-aligned");
  }
  if (obj.bss_size_ > kHofMaxBssBytes) {
    return CorruptData("HOF .bss larger than the private data region");
  }
  ASSIGN_OR_RETURN(uint32_t nsyms, r.Count(kHofSymbolMinBytes, kHofMaxSymbols));
  obj.symbols_.reserve(nsyms);
  std::unordered_set<std::string> seen_names;
  seen_names.reserve(nsyms);
  for (uint32_t i = 0; i < nsyms; ++i) {
    Symbol sym;
    ASSIGN_OR_RETURN(sym.name, r.Str());
    ASSIGN_OR_RETURN(uint8_t defined, r.U8());
    sym.defined = defined != 0;
    ASSIGN_OR_RETURN(uint8_t section, r.U8());
    if (section > 2) {
      return CorruptData("bad symbol section");
    }
    sym.section = static_cast<SectionKind>(section);
    ASSIGN_OR_RETURN(sym.value, r.U32());
    ASSIGN_OR_RETURN(uint8_t binding, r.U8());
    if (binding > 1) {
      return CorruptData("bad symbol binding");
    }
    sym.binding = static_cast<SymBinding>(binding);
    ASSIGN_OR_RETURN(uint8_t is_function, r.U8());
    sym.is_function = is_function != 0;
    if (sym.name.empty()) {
      return CorruptData("symbol with empty name");
    }
    if (!seen_names.insert(sym.name).second) {
      return CorruptData("duplicate symbol table entry '" + sym.name + "'");
    }
    if (sym.defined && sym.value > obj.SectionSize(sym.section)) {
      return CorruptData("symbol '" + sym.name + "' points past the end of " +
                         SectionName(sym.section));
    }
    obj.symbols_.push_back(std::move(sym));
  }
  ASSIGN_OR_RETURN(uint32_t nrels, r.Count(kHofRelocMinBytes, kHofMaxRelocs));
  obj.relocations_.reserve(nrels);
  for (uint32_t i = 0; i < nrels; ++i) {
    Relocation rel;
    ASSIGN_OR_RETURN(uint8_t type, r.U8());
    if (type > 4) {
      return CorruptData("bad relocation type");
    }
    rel.type = static_cast<RelocType>(type);
    ASSIGN_OR_RETURN(uint8_t section, r.U8());
    if (section > 2) {
      return CorruptData("bad relocation section");
    }
    rel.section = static_cast<SectionKind>(section);
    ASSIGN_OR_RETURN(rel.offset, r.U32());
    ASSIGN_OR_RETURN(rel.symbol, r.Str());
    ASSIGN_OR_RETURN(rel.addend, r.I32());
    if (rel.section == SectionKind::kBss) {
      return CorruptData("relocation site in .bss (no bytes to patch)");
    }
    if (static_cast<uint64_t>(rel.offset) + 4 > obj.SectionSize(rel.section)) {
      return CorruptData("relocation site outside its section");
    }
    obj.relocations_.push_back(std::move(rel));
  }
  ASSIGN_OR_RETURN(uint32_t nmods, r.Count(4, kHofMaxNames));
  obj.module_list_.reserve(nmods);
  for (uint32_t i = 0; i < nmods; ++i) {
    ASSIGN_OR_RETURN(std::string mod, r.Str());
    obj.module_list_.push_back(std::move(mod));
  }
  ASSIGN_OR_RETURN(uint32_t ndirs, r.Count(4, kHofMaxNames));
  obj.search_path_.reserve(ndirs);
  for (uint32_t i = 0; i < ndirs; ++i) {
    ASSIGN_OR_RETURN(std::string dir, r.Str());
    obj.search_path_.push_back(std::move(dir));
  }
  RETURN_IF_ERROR(r.ExpectEnd("HOF object"));
  return obj;
}

uint32_t ObjectBuilder::EmitText(uint32_t word) {
  uint32_t offset = static_cast<uint32_t>(obj_.text().size());
  obj_.text().push_back(static_cast<uint8_t>(word));
  obj_.text().push_back(static_cast<uint8_t>(word >> 8));
  obj_.text().push_back(static_cast<uint8_t>(word >> 16));
  obj_.text().push_back(static_cast<uint8_t>(word >> 24));
  return offset;
}

void ObjectBuilder::PatchText(uint32_t offset, uint32_t word) {
  obj_.text()[offset] = static_cast<uint8_t>(word);
  obj_.text()[offset + 1] = static_cast<uint8_t>(word >> 8);
  obj_.text()[offset + 2] = static_cast<uint8_t>(word >> 16);
  obj_.text()[offset + 3] = static_cast<uint8_t>(word >> 24);
}

uint32_t ObjectBuilder::EmitData(const void* bytes, uint32_t len) {
  uint32_t offset = static_cast<uint32_t>(obj_.data().size());
  const auto* p = static_cast<const uint8_t*>(bytes);
  obj_.data().insert(obj_.data().end(), p, p + len);
  return offset;
}

uint32_t ObjectBuilder::EmitDataWord(uint32_t word) {
  uint8_t bytes[4] = {static_cast<uint8_t>(word), static_cast<uint8_t>(word >> 8),
                      static_cast<uint8_t>(word >> 16), static_cast<uint8_t>(word >> 24)};
  return EmitData(bytes, 4);
}

void ObjectBuilder::AlignData(uint32_t alignment) {
  while (obj_.data().size() % alignment != 0) {
    obj_.data().push_back(0);
  }
}

uint32_t ObjectBuilder::ReserveBss(uint32_t len, uint32_t alignment) {
  uint32_t offset = obj_.bss_size();
  offset = (offset + alignment - 1) & ~(alignment - 1);
  obj_.set_bss_size(offset + len);
  return offset;
}

Status ObjectBuilder::DefineSymbol(const std::string& name, SectionKind section, uint32_t value,
                                   bool is_function, SymBinding binding) {
  Symbol sym;
  sym.name = name;
  sym.defined = true;
  sym.section = section;
  sym.value = value;
  sym.binding = binding;
  sym.is_function = is_function;
  return obj_.AddSymbol(sym);
}

void ObjectBuilder::AddReloc(RelocType type, SectionKind section, uint32_t offset,
                             const std::string& symbol, int32_t addend) {
  Relocation rel;
  rel.type = type;
  rel.section = section;
  rel.offset = offset;
  rel.symbol = symbol;
  rel.addend = addend;
  obj_.relocations().push_back(std::move(rel));
  obj_.ReferenceSymbol(symbol);
}

}  // namespace hemlock
