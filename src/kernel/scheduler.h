// The preemptive scheduler for the simulated kernel.
//
// Run/wait queues in front of the Machine's dispatch loop:
//   * runnable processes live in per-priority FIFO ready queues (higher priority
//     classes run first; round-robin within a class);
//   * blocked processes are *off* the ready queues entirely — a waiting process is
//     never polled, it is made runnable again by the event that satisfies its wait
//     (child exit, futex wake, creation-lock release);
//   * futex wait queues are keyed by shared-region address, FIFO per address;
//   * two pluggable policies: kRoundRobin (fair, production default) and kRandom
//     (seeded uniform pick over every ready process, ignoring priority — a "chaos
//     schedule" for deterministic interleaving fuzzing of sync code).
//
// SMP (docs/CONCURRENCY.md): ConfigureCores(N) splits the ready structure into N
// per-core run queues with pid -> core affinity. A core picks from its own queue
// first and *steals* from the most loaded sibling when its own is dry, so work
// spreads without a global queue bottleneck. Wait queues stay global — a wake
// routes the waiter back to its affine core. With one core (the default) the
// legacy single-queue structure is kept bit-for-bit, so `--cores=1` dispatch
// order is exactly the pre-SMP order (the interp-differential CI job relies on
// this).
//
// The scheduler is deliberately dumb about Process internals: it tracks pids only.
// The Machine drives every state transition (enqueue on runnable, block on wait,
// remove on exit) and is responsible for keeping the two views consistent. Under
// an SMP run every scheduler call is made with the Machine's kernel lock held —
// the scheduler itself takes no locks.
//
// Observability: every transition bumps a "vm.sched.*" counter in the machine's
// registry (switches, preemptions, blocks, wakes, futex waits/wakes, deadlocks,
// steals); per-core queues add "vm.sched.core.<n>.*" (dispatches, steals, ticks).
#ifndef SRC_KERNEL_SCHEDULER_H_
#define SRC_KERNEL_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/status.h"

namespace hemlock {

enum class SchedPolicy : uint8_t {
  kRoundRobin,  // FIFO within the highest non-empty priority class
  kRandom,      // seeded uniform pick over all ready pids (priority ignored)
};

const char* SchedPolicyName(SchedPolicy policy);

// One scheduling configuration, as selected by hemrun --sched/--quantum/--cores.
struct SchedParams {
  SchedPolicy policy = SchedPolicy::kRoundRobin;
  uint64_t seed = 0;        // kRandom: the interleaving is a pure function of this
  uint64_t quantum = 4096;  // instructions per dispatch before preemption
  int num_cores = 1;        // >1: RunScheduled drives this many host worker threads
};

// Parses "rr" or "random:<seed>" (bare "random" = seed 0).
Result<SchedParams> ParseSchedSpec(const std::string& spec);

class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers the "vm.sched.*" counters. Call once, before any transition.
  void SetMetrics(MetricsRegistry* metrics);

  // Selects the policy and reseeds the chaos RNG. Ready/wait queues are preserved
  // (a re-run of the same machine continues with whatever is still queued).
  void Configure(SchedPolicy policy, uint64_t seed);
  SchedPolicy policy() const { return policy_; }

  // Sizes the per-core run queues; queued pids are redistributed. 1 restores the
  // single legacy queue (and its exact dispatch order). Registers the
  // "vm.sched.core.<n>.*" counters on first growth.
  void ConfigureCores(int num_cores);
  int num_cores() const { return num_cores_; }

  // --- Ready-queue transitions (driven by the Machine) ---

  // Adds |pid| to the back of its priority's ready queue. No-op if already queued.
  // With per-core queues the pid lands on its affine core (least-loaded core on
  // first sighting).
  void Enqueue(int pid, int priority);
  // Re-queues a preempted process (quantum exhausted, still runnable).
  void Preempt(int pid, int priority);
  // Removes |pid| from every queue (process exited or was killed).
  void Remove(int pid);

  // Picks the next pid to dispatch and removes it from the ready queue.
  // Returns -1 when no process is ready. Counted in vm.sched.switches.
  int PickNext();

  // SMP pick for |core|: pops from the core's own queue; when that is dry, steals
  // from the back of the most loaded sibling's queue (counted in vm.sched.steals
  // and the thief's vm.sched.core.<n>.steals) and re-homes the pid's affinity.
  // Returns -1 when no process is ready on any core.
  int PickNextOnCore(int core);

  // Charges |ticks| retired on |core| to vm.sched.core.<n>.ticks.
  void CountCoreTicks(int core, uint64_t ticks);

  // --- Wait queues ---

  // Parks |pid| on the futex queue for |addr| (it must not be on a ready queue;
  // call Remove first if needed). FIFO per address.
  void BlockOnFutex(int pid, uint32_t addr);
  // Detaches up to |max| waiters (FIFO order) from |addr|'s queue and returns them.
  // The caller wakes them (Enqueue) after fixing up their register state.
  std::vector<int> TakeFutexWaiters(uint32_t addr, uint32_t max);
  // Removes |pid| from any futex queue it waits on (exit while blocked).
  void CancelFutexWait(int pid);

  // A process blocked on something that is not a futex (waitpid). The scheduler
  // only needs the count for deadlock detection; the Machine keeps the detail.
  void NoteBlocked(int pid);
  void NoteWoken(int pid);

  // --- Introspection ---

  size_t ReadyCount() const;
  // Total processes blocked on a futex address.
  size_t FutexWaiterCount() const;
  // Processes blocked on non-futex waits (waitpid).
  size_t OtherWaiterCount() const { return other_waiters_.size(); }
  // Pids currently parked on |addr|.
  std::vector<int> FutexWaitersAt(uint32_t addr) const;
  // One line per wait entry, for deadlock reports: "pid 3: futex 0x30000040".
  std::vector<std::string> DescribeWaiters() const;
  // The core |pid| last ran on (-1 before its first SMP dispatch).
  int CoreOf(int pid) const;

  void CountDeadlock() { ++*c_deadlocks_; }

 private:
  using ReadyQueue = std::map<int, std::deque<int>, std::greater<int>>;

  // Pops one pid from |q| under the current policy: FIFO within the highest
  // priority class, or a seeded uniform pick over all of |q| for kRandom.
  int PopFrom(ReadyQueue* q);
  static void EraseFrom(ReadyQueue* q, int pid);
  static size_t CountOf(const ReadyQueue& q);
  // The ready queue a new enqueue of |pid| should land on.
  ReadyQueue* HomeQueue(int pid);

  SchedPolicy policy_ = SchedPolicy::kRoundRobin;
  uint64_t rng_state_ = 0x9E3779B97F4A7C15ull;

  // Single-core (legacy) ready queue: priority (descending) -> FIFO of pids.
  // |ready_set_| guards against double-enqueue in both modes.
  ReadyQueue ready_;
  std::set<int> ready_set_;

  // Per-core run queues (SMP mode; empty while num_cores_ == 1).
  struct CoreQueue {
    ReadyQueue ready;
    // Per-core fallback cells, used until SetMetrics registers the real
    // "vm.sched.core.<n>.*" counters. One cell per counter *per core* — the old
    // shared |scratch_| fallback silently aggregated every core into one cell,
    // so per-core numbers were garbage whenever metrics arrived late (or never).
    // SetMetrics migrates accumulated fallback values into the registry.
    uint64_t local_dispatches = 0;
    uint64_t local_steals = 0;
    uint64_t local_ticks = 0;
    uint64_t* dispatches = nullptr;
    uint64_t* steals = nullptr;
    uint64_t* ticks = nullptr;
  };
  // Points |core|'s counter handles at the registry (when available) or at the
  // core's own fallback cells — never at shared storage.
  void BindCoreCounters(int core, CoreQueue* q);
  int num_cores_ = 1;
  std::vector<CoreQueue> cores_;
  std::map<int, int> affinity_;  // pid -> core it last ran (or was placed) on
  int next_core_ = 0;            // round-robin placement for unseen pids

  // Futex wait queues: address -> FIFO of pids.
  std::map<uint32_t, std::deque<int>> futex_waiters_;
  std::set<int> other_waiters_;

  // vm.sched.* counter handles (null until SetMetrics; transitions then uncounted,
  // which only standalone unit tests do).
  MetricsRegistry* metrics_ = nullptr;
  uint64_t scratch_ = 0;
  uint64_t* c_switches_ = &scratch_;
  uint64_t* c_preemptions_ = &scratch_;
  uint64_t* c_blocks_ = &scratch_;
  uint64_t* c_wakes_ = &scratch_;
  uint64_t* c_futex_waits_ = &scratch_;
  uint64_t* c_deadlocks_ = &scratch_;
  uint64_t* c_steals_ = &scratch_;
};

}  // namespace hemlock

#endif  // SRC_KERNEL_SCHEDULER_H_
