// Vector-clock happens-before race detector for the shared partition.
//
// The paper's model lets any process map a public segment and touch its variables
// directly, so the only thing standing between a correct rwho deployment and a torn
// counter is discipline. This detector makes the discipline checkable: the Machine
// feeds it every load/store that lands in the SFS region plus every synchronization
// event (futex wait/wake, kernel CAS, creation-lock unlock, spawn/fork/waitpid),
// and it reports each pair of accesses that are unordered by happens-before where
// at least one is a write.
//
// Design (FastTrack-flavored, sized for a simulator):
//   * one vector clock per process, advanced at release points;
//   * one vector clock per sync object, keyed by its SFS address — futex words,
//     CAS words, and creation locks all share this table;
//   * per-word shadow state: the last write (pid, clock, pc) plus the set of reads
//     since that write. A same-pid access replaces its previous entry, so shadow
//     cost is O(live processes) per word, not O(accesses);
//   * sampling: with --race-sample N only every Nth access per process is checked
//     (writes always update the shadow so ordering stays sound; sampled-out reads
//     are simply not recorded). N=1 (default) is exact;
//   * process exit joins the exiting clock into |exited_join_|, and every later
//     spawn inherits it — a program that runs writers strictly one-after-another
//     is correctly race-free even without explicit sync.
//
// Reports carry the conflicting PC pair and the segment path (via an address→path
// callback into the SFS), deduplicated by PC pair so one hot loop does not flood
// the trace buffer.
#ifndef SRC_KERNEL_RACE_H_
#define SRC_KERNEL_RACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/metrics.h"

namespace hemlock {

struct RaceOptions {
  // Check every Nth shared-region access per process (1 = exact).
  uint32_t sample_period = 1;
  // Stop recording new reports after this many distinct PC pairs.
  uint32_t max_reports = 64;
};

struct RaceReport {
  uint32_t addr = 0;        // first racy word observed for this PC pair
  std::string path;         // owning segment's SFS path ("?" if unattributable)
  int first_pid = 0;        // earlier access (the one in the shadow state)
  uint32_t first_pc = 0;
  bool first_is_write = false;
  int second_pid = 0;       // later access (the one that exposed the race)
  uint32_t second_pc = 0;
  bool second_is_write = false;

  // "race on 0x30000040 (/shm/rwho/db): pid 1 write@0x0040 vs pid 2 write@0x0040"
  std::string ToString() const;
};

class RaceDetector {
 public:
  explicit RaceDetector(RaceOptions options = {});

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  // Registers the "vm.race.*" counters.
  void SetMetrics(MetricsRegistry* metrics);
  // Resolves a shared address to its segment path for reports.
  void SetAddrResolver(std::function<std::string(uint32_t)> resolver) {
    addr_resolver_ = std::move(resolver);
  }

  // --- Process lifecycle ---

  // |parent| < 0 for a root process. A child starts happens-after its parent's
  // current point; a root starts happens-after every already-exited process.
  void OnProcessStart(int pid, int parent);
  // sys_spawn edge for a child that was already registered (as a root) by process
  // creation: the child additionally happens-after the spawner's current point.
  void OnSpawn(int parent, int child);
  void OnProcessExit(int pid);
  // waitpid observed |child|'s exit: the waiter inherits the child's final clock.
  void OnReap(int waiter, int child);

  // --- Synchronization edges (sync object = shared word at |key|) ---

  void OnAcquire(int pid, uint32_t key);   // futex wake-up, failed CAS (read side)
  void OnRelease(int pid, uint32_t key);   // futex wake issue, lock release
  void OnAcqRel(int pid, uint32_t key);    // successful CAS: full barrier on the word

  // --- Data accesses (already filtered to the SFS region by the caller) ---

  void OnAccess(int pid, uint32_t addr, uint32_t len, bool is_write, uint32_t pc);

  // Only meaningful once the run has quiesced (RunScheduled has returned); the
  // internal lock is not taken here.
  const std::vector<RaceReport>& reports() const { return reports_; }
  bool HasRaces() const { return !reports_.empty(); }

 private:
  // Vector clock: pid -> logical time. Sparse, since sims run O(10) processes.
  using VClock = std::map<int, uint64_t>;

  struct Access {
    uint64_t clock = 0;  // accessor's own component at access time
    uint32_t pc = 0;
  };
  struct ShadowWord {
    std::map<int, Access> writes;  // at most one per pid; cleared on ordered write
    std::map<int, Access> reads;   // reads since the last write
  };

  static void JoinInto(VClock* dst, const VClock& src);
  // True iff an access by |pid| at |clock| happens-before |observer|'s present.
  static bool OrderedBefore(int pid, uint64_t clock, const VClock& observer);

  // Bodies of OnAcquire/OnRelease, callable with |mu_| already held (OnAcqRel).
  void AcquireLocked(int pid, uint32_t key);
  void ReleaseLocked(int pid, uint32_t key);
  void CheckWord(int pid, uint32_t word_addr, bool is_write, uint32_t pc);
  void Report(uint32_t addr, int first_pid, const Access& first, bool first_write,
              int second_pid, uint32_t second_pc, bool second_write);

  RaceOptions options_;
  // Guards every mutable structure below. SMP cores feed OnAccess straight from
  // their guest loops (outside the kernel lock), so the detector synchronizes
  // itself. Leaf lock: nothing is called out while holding it.
  std::mutex mu_;
  std::map<int, VClock> clocks_;           // live processes
  std::map<int, uint64_t> sample_tick_;    // per-process access counter for sampling
  std::map<uint32_t, VClock> sync_clocks_; // sync objects by shared address
  VClock exited_join_;                     // join of every exited process's clock
  std::map<uint32_t, ShadowWord> shadow_;  // word address (4-aligned) -> history
  std::vector<RaceReport> reports_;
  std::map<uint64_t, bool> seen_pc_pairs_; // dedup key: first_pc<<32 | second_pc

  std::function<std::string(uint32_t)> addr_resolver_;

  uint64_t scratch_ = 0;
  uint64_t* c_accesses_ = &scratch_;
  uint64_t* c_sampled_out_ = &scratch_;
  uint64_t* c_sync_edges_ = &scratch_;
  uint64_t* c_races_ = &scratch_;
};

}  // namespace hemlock

#endif  // SRC_KERNEL_RACE_H_
