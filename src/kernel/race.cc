#include "src/kernel/race.h"

#include <cstdio>

namespace hemlock {

std::string RaceReport::ToString() const {
  char buf[256];
  snprintf(buf, sizeof buf,
           "race on 0x%08X (%s): pid %d %s@0x%08X vs pid %d %s@0x%08X", addr,
           path.empty() ? "?" : path.c_str(), first_pid,
           first_is_write ? "write" : "read", first_pc, second_pid,
           second_is_write ? "write" : "read", second_pc);
  return buf;
}

RaceDetector::RaceDetector(RaceOptions options) : options_(options) {
  if (options_.sample_period == 0) options_.sample_period = 1;
}

void RaceDetector::SetMetrics(MetricsRegistry* metrics) {
  c_accesses_ = metrics->Counter("vm.race.accesses_checked");
  c_sampled_out_ = metrics->Counter("vm.race.accesses_sampled_out");
  c_sync_edges_ = metrics->Counter("vm.race.sync_edges");
  c_races_ = metrics->Counter("vm.race.races_found");
}

void RaceDetector::JoinInto(VClock* dst, const VClock& src) {
  for (const auto& [pid, t] : src) {
    uint64_t& slot = (*dst)[pid];
    if (t > slot) slot = t;
  }
}

bool RaceDetector::OrderedBefore(int pid, uint64_t clock, const VClock& observer) {
  auto it = observer.find(pid);
  return it != observer.end() && it->second >= clock;
}

void RaceDetector::OnProcessStart(int pid, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  VClock& vc = clocks_[pid];
  if (parent >= 0) {
    auto it = clocks_.find(parent);
    if (it != clocks_.end()) {
      vc = it->second;
      // Advance the parent so its post-spawn accesses are concurrent with the
      // child rather than ordered before everything the child does.
      ++it->second[parent];
    }
  } else {
    // Root processes happen-after everything that already finished; running a
    // writer to completion and then starting a reader is not a race.
    vc = exited_join_;
  }
  ++vc[pid];
}

void RaceDetector::OnSpawn(int parent, int child) {
  std::lock_guard<std::mutex> lock(mu_);
  auto pit = clocks_.find(parent);
  if (pit == clocks_.end()) return;
  ++*c_sync_edges_;
  VClock& cvc = clocks_[child];
  JoinInto(&cvc, pit->second);
  ++cvc[child];
  ++pit->second[parent];
}

void RaceDetector::OnProcessExit(int pid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clocks_.find(pid);
  if (it == clocks_.end()) return;
  JoinInto(&exited_join_, it->second);
}

void RaceDetector::OnReap(int waiter, int child) {
  std::lock_guard<std::mutex> lock(mu_);
  auto cit = clocks_.find(child);
  auto wit = clocks_.find(waiter);
  if (cit == clocks_.end() || wit == clocks_.end()) return;
  ++*c_sync_edges_;
  JoinInto(&wit->second, cit->second);
  clocks_.erase(cit);
}

void RaceDetector::AcquireLocked(int pid, uint32_t key) {
  auto it = sync_clocks_.find(key);
  if (it == sync_clocks_.end()) return;
  ++*c_sync_edges_;
  JoinInto(&clocks_[pid], it->second);
}

void RaceDetector::ReleaseLocked(int pid, uint32_t key) {
  ++*c_sync_edges_;
  VClock& vc = clocks_[pid];
  JoinInto(&sync_clocks_[key], vc);
  // Bump after publishing so later same-pid work is not ordered by this release.
  ++vc[pid];
}

void RaceDetector::OnAcquire(int pid, uint32_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  AcquireLocked(pid, key);
}

void RaceDetector::OnRelease(int pid, uint32_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseLocked(pid, key);
}

void RaceDetector::OnAcqRel(int pid, uint32_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  AcquireLocked(pid, key);
  ReleaseLocked(pid, key);
}

void RaceDetector::OnAccess(int pid, uint32_t addr, uint32_t len, bool is_write,
                            uint32_t pc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.sample_period > 1) {
    uint64_t tick = sample_tick_[pid]++;
    if (tick % options_.sample_period != 0) {
      ++*c_sampled_out_;
      return;
    }
  }
  ++*c_accesses_;
  // Word-granular shadow: a byte access checks (and records in) its whole word.
  // That can pair a race with a neighbor-byte access, but the PC pair it reports
  // still points at two unsynchronized instructions touching the same word.
  uint32_t first_word = addr & ~3u;
  uint32_t last_word = (addr + (len ? len - 1 : 0)) & ~3u;
  for (uint32_t w = first_word; w <= last_word; w += 4) {
    CheckWord(pid, w, is_write, pc);
    if (w == last_word) break;  // overflow guard at the top of the region
  }
}

void RaceDetector::CheckWord(int pid, uint32_t word_addr, bool is_write,
                             uint32_t pc) {
  VClock& vc = clocks_[pid];
  uint64_t& own = vc[pid];
  if (own == 0) own = 1;  // access before OnProcessStart (defensive)
  ShadowWord& sw = shadow_[word_addr];

  // A race needs a write on at least one side; check against unordered writes
  // always, and against unordered reads only when this access is a write.
  for (const auto& [wpid, acc] : sw.writes) {
    if (wpid == pid) continue;
    if (!OrderedBefore(wpid, acc.clock, vc)) {
      Report(word_addr, wpid, acc, /*first_write=*/true, pid, pc, is_write);
    }
  }
  if (is_write) {
    for (const auto& [rpid, acc] : sw.reads) {
      if (rpid == pid) continue;
      if (!OrderedBefore(rpid, acc.clock, vc)) {
        Report(word_addr, rpid, acc, /*first_write=*/false, pid, pc, is_write);
      }
    }
  }

  Access self{own, pc};
  if (is_write) {
    // Drop prior accesses that this write is ordered after: they can no longer
    // race with anything that must also be ordered after this write to be safe.
    for (auto it = sw.writes.begin(); it != sw.writes.end();) {
      it = (it->first != pid && OrderedBefore(it->first, it->second.clock, vc))
               ? sw.writes.erase(it)
               : std::next(it);
    }
    for (auto it = sw.reads.begin(); it != sw.reads.end();) {
      it = OrderedBefore(it->first, it->second.clock, vc) ? sw.reads.erase(it)
                                                          : std::next(it);
    }
    sw.writes[pid] = self;
    sw.reads.erase(pid);
  } else {
    sw.reads[pid] = self;
  }
}

void RaceDetector::Report(uint32_t addr, int first_pid, const Access& first,
                          bool first_write, int second_pid, uint32_t second_pc,
                          bool second_write) {
  uint64_t key = (static_cast<uint64_t>(first.pc) << 32) | second_pc;
  if (seen_pc_pairs_.count(key)) return;
  if (reports_.size() >= options_.max_reports) return;
  seen_pc_pairs_[key] = true;
  ++*c_races_;

  RaceReport r;
  r.addr = addr;
  r.path = addr_resolver_ ? addr_resolver_(addr) : "";
  r.first_pid = first_pid;
  r.first_pc = first.pc;
  r.first_is_write = first_write;
  r.second_pid = second_pid;
  r.second_pc = second_pc;
  r.second_is_write = second_write;
  reports_.push_back(std::move(r));
}

}  // namespace hemlock
