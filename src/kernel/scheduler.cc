#include "src/kernel/scheduler.h"

#include <algorithm>

#include "src/base/strings.h"

namespace hemlock {
namespace {

// splitmix64: tiny, high-quality, and deterministic across platforms. The chaos
// schedule must be a pure function of the seed so CI failures replay locally.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kRoundRobin:
      return "rr";
    case SchedPolicy::kRandom:
      return "random";
  }
  return "?";
}

Result<SchedParams> ParseSchedSpec(const std::string& spec) {
  SchedParams params;
  if (spec == "rr") {
    params.policy = SchedPolicy::kRoundRobin;
    return params;
  }
  if (spec == "random") {
    params.policy = SchedPolicy::kRandom;
    return params;
  }
  const std::string prefix = "random:";
  if (spec.rfind(prefix, 0) == 0) {
    params.policy = SchedPolicy::kRandom;
    const std::string digits = spec.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad scheduler seed in '" + spec + "'");
    }
    params.seed = std::stoull(digits);
    return params;
  }
  return Status(ErrorCode::kInvalidArgument,
                "unknown scheduler spec '" + spec + "' (want rr|random[:seed])");
}

void Scheduler::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  c_switches_ = metrics->Counter("vm.sched.switches");
  c_preemptions_ = metrics->Counter("vm.sched.preemptions");
  c_blocks_ = metrics->Counter("vm.sched.blocks");
  c_wakes_ = metrics->Counter("vm.sched.wakes");
  c_futex_waits_ = metrics->Counter("vm.sched.futex_waits");
  c_deadlocks_ = metrics->Counter("vm.sched.deadlocks");
  c_steals_ = metrics->Counter("vm.sched.steals");
  // Metrics arrived after ConfigureCores: rebind the per-core counters to the
  // registry and migrate whatever the fallback cells accumulated meanwhile.
  for (size_t c = 0; c < cores_.size(); ++c) {
    CoreQueue& core = cores_[c];
    BindCoreCounters(static_cast<int>(c), &core);
    *core.dispatches += core.local_dispatches;
    *core.steals += core.local_steals;
    *core.ticks += core.local_ticks;
    core.local_dispatches = core.local_steals = core.local_ticks = 0;
  }
}

void Scheduler::BindCoreCounters(int core, CoreQueue* q) {
  if (metrics_ != nullptr) {
    q->dispatches = metrics_->Counter(StrFormat("vm.sched.core.%d.dispatches", core));
    q->steals = metrics_->Counter(StrFormat("vm.sched.core.%d.steals", core));
    q->ticks = metrics_->Counter(StrFormat("vm.sched.core.%d.ticks", core));
  } else {
    // No registry yet: each core counts in its own cells (distinct storage —
    // never the shared scratch), and SetMetrics migrates them later.
    q->dispatches = &q->local_dispatches;
    q->steals = &q->local_steals;
    q->ticks = &q->local_ticks;
  }
}

void Scheduler::Configure(SchedPolicy policy, uint64_t seed) {
  policy_ = policy;
  // Mix the seed so random:0 and random:1 diverge immediately.
  rng_state_ = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
}

void Scheduler::ConfigureCores(int num_cores) {
  if (num_cores < 1) num_cores = 1;
  if (num_cores == num_cores_) return;
  // Drain every queued pid (priority order, FIFO within a class) so nothing is
  // lost across a mode switch, then re-home them under the new core count.
  std::vector<std::pair<int, int>> queued;  // (priority, pid)
  auto drain = [&queued](ReadyQueue* q) {
    for (auto& [prio, deque] : *q) {
      for (int pid : deque) queued.emplace_back(prio, pid);
    }
    q->clear();
  };
  drain(&ready_);
  for (CoreQueue& core : cores_) drain(&core.ready);
  ready_set_.clear();
  num_cores_ = num_cores;
  next_core_ = 0;
  cores_.clear();
  if (num_cores_ > 1) {
    cores_.resize(static_cast<size_t>(num_cores_));
    for (int c = 0; c < num_cores_; ++c) {
      BindCoreCounters(c, &cores_[static_cast<size_t>(c)]);
    }
  } else {
    affinity_.clear();
  }
  for (const auto& [prio, pid] : queued) {
    Enqueue(pid, prio);
  }
}

Scheduler::ReadyQueue* Scheduler::HomeQueue(int pid) {
  if (num_cores_ == 1) return &ready_;
  auto it = affinity_.find(pid);
  if (it == affinity_.end()) {
    // First sighting: place round-robin so initial load spreads evenly.
    it = affinity_.emplace(pid, next_core_).first;
    next_core_ = (next_core_ + 1) % num_cores_;
  }
  return &cores_[static_cast<size_t>(it->second)].ready;
}

void Scheduler::Enqueue(int pid, int priority) {
  if (!ready_set_.insert(pid).second) return;
  (*HomeQueue(pid))[priority].push_back(pid);
}

void Scheduler::Preempt(int pid, int priority) {
  ++*c_preemptions_;
  Enqueue(pid, priority);
}

void Scheduler::EraseFrom(ReadyQueue* q, int pid) {
  for (auto it = q->begin(); it != q->end();) {
    auto& deque = it->second;
    deque.erase(std::remove(deque.begin(), deque.end(), pid), deque.end());
    it = deque.empty() ? q->erase(it) : std::next(it);
  }
}

size_t Scheduler::CountOf(const ReadyQueue& q) {
  size_t n = 0;
  for (const auto& [prio, deque] : q) n += deque.size();
  return n;
}

void Scheduler::Remove(int pid) {
  if (ready_set_.erase(pid) > 0) {
    EraseFrom(&ready_, pid);
    for (CoreQueue& core : cores_) EraseFrom(&core.ready, pid);
  }
  affinity_.erase(pid);
  CancelFutexWait(pid);
  other_waiters_.erase(pid);
}

int Scheduler::PopFrom(ReadyQueue* q) {
  if (q->empty()) return -1;
  if (policy_ == SchedPolicy::kRandom) {
    // Uniform pick over every pid in |q|, ignoring priority. Collect in queue
    // iteration order (deterministic) so the pick is a pure function of the seed.
    std::vector<int> pids;
    for (const auto& [prio, deque] : *q) pids.insert(pids.end(), deque.begin(), deque.end());
    int pid = pids[SplitMix64(&rng_state_) % pids.size()];
    EraseFrom(q, pid);
    return pid;
  }
  auto qit = q->begin();  // highest priority class
  int pid = qit->second.front();
  qit->second.pop_front();
  if (qit->second.empty()) q->erase(qit);
  return pid;
}

int Scheduler::PickNext() {
  if (ready_set_.empty()) return -1;
  ++*c_switches_;
  if (policy_ == SchedPolicy::kRandom) {
    // Uniform pick over every ready pid. Iterate the set (sorted, so the pick
    // sequence is deterministic) rather than the queues to ignore priority.
    // Kept verbatim from the pre-SMP scheduler: the chaos schedule at --cores=1
    // must replay byte-for-byte against old seeds.
    size_t index = SplitMix64(&rng_state_) % ready_set_.size();
    auto it = ready_set_.begin();
    std::advance(it, index);
    int pid = *it;
    ready_set_.erase(it);
    EraseFrom(&ready_, pid);
    return pid;
  }
  int pid = PopFrom(&ready_);
  ready_set_.erase(pid);
  return pid;
}

int Scheduler::PickNextOnCore(int core) {
  if (num_cores_ == 1) return PickNext();
  if (ready_set_.empty()) return -1;
  CoreQueue& own = cores_[static_cast<size_t>(core)];
  int pid = PopFrom(&own.ready);
  if (pid < 0) {
    // Own queue dry: steal from the back of the most loaded sibling, so the
    // victim keeps its FIFO front and the thief takes the youngest work.
    int victim = -1;
    size_t victim_load = 0;
    for (int c = 0; c < num_cores_; ++c) {
      if (c == core) continue;
      size_t load = CountOf(cores_[static_cast<size_t>(c)].ready);
      if (load > victim_load) {
        victim_load = load;
        victim = c;
      }
    }
    if (victim < 0) return -1;
    ReadyQueue& vq = cores_[static_cast<size_t>(victim)].ready;
    auto qit = vq.begin();
    pid = qit->second.back();
    qit->second.pop_back();
    if (qit->second.empty()) vq.erase(qit);
    affinity_[pid] = core;  // stolen work re-homes to the thief
    ++*c_steals_;
    ++*own.steals;
  }
  ready_set_.erase(pid);
  ++*c_switches_;
  ++*own.dispatches;
  return pid;
}

void Scheduler::CountCoreTicks(int core, uint64_t ticks) {
  if (num_cores_ == 1 || core < 0 || core >= num_cores_) return;
  *cores_[static_cast<size_t>(core)].ticks += ticks;
}

int Scheduler::CoreOf(int pid) const {
  auto it = affinity_.find(pid);
  return it == affinity_.end() ? -1 : it->second;
}

void Scheduler::BlockOnFutex(int pid, uint32_t addr) {
  ++*c_blocks_;
  ++*c_futex_waits_;
  futex_waiters_[addr].push_back(pid);
}

std::vector<int> Scheduler::TakeFutexWaiters(uint32_t addr, uint32_t max) {
  std::vector<int> woken;
  auto it = futex_waiters_.find(addr);
  if (it == futex_waiters_.end()) return woken;
  auto& q = it->second;
  while (!q.empty() && woken.size() < max) {
    woken.push_back(q.front());
    q.pop_front();
  }
  if (q.empty()) futex_waiters_.erase(it);
  *c_wakes_ += woken.size();
  return woken;
}

void Scheduler::CancelFutexWait(int pid) {
  for (auto it = futex_waiters_.begin(); it != futex_waiters_.end();) {
    auto& q = it->second;
    q.erase(std::remove(q.begin(), q.end(), pid), q.end());
    it = q.empty() ? futex_waiters_.erase(it) : std::next(it);
  }
}

void Scheduler::NoteBlocked(int pid) {
  ++*c_blocks_;
  other_waiters_.insert(pid);
}

void Scheduler::NoteWoken(int pid) {
  if (other_waiters_.erase(pid) > 0) ++*c_wakes_;
}

size_t Scheduler::ReadyCount() const { return ready_set_.size(); }

size_t Scheduler::FutexWaiterCount() const {
  size_t n = 0;
  for (const auto& [addr, q] : futex_waiters_) n += q.size();
  return n;
}

std::vector<int> Scheduler::FutexWaitersAt(uint32_t addr) const {
  auto it = futex_waiters_.find(addr);
  if (it == futex_waiters_.end()) return {};
  return std::vector<int>(it->second.begin(), it->second.end());
}

std::vector<std::string> Scheduler::DescribeWaiters() const {
  std::vector<std::string> lines;
  char buf[64];
  for (const auto& [addr, q] : futex_waiters_) {
    for (int pid : q) {
      snprintf(buf, sizeof buf, "pid %d: futex 0x%08X", pid, addr);
      lines.push_back(buf);
    }
  }
  for (int pid : other_waiters_) {
    snprintf(buf, sizeof buf, "pid %d: wait", pid);
    lines.push_back(buf);
  }
  return lines;
}

}  // namespace hemlock
