#include "src/kernel/scheduler.h"

#include <algorithm>

namespace hemlock {
namespace {

// splitmix64: tiny, high-quality, and deterministic across platforms. The chaos
// schedule must be a pure function of the seed so CI failures replay locally.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* SchedPolicyName(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::kRoundRobin:
      return "rr";
    case SchedPolicy::kRandom:
      return "random";
  }
  return "?";
}

Result<SchedParams> ParseSchedSpec(const std::string& spec) {
  SchedParams params;
  if (spec == "rr") {
    params.policy = SchedPolicy::kRoundRobin;
    return params;
  }
  if (spec == "random") {
    params.policy = SchedPolicy::kRandom;
    return params;
  }
  const std::string prefix = "random:";
  if (spec.rfind(prefix, 0) == 0) {
    params.policy = SchedPolicy::kRandom;
    const std::string digits = spec.substr(prefix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad scheduler seed in '" + spec + "'");
    }
    params.seed = std::stoull(digits);
    return params;
  }
  return Status(ErrorCode::kInvalidArgument,
                "unknown scheduler spec '" + spec + "' (want rr|random[:seed])");
}

void Scheduler::SetMetrics(MetricsRegistry* metrics) {
  c_switches_ = metrics->Counter("vm.sched.switches");
  c_preemptions_ = metrics->Counter("vm.sched.preemptions");
  c_blocks_ = metrics->Counter("vm.sched.blocks");
  c_wakes_ = metrics->Counter("vm.sched.wakes");
  c_futex_waits_ = metrics->Counter("vm.sched.futex_waits");
  c_deadlocks_ = metrics->Counter("vm.sched.deadlocks");
}

void Scheduler::Configure(SchedPolicy policy, uint64_t seed) {
  policy_ = policy;
  // Mix the seed so random:0 and random:1 diverge immediately.
  rng_state_ = seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
}

void Scheduler::Enqueue(int pid, int priority) {
  if (!ready_set_.insert(pid).second) return;
  ready_[priority].push_back(pid);
}

void Scheduler::Preempt(int pid, int priority) {
  ++*c_preemptions_;
  Enqueue(pid, priority);
}

void Scheduler::Remove(int pid) {
  if (ready_set_.erase(pid) > 0) {
    for (auto it = ready_.begin(); it != ready_.end();) {
      auto& q = it->second;
      q.erase(std::remove(q.begin(), q.end(), pid), q.end());
      it = q.empty() ? ready_.erase(it) : std::next(it);
    }
  }
  CancelFutexWait(pid);
  other_waiters_.erase(pid);
}

int Scheduler::PickNext() {
  if (ready_set_.empty()) return -1;
  ++*c_switches_;
  if (policy_ == SchedPolicy::kRandom) {
    // Uniform pick over every ready pid. Iterate the set (sorted, so the pick
    // sequence is deterministic) rather than the queues to ignore priority.
    size_t index = SplitMix64(&rng_state_) % ready_set_.size();
    auto it = ready_set_.begin();
    std::advance(it, index);
    int pid = *it;
    ready_set_.erase(it);
    for (auto qit = ready_.begin(); qit != ready_.end();) {
      auto& q = qit->second;
      q.erase(std::remove(q.begin(), q.end(), pid), q.end());
      qit = q.empty() ? ready_.erase(qit) : std::next(qit);
    }
    return pid;
  }
  auto qit = ready_.begin();  // highest priority class
  int pid = qit->second.front();
  qit->second.pop_front();
  if (qit->second.empty()) ready_.erase(qit);
  ready_set_.erase(pid);
  return pid;
}

void Scheduler::BlockOnFutex(int pid, uint32_t addr) {
  ++*c_blocks_;
  ++*c_futex_waits_;
  futex_waiters_[addr].push_back(pid);
}

std::vector<int> Scheduler::TakeFutexWaiters(uint32_t addr, uint32_t max) {
  std::vector<int> woken;
  auto it = futex_waiters_.find(addr);
  if (it == futex_waiters_.end()) return woken;
  auto& q = it->second;
  while (!q.empty() && woken.size() < max) {
    woken.push_back(q.front());
    q.pop_front();
  }
  if (q.empty()) futex_waiters_.erase(it);
  *c_wakes_ += woken.size();
  return woken;
}

void Scheduler::CancelFutexWait(int pid) {
  for (auto it = futex_waiters_.begin(); it != futex_waiters_.end();) {
    auto& q = it->second;
    q.erase(std::remove(q.begin(), q.end(), pid), q.end());
    it = q.empty() ? futex_waiters_.erase(it) : std::next(it);
  }
}

void Scheduler::NoteBlocked(int pid) {
  ++*c_blocks_;
  other_waiters_.insert(pid);
}

void Scheduler::NoteWoken(int pid) {
  if (other_waiters_.erase(pid) > 0) ++*c_wakes_;
}

size_t Scheduler::ReadyCount() const { return ready_set_.size(); }

size_t Scheduler::FutexWaiterCount() const {
  size_t n = 0;
  for (const auto& [addr, q] : futex_waiters_) n += q.size();
  return n;
}

std::vector<int> Scheduler::FutexWaitersAt(uint32_t addr) const {
  auto it = futex_waiters_.find(addr);
  if (it == futex_waiters_.end()) return {};
  return std::vector<int>(it->second.begin(), it->second.end());
}

std::vector<std::string> Scheduler::DescribeWaiters() const {
  std::vector<std::string> lines;
  char buf[64];
  for (const auto& [addr, q] : futex_waiters_) {
    for (int pid : q) {
      snprintf(buf, sizeof buf, "pid %d: futex 0x%08X", pid, addr);
      lines.push_back(buf);
    }
  }
  for (int pid : other_waiters_) {
    snprintf(buf, sizeof buf, "pid %d: wait", pid);
    lines.push_back(buf);
  }
  return lines;
}

}  // namespace hemlock
